"""Native-trigger-only configuration (paper Section 2.2).

A thin toolkit over the raw engine showing what active behaviour looks
like with nothing but the native trigger mechanism — the configuration
whose restrictions motivate the ECA Agent:

- no named events, so nothing can be reused;
- one trigger per (table, operation): a new one silently displaces the
  old (the engine reports the displacement only through
  ``server.last_displaced_triggers``);
- no composite events: correlating two operations requires hand-written
  state tables inside trigger bodies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlengine import BatchResult, SqlServer, connect


@dataclass
class NativeTriggerToolkit:
    """Helper for defining plain native triggers directly on the engine."""

    server: SqlServer
    database: str
    user: str = "dbo"

    def __post_init__(self) -> None:
        self._connection = connect(self.server, self.user, self.database)

    def create_trigger(self, name: str, table: str, operation: str,
                       body_sql: str) -> BatchResult:
        """Create a native trigger; silently displaces any existing
        trigger on the same (table, operation)."""
        return self._connection.execute(
            f"create trigger {name} on {table} for {operation} as\n{body_sql}"
        )

    def drop_trigger(self, name: str) -> BatchResult:
        return self._connection.execute(f"drop trigger {name}")

    def displaced_by_last_create(self) -> list[str]:
        """Names of triggers the engine silently displaced (it never warns
        the client — the restriction the paper highlights)."""
        return list(self.server.last_displaced_triggers)

    def execute(self, sql: str) -> BatchResult:
        return self._connection.execute(sql)
