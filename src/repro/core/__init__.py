"""``repro.core`` — the public API of the reproduction.

:class:`~repro.core.api.ActiveDatabase` bundles a passive SQL server with
an ECA Agent into the paper's "Virtual Active SQL Server" and offers both
interfaces:

- the *transparent SQL interface*: clients connect and issue ordinary SQL
  plus the extended ``create trigger ... event ...`` syntax;
- a *programmatic convenience layer* that builds those ECA commands for
  you (:meth:`~repro.core.api.ActiveDatabase.define_rule` et al.).
"""

from repro.led.rules import Context, Coupling

from .api import ActiveDatabase, EcaRuleSpec

__all__ = [
    "ActiveDatabase",
    "Context",
    "Coupling",
    "EcaRuleSpec",
]
