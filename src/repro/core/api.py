"""High-level facade over the server + agent stack."""

from __future__ import annotations

from dataclasses import dataclass

from repro.agent import EcaAgent
from repro.led.clock import VirtualClock
from repro.led.rules import Context, Coupling
from repro.sqlengine import BatchResult, ClientConnection, SqlServer, connect


@dataclass
class EcaRuleSpec:
    """Declarative description of one ECA rule, renderable to the agent's
    extended trigger syntax (Figures 9, 10, 12)."""

    trigger_name: str
    action_sql: str
    event_name: str
    on_table: str | None = None          # primitive-event form
    operation: str | None = None         # insert | update | delete
    expression: str | None = None        # composite-event form (Snoop)
    coupling: Coupling | None = None
    context: Context | None = None
    priority: int | None = None

    def to_sql(self) -> str:
        """Render the ECA command text."""
        parts = [f"create trigger {self.trigger_name}"]
        if self.on_table is not None:
            if self.operation is None:
                raise ValueError("on_table requires operation")
            parts.append(f"on {self.on_table}")
            parts.append(f"for {self.operation}")
        event_clause = f"event {self.event_name}"
        if self.expression is not None:
            event_clause += f" = {self.expression}"
        parts.append(event_clause)
        modifiers: list[str] = []
        if self.coupling is not None:
            modifiers.append(self.coupling.value)
        if self.context is not None:
            modifiers.append(self.context.value)
        if self.priority is not None:
            modifiers.append(str(self.priority))
        if modifiers:
            parts.append(" ".join(modifiers))
        parts.append(f"as {self.action_sql}")
        return "\n".join(parts)


class ActiveDatabase:
    """A Virtual Active SQL Server: passive engine + ECA Agent in one.

    Example::

        from repro.core import ActiveDatabase, Context

        adb = ActiveDatabase(database="sentineldb", user="sharma")
        adb.execute("create table stock (symbol varchar(10), price float)")
        adb.define_rule(
            "t_addStk", event="addStk", on_table="stock",
            operation="insert",
            action='print "stock added"',
        )
        result = adb.execute("insert stock values ('IBM', 101.5)")
        assert "stock added" in result.messages
    """

    def __init__(self, database: str = "activedb", user: str = "dbo",
                 channel: str = "sync", clock: VirtualClock | None = None,
                 swallow_action_errors: bool = False,
                 notify_host: str = "127.0.0.1", notify_port: int = 10006):
        self.server = SqlServer(default_database=database)
        self.agent = EcaAgent(
            self.server, channel=channel, clock=clock,
            notify_host=notify_host, notify_port=notify_port,
            swallow_action_errors=swallow_action_errors,
        )
        self.database = database
        self.user = user
        self._admin = self.agent.connect(user=user, database=database)

    # ------------------------------------------------------------------
    # connections

    def connect(self, user: str | None = None,
                database: str | None = None) -> ClientConnection:
        """A mediated (active) connection — the normal entry point."""
        return self.agent.connect(
            user=user or self.user, database=database or self.database)

    def connect_direct(self, user: str | None = None,
                       database: str | None = None) -> ClientConnection:
        """A raw connection bypassing the agent (passive behaviour only);
        used by the transparency bench (E-FIG1)."""
        return connect(
            self.server, user=user or self.user,
            database=database or self.database)

    # ------------------------------------------------------------------
    # SQL

    def execute(self, sql: str) -> BatchResult:
        """Run SQL (plain or ECA) on the built-in admin connection."""
        return self._admin.execute(sql)

    # ------------------------------------------------------------------
    # declarative rules

    def define_rule(self, trigger_name: str, *, event: str,
                    action: str, on_table: str | None = None,
                    operation: str | None = None,
                    expression: str | None = None,
                    coupling: Coupling | str | None = None,
                    context: Context | str | None = None,
                    priority: int | None = None) -> BatchResult:
        """Define an ECA rule without hand-writing the extended syntax.

        - primitive event: pass ``on_table`` + ``operation``;
        - composite event: pass ``expression`` (Snoop text);
        - existing event: pass neither.
        """
        if isinstance(coupling, str):
            coupling = Coupling.parse(coupling)
        if isinstance(context, str):
            context = Context.parse(context)
        spec = EcaRuleSpec(
            trigger_name=trigger_name,
            action_sql=action,
            event_name=event,
            on_table=on_table,
            operation=operation,
            expression=expression,
            coupling=coupling,
            context=context,
            priority=priority,
        )
        return self.execute(spec.to_sql())

    def drop_rule(self, trigger_name: str) -> BatchResult:
        """Drop an ECA trigger."""
        return self.execute(f"drop trigger {trigger_name}")

    def drop_event(self, event_name: str) -> BatchResult:
        """Drop an event (must have no remaining triggers/dependents)."""
        return self.execute(f"drop event {event_name}")

    # ------------------------------------------------------------------
    # temporal / async control

    def advance_time(self, seconds: float):
        """Advance the agent's virtual clock (temporal operators fire)."""
        return self.agent.advance_time(seconds)

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait for asynchronous notification delivery to settle."""
        return self.agent.drain(timeout)

    def close(self) -> None:
        self.agent.close()

    def __enter__(self) -> "ActiveDatabase":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
