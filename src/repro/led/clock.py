"""Clocks for the detector's temporal operators (P, P*, PLUS).

The paper's LED uses wall-clock time.  For reproducible tests and benches
we default to a :class:`ManualClock` that only moves when told to; the
:class:`SystemClock` provides the faithful real-time behaviour.
"""

from __future__ import annotations

import time as _time


class VirtualClock:
    """Abstract clock: monotonically non-decreasing seconds since epoch."""

    def now(self) -> float:
        """Current time in (possibly virtual) seconds."""
        raise NotImplementedError


class ManualClock(VirtualClock):
    """A clock that moves only via :meth:`advance` / :meth:`set`.

    Drives deterministic tests of temporal operators: advance the clock,
    then ask the detector to process due timers.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot move a clock backwards")
        self._now += seconds
        return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not go backwards)."""
        if timestamp < self._now:
            raise ValueError("cannot move a clock backwards")
        self._now = float(timestamp)


class SystemClock(VirtualClock):
    """Wall-clock time (``time.time``)."""

    def now(self) -> float:
        return _time.time()
