"""Remote constituent nodes: leaves fed by another site's detector.

A shard of the sharded Global Event Detector holds composite graphs
whose constituents occur at *other* sites.  Those constituents appear in
the shard's LED as :class:`RemoteEventNode` leaves: structurally a
primitive event (so every Snoop operator composes over them unchanged),
but raised with an :class:`~repro.led.occurrences.Occurrence` the GED
router constructed — carrying the router's *global* ``(time, seq)``
stamp instead of this detector's local counter.

That global stamp is the point: SEQ's "strictly before" test compares
``(time, seq)`` pairs, and occurrences originating at different sites
have unrelated local counters.  The router's single global sequence
gives every forwarded occurrence a total order that is identical at
every shard, so a cross-site composite detects the same way wherever
its graph happens to live (the sharded-vs-single-site equivalence the
multi-site difftest sweep asserts).

A remote node therefore refuses the local :meth:`raise_event` path —
only :meth:`~repro.led.detector.LocalEventDetector.raise_remote` may
feed it.
"""

from __future__ import annotations

from .nodes import PrimitiveEventNode


class RemoteEventNode(PrimitiveEventNode):
    """A primitive leaf whose occurrences originate at a remote site.

    Attributes:
        home_site: the site where the underlying event class occurs.
        received: occurrences fed to this node by the GED router.
    """

    def __init__(self, detector, name: str, home_site: str):
        super().__init__(detector, name)
        self.home_site = home_site
        self.received = 0

    def describe(self) -> str:
        """``name @ site`` rendering for graph introspection."""
        return f"{self.name} @ {self.home_site}"
