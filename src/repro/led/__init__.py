"""``repro.led`` — the Local Event Detector (LED).

A re-implementation of Sentinel's LED (paper Section 2): an event graph
whose leaves are primitive events and whose inner nodes are Snoop
operators.  Primitive event occurrences are *raised* into the detector;
composite occurrences propagate up the graph and fire the ECA rules
attached to event nodes.

Key concepts:

- :class:`~repro.led.occurrences.Occurrence` — one event occurrence with
  its interval and constituent primitive occurrences (the rule parameters).
- :class:`~repro.led.rules.Context` — the four Snoop parameter contexts
  (RECENT, CHRONICLE, CONTINUOUS, CUMULATIVE) that govern how initiator
  and terminator occurrences pair up.
- :class:`~repro.led.rules.Coupling` — IMMEDIATE / DEFERRED / DETACHED
  action execution.
- :class:`~repro.led.detector.LocalEventDetector` — the facade: register
  events (from Snoop ASTs), attach rules, raise occurrences, drive time.
"""

from .clock import ManualClock, SystemClock, VirtualClock
from .detector import LocalEventDetector, RuleFiring
from .errors import DetectorError, EventDefinitionError, RuleError
from .occurrences import Occurrence
from .remote import RemoteEventNode
from .rules import Context, Coupling, Rule

__all__ = [
    "Context",
    "Coupling",
    "DetectorError",
    "EventDefinitionError",
    "LocalEventDetector",
    "ManualClock",
    "Occurrence",
    "RemoteEventNode",
    "Rule",
    "RuleError",
    "RuleFiring",
    "SystemClock",
    "VirtualClock",
]
