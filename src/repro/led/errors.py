"""Errors raised by the local event detector."""

from __future__ import annotations

from repro.errors import ReproError


class DetectorError(ReproError):
    """Root of LED errors."""


class EventDefinitionError(DetectorError):
    """An event definition is invalid (duplicate name, unknown constituent,
    dropping an event that other events or rules depend on, ...)."""


class RuleError(DetectorError):
    """A rule definition or rule operation is invalid."""


class ActionError(DetectorError):
    """A rule action raised; wraps the original exception."""

    def __init__(self, rule_name: str, original: BaseException):
        super().__init__(f"action of rule '{rule_name}' failed: {original!r}")
        self.rule_name = rule_name
        self.original = original
