"""The Local Event Detector facade.

Owns the event registry, the event graph, rule dispatch, the timer queue,
and the deferred/detached action machinery.  This is the component the ECA
Agent embeds (paper Figure 2); it can equally be used standalone as a
composite-event rule engine.
"""

from __future__ import annotations

import itertools
import threading
import time as _time
from dataclasses import dataclass
from typing import Callable

from repro.snoop import (
    And,
    Aperiodic,
    AperiodicStar,
    EventExpr,
    EventName,
    Not,
    Or,
    Periodic,
    PeriodicStar,
    Plus,
    Seq,
    parse_event_expression,
)

from repro.obs.provenance import (
    KIND_CONDITION,
    KIND_FIRING,
    KIND_RAISE,
    KIND_TIMER,
)
from repro.obs.tracing import (
    SPAN_LED_RAISE,
    SPAN_RULE_ACTION,
    SPAN_RULE_CONDITION,
)

from .clock import ManualClock, VirtualClock
from .errors import ActionError, EventDefinitionError, RuleError
from .nodes import EventNode, PrimitiveEventNode
from .occurrences import Occurrence, primitive
from .operators import (
    INITIATOR,
    LEFT,
    MIDDLE,
    RIGHT,
    TERMINATOR,
    AndNode,
    AperiodicNode,
    AperiodicStarNode,
    CompositeNode,
    NotNode,
    OrNode,
    PeriodicNode,
    PeriodicStarNode,
    PlusNode,
    SeqNode,
)
from .rules import (
    DEFAULT_CONTEXT,
    DEFAULT_COUPLING,
    DEFAULT_PRIORITY,
    Action,
    Condition,
    Context,
    Coupling,
    Rule,
    always_true,
)
from .snooptime import TimerHandle, TimerQueue


@dataclass
class RuleFiring:
    """Record of one rule triggering (kept in the detector history)."""

    rule_name: str
    event_name: str
    occurrence: Occurrence
    context: Context
    coupling: Coupling
    at: float
    error: BaseException | None = None


class LocalEventDetector:
    """Composite event detection engine with ECA rule dispatch.

    Args:
        clock: time source for temporal operators (default: a
            :class:`ManualClock` starting at 0 — deterministic).
        detached_dispatcher: callable ``(rule, occurrence) -> None``
            invoked for DETACHED-coupled rules; defaults to synchronous
            execution (the agent installs its thread-pool ``SybaseAction``
            analogue here).
        swallow_action_errors: when True, exceptions from rule actions are
            recorded in the firing history instead of propagating.
    """

    def __init__(self, clock: VirtualClock | None = None,
                 detached_dispatcher: Callable[[Rule, Occurrence], None] | None = None,
                 swallow_action_errors: bool = False):
        self.clock = clock or ManualClock()
        self.events: dict[str, EventNode] = {}
        self.rules: dict[str, Rule] = {}
        self._rules_by_event: dict[str, list[Rule]] = {}
        #: immutable per-event snapshots of the sorted rule buckets;
        #: dispatch iterates these without copying (a rule action that
        #: adds/drops rules mid-dispatch replaces the snapshot, it never
        #: mutates the tuple being iterated)
        self._rules_snapshot: dict[str, tuple[Rule, ...]] = {}
        self._timers = TimerQueue()
        self._seq = itertools.count(1)
        self._anon = itertools.count(1)
        self._lock = threading.RLock()
        self.detached_dispatcher = detached_dispatcher
        self.swallow_action_errors = swallow_action_errors
        self.history: list[RuleFiring] = []
        self._deferred: list[tuple[Rule, Occurrence, Context]] = []
        self._current_firings: list[RuleFiring] | None = None
        #: optional observability sinks (the agent attaches its own;
        #: standalone detectors leave them None -> zero overhead)
        self.metrics = None
        self.trace = None
        self.journal = None
        #: optional fault-injection harness (``led.raise`` point); the
        #: agent attaches its injector, standalone detectors leave None
        self.faults = None
        #: optional detection log: when a list, every primitive raise
        #: (context ``None``) and composite detection is appended as a
        #: ``(event_name, context, occurrence)`` triple in propagation
        #: order.  The differential-test harness turns this on around a
        #: scenario run; ``None`` (the default) costs one branch.
        self.detection_log: list[tuple[str, Context | None, Occurrence]] | None = None
        self._m_detected = None
        self._m_rules_fired = None
        self._m_conditions = None
        self._m_raise_seconds = None
        self._m_lock_wait = None
        self._m_lock_hold = None
        #: optional resource-accounting plane (the agent attaches its
        #: own; raises and detections charge the ambient OpContext)
        self.accounting = None

    # ------------------------------------------------------------------
    # observability

    def attach_observability(self, metrics=None, trace=None,
                             journal=None) -> None:
        """Attach a :class:`~repro.obs.MetricsRegistry`, a
        :class:`~repro.obs.PipelineTrace`, and/or a
        :class:`~repro.obs.ProvenanceJournal`.

        Hooks cost one branch per event/rule while the sinks are disabled
        (or detached); detection counts are labeled by event kind and
        parameter context, firings by coupling mode.  The journal records
        the causal lineage of every raise, detection, condition and firing.
        """
        self.metrics = metrics
        self.trace = trace
        self.journal = journal
        if metrics is not None:
            self._m_detected = metrics.counter(
                "led_events_detected_total",
                "Event occurrences detected by the LED",
                ("kind", "context"))
            self._m_rules_fired = metrics.counter(
                "led_rules_fired_total",
                "Rule firings dispatched by the LED",
                ("coupling",))
            self._m_conditions = metrics.counter(
                "led_conditions_total",
                "Rule condition evaluations",
                ("result",))
            self._m_raise_seconds = metrics.histogram(
                "led_raise_seconds",
                "Wall time of one raise_event/raise_events call (seconds)")
            self._m_lock_wait = metrics.histogram(
                "led_lock_wait_seconds",
                "Time spent waiting for the LED dispatch lock (seconds)")
            self._m_lock_hold = metrics.histogram(
                "led_lock_hold_seconds",
                "Time the LED dispatch lock is held per raise (seconds)")
        else:
            self._m_detected = None
            self._m_rules_fired = None
            self._m_conditions = None
            self._m_raise_seconds = None
            self._m_lock_wait = None
            self._m_lock_hold = None

    def attach_accounting(self, accounting) -> None:
        """Attach (or detach, with ``None``) the agent's resource
        accounting; raises and composite detections then charge the
        ambient per-session / per-rule frames."""
        self.accounting = accounting

    def start_detection_log(self) -> list:
        """Begin recording detections for differential comparison.

        Resets and returns the live log list; every subsequent primitive
        raise is appended as ``(name, None, occurrence)`` and every
        composite detection as ``(name, context, occurrence)``, in exact
        propagation order.  Used by :mod:`repro.difftest` to compare the
        LED against the reference interpreter.
        """
        with self._lock:
            self.detection_log = []
            return self.detection_log

    def stop_detection_log(self) -> list:
        """Stop recording and return the captured detection log."""
        with self._lock:
            log, self.detection_log = self.detection_log, None
            return log if log is not None else []

    # ------------------------------------------------------------------
    # event definition

    def has_event(self, name: str) -> bool:
        return name in self.events

    def get_event(self, name: str) -> EventNode:
        node = self.events.get(name)
        if node is None:
            raise EventDefinitionError(f"event '{name}' is not defined")
        return node

    def define_primitive(self, name: str) -> PrimitiveEventNode:
        """Register a primitive event name."""
        with self._lock:
            if name in self.events:
                raise EventDefinitionError(f"event '{name}' already exists")
            node = PrimitiveEventNode(self, name)
            self.events[name] = node
            return node

    def define_remote(self, name: str, home_site: str):
        """Register a remote constituent leaf (sharded-GED deployment).

        The returned :class:`~repro.led.remote.RemoteEventNode` behaves
        like a primitive in every Snoop expression but can only be fed
        through :meth:`raise_remote` with an occurrence carrying the GED
        router's global ``(time, seq)`` stamp.
        """
        from .remote import RemoteEventNode

        with self._lock:
            if name in self.events:
                raise EventDefinitionError(f"event '{name}' already exists")
            node = RemoteEventNode(self, name, home_site)
            self.events[name] = node
            return node

    def raise_remote(self, name: str, occurrence: Occurrence) -> list[RuleFiring]:
        """Feed a router-constructed occurrence into a remote leaf.

        Unlike :meth:`raise_event`, the occurrence is built by the
        caller (the GED router) so its interval carries the *global*
        sequence stamp shared by every shard — this detector's local
        counter is not consulted.  Dispatch, detection logging, and the
        firing scope otherwise match a local raise exactly.
        """
        from .remote import RemoteEventNode

        with self._lock:
            node = self.get_event(name)
            if not isinstance(node, RemoteEventNode):
                raise EventDefinitionError(
                    f"'{name}' is not a remote event leaf")
            if occurrence.event_name != name:
                raise EventDefinitionError(
                    f"occurrence of '{occurrence.event_name}' cannot be "
                    f"raised as remote event '{name}'")
            outer = self._current_firings is None
            if outer:
                self._current_firings = []
            try:
                node.received += 1
                log = self.detection_log
                if log is not None:
                    log.append((name, None, occurrence))
                metrics = self.metrics
                if metrics is not None and metrics.enabled:
                    self._m_detected.labels("remote", "-").inc()
                node.on_raise(occurrence)
                return list(self._current_firings or [])
            finally:
                if outer:
                    self._current_firings = None

    def define_composite(self, name: str,
                         expression: EventExpr | str) -> CompositeNode:
        """Register a composite event from a Snoop expression.

        Every event name referenced by the expression must already be
        defined (the paper's name-checking step); the new event may itself
        be referenced by later definitions (event reuse).
        """
        with self._lock:
            if name in self.events:
                raise EventDefinitionError(f"event '{name}' already exists")
            expr = (
                parse_event_expression(expression)
                if isinstance(expression, str)
                else expression
            )
            node = self._build(expr, top_name=name)
            if not isinstance(node, CompositeNode):
                raise EventDefinitionError(
                    f"expression for '{name}' must use at least one operator "
                    "(a bare event name does not define a new event)"
                )
            self.events[name] = node
            return node

    def _build(self, expr: EventExpr, top_name: str | None = None) -> EventNode:
        """Recursively build graph nodes for an expression tree."""
        name = top_name or f"_anon{next(self._anon)}"
        if isinstance(expr, EventName):
            return self.get_event(expr.name)
        if isinstance(expr, Or):
            return OrNode(self, name, {
                LEFT: self._build(expr.left), RIGHT: self._build(expr.right)})
        if isinstance(expr, And):
            return AndNode(self, name, {
                LEFT: self._build(expr.left), RIGHT: self._build(expr.right)})
        if isinstance(expr, Seq):
            return SeqNode(self, name, {
                LEFT: self._build(expr.left), RIGHT: self._build(expr.right)})
        if isinstance(expr, Not):
            return NotNode(self, name, {
                INITIATOR: self._build(expr.initiator),
                MIDDLE: self._build(expr.event),
                TERMINATOR: self._build(expr.terminator),
            })
        if isinstance(expr, Aperiodic):
            return AperiodicNode(self, name, {
                INITIATOR: self._build(expr.initiator),
                MIDDLE: self._build(expr.event),
                TERMINATOR: self._build(expr.terminator),
            })
        if isinstance(expr, AperiodicStar):
            return AperiodicStarNode(self, name, {
                INITIATOR: self._build(expr.initiator),
                MIDDLE: self._build(expr.event),
                TERMINATOR: self._build(expr.terminator),
            })
        if isinstance(expr, Periodic):
            return PeriodicNode(self, name, {
                INITIATOR: self._build(expr.initiator),
                TERMINATOR: self._build(expr.terminator),
            }, expr.period.seconds, expr.parameter)
        if isinstance(expr, PeriodicStar):
            return PeriodicStarNode(self, name, {
                INITIATOR: self._build(expr.initiator),
                TERMINATOR: self._build(expr.terminator),
            }, expr.period.seconds, expr.parameter)
        if isinstance(expr, Plus):
            return PlusNode(self, name, {
                INITIATOR: self._build(expr.event),
            }, expr.delta.seconds)
        raise EventDefinitionError(
            f"unsupported expression node {type(expr).__name__}")

    def drop_event(self, name: str) -> None:
        """Remove an event; refuses if rules or other events depend on it."""
        with self._lock:
            node = self.get_event(name)
            if node.parents:
                raise EventDefinitionError(
                    f"event '{name}' is used by other composite events")
            if self._rules_by_event.get(name):
                raise EventDefinitionError(
                    f"event '{name}' still has rules attached")
            # Unhook this composite from its children so they stop feeding it.
            for child in node.children():
                child.detach_parent(node)
            del self.events[name]

    # ------------------------------------------------------------------
    # rules

    def add_rule(self, name: str, event_name: str, action: Action,
                 condition: Condition = always_true,
                 context: Context | str = DEFAULT_CONTEXT,
                 coupling: Coupling | str = DEFAULT_COUPLING,
                 priority: int = DEFAULT_PRIORITY) -> Rule:
        """Attach a rule to an event (multiple rules per event allowed)."""
        with self._lock:
            if name in self.rules:
                raise RuleError(f"rule '{name}' already exists")
            node = self.get_event(event_name)
            if isinstance(context, str):
                context = Context.parse(context)
            if isinstance(coupling, str):
                coupling = Coupling.parse(coupling)
            rule = Rule(
                name=name, event_name=event_name, action=action,
                condition=condition, context=context, coupling=coupling,
                priority=priority,
            )
            self.rules[name] = rule
            bucket = self._rules_by_event.setdefault(event_name, [])
            bucket.append(rule)
            bucket.sort(key=lambda r: (-r.priority, r.name))
            self._rules_snapshot[event_name] = tuple(bucket)
            node.activate(context)
            return rule

    def drop_rule(self, name: str) -> None:
        with self._lock:
            rule = self.rules.pop(name, None)
            if rule is None:
                raise RuleError(f"rule '{name}' does not exist")
            bucket = self._rules_by_event.get(rule.event_name, [])
            if rule in bucket:
                bucket.remove(rule)
            if bucket:
                self._rules_snapshot[rule.event_name] = tuple(bucket)
            else:
                self._rules_snapshot.pop(rule.event_name, None)

    def rules_for(self, event_name: str) -> list[Rule]:
        """The rules attached to an event, highest priority first.

        Served from the precomputed snapshot — no per-call sorting or
        bucket copying on the dispatch path.
        """
        return list(self._rules_snapshot.get(event_name, ()))

    # ------------------------------------------------------------------
    # raising events and time

    def raise_event(self, name: str, params: dict[str, object] | None = None,
                    at: float | None = None) -> list[RuleFiring]:
        """Raise a primitive event occurrence.

        Returns the rule firings triggered synchronously by this raise
        (immediate actions run; deferred/detached are recorded as firings
        when they are later executed, not here).
        """
        metrics = self.metrics
        timed = (metrics is not None and metrics.enabled
                 and self._m_lock_wait is not None)
        acquired = 0.0
        if timed:
            wait_start = _time.perf_counter()
        self._lock.acquire()
        if timed:
            acquired = _time.perf_counter()
            self._m_lock_wait.observe(acquired - wait_start)
        try:
            outer = self._current_firings is None
            if outer:
                self._current_firings = []
            try:
                self._raise_locked(name, params, at)
                return list(self._current_firings or [])
            finally:
                if outer:
                    self._current_firings = None
        finally:
            if timed:
                end = _time.perf_counter()
                self._m_lock_hold.observe(end - acquired)
                self._m_raise_seconds.observe(end - wait_start)
            self._lock.release()

    def raise_events(self, batch) -> list[RuleFiring]:
        """Raise several primitive occurrences under one lock acquisition.

        ``batch`` is an iterable of ``(name, params)`` pairs, raised in
        order at the current clock time.  Semantically identical to
        calling :meth:`raise_event` for each pair, but the locking and
        firing-scope bookkeeping is paid once per batch — this is the
        path a coalesced multi-event notification takes.  Returns the
        combined synchronous firings, in raise order.
        """
        metrics = self.metrics
        timed = (metrics is not None and metrics.enabled
                 and self._m_lock_wait is not None)
        acquired = 0.0
        if timed:
            wait_start = _time.perf_counter()
        self._lock.acquire()
        if timed:
            acquired = _time.perf_counter()
            self._m_lock_wait.observe(acquired - wait_start)
        try:
            outer = self._current_firings is None
            if outer:
                self._current_firings = []
            try:
                for name, params in batch:
                    self._raise_locked(name, params, None)
                return list(self._current_firings or [])
            finally:
                if outer:
                    self._current_firings = None
        finally:
            if timed:
                end = _time.perf_counter()
                self._m_lock_hold.observe(end - acquired)
                self._m_raise_seconds.observe(end - wait_start)
            self._lock.release()

    def _raise_locked(self, name: str, params: dict[str, object] | None,
                      at: float | None) -> None:
        """One raise, with the lock held and a firing scope in place."""
        node = self.get_event(name)
        if not isinstance(node, PrimitiveEventNode):
            raise EventDefinitionError(
                f"'{name}' is a composite event; only primitive events "
                "can be raised externally")
        faults = self.faults
        if faults is not None and faults.enabled:
            from repro.faults import Directive

            if faults.fire("led.raise", name) is Directive.DROP:
                return
        accounting = self.accounting
        if accounting is not None and accounting.active():
            accounting.note_event()
        time = self.clock.now() if at is None else at
        occurrence = primitive(name, time, next(self._seq), params)
        log = self.detection_log
        if log is not None:
            log.append((name, None, occurrence))
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            self._m_detected.labels("primitive", "-").inc()
        journal = self.journal
        journaled = journal is not None and journal.enabled
        if journaled:
            record = journal.append(
                KIND_RAISE, name, detail=f"t={time:g}",
                parents=journal.ambient_parents())
            journal.register(occurrence, record.seq)
            journal.observe_node(name, "-", fires=1)
            journal.push(record.seq)
        try:
            trace = self.trace
            if trace is not None and trace.enabled:
                with trace.span(SPAN_LED_RAISE, name):
                    node.on_raise(occurrence)
            else:
                node.on_raise(occurrence)
        finally:
            if journaled:
                journal.pop()

    def process_timers(self) -> list[RuleFiring]:
        """Run all timers due at the current clock time; returns firings."""
        with self._lock:
            outer = self._current_firings is None
            if outer:
                self._current_firings = []
            try:
                self._timers.process_due(self.clock.now())
                return list(self._current_firings or [])
            finally:
                if outer:
                    self._current_firings = None

    def advance_time(self, seconds: float) -> list[RuleFiring]:
        """Advance a :class:`ManualClock` and process due timers."""
        clock = self.clock
        if not isinstance(clock, ManualClock):
            raise RuleError("advance_time requires a ManualClock")
        with self._lock:
            outer = self._current_firings is None
            if outer:
                self._current_firings = []
            try:
                target = clock.now() + seconds
                # Step through intermediate timer deadlines so periodic
                # reschedules land at exact multiples.
                while True:
                    next_fire = self._timers.next_fire_time()
                    if next_fire is None or next_fire > target:
                        break
                    clock.set(max(next_fire, clock.now()))
                    self._timers.process_due(clock.now())
                clock.set(target)
                self._timers.process_due(target)
                return list(self._current_firings or [])
            finally:
                if outer:
                    self._current_firings = None

    def pending_timer_count(self) -> int:
        return len(self._timers)

    def flush_deferred(self) -> list[RuleFiring]:
        """Execute all DEFERRED actions queued so far (transaction end)."""
        with self._lock:
            queued = self._deferred
            self._deferred = []
            firings: list[RuleFiring] = []
            for rule, occurrence, context in queued:
                firings.append(self._run_action(rule, occurrence, context))
            return firings

    @property
    def deferred_count(self) -> int:
        return len(self._deferred)

    def discard_deferred(self) -> int:
        """Drop queued DEFERRED actions (the enclosing transaction rolled
        back, so its rule actions must not run); returns the count."""
        with self._lock:
            count = len(self._deferred)
            self._deferred = []
            return count

    def reset_detection_state(self) -> None:
        """Clear partial detections and pending timers (keep definitions)."""
        with self._lock:
            for node in self.events.values():
                node.reset()
            self._timers = TimerQueue()
            self._deferred = []

    # ------------------------------------------------------------------
    # internals used by nodes

    def _schedule_timer(self, fire_at: float, callback) -> TimerHandle:
        return self._timers.schedule(fire_at, callback)

    def _timer_occurrence(self, name: str, fire_time: float,
                          parameter: str | None) -> Occurrence:
        params: dict[str, object] = {"time": fire_time}
        if parameter:
            params["parameter"] = parameter
        occurrence = primitive(name, fire_time, next(self._seq), params)
        journal = self.journal
        if journal is not None and journal.enabled:
            record = journal.append(
                KIND_TIMER, name, detail=f"t={fire_time:g}",
                parents=journal.ambient_parents())
            journal.register(occurrence, record.seq)
        return occurrence

    def _dispatch_rules(self, node: EventNode, occurrence: Occurrence,
                        context: Context | None) -> None:
        rules = self._rules_snapshot.get(node.name)
        if not rules:
            return
        metrics = self.metrics
        counted = metrics is not None and metrics.enabled
        trace = self.trace
        traced = trace is not None and trace.enabled
        journal = self.journal
        journaled = journal is not None and journal.enabled
        for rule in rules:
            if not rule.enabled:
                continue
            if context is not None and rule.context is not context:
                continue
            effective = context if context is not None else rule.context
            try:
                if rule.condition is always_true:
                    passed = True
                elif traced:
                    with trace.span(SPAN_RULE_CONDITION, rule.name):
                        passed = bool(rule.condition(occurrence))
                else:
                    passed = bool(rule.condition(occurrence))
                if counted:
                    self._m_conditions.labels(
                        "true" if passed else "false").inc()
                if journaled and rule.condition is not always_true:
                    journal.append(
                        KIND_CONDITION, rule.name,
                        context=effective.value,
                        detail="passed" if passed else "failed",
                        parents=journal.ids_for((occurrence,))
                        or journal.ambient_parents())
                if not passed:
                    continue
            except Exception as exc:
                if counted:
                    self._m_conditions.labels("error").inc()
                if journaled:
                    journal.append(
                        KIND_CONDITION, rule.name,
                        context=effective.value, detail=f"error: {exc}",
                        parents=journal.ids_for((occurrence,))
                        or journal.ambient_parents())
                self._record(RuleFiring(
                    rule.name, node.name, occurrence, effective,
                    rule.coupling, self.clock.now(), error=exc))
                if not self.swallow_action_errors:
                    raise ActionError(rule.name, exc) from exc
                continue
            if counted:
                self._m_rules_fired.labels(rule.coupling.value).inc()
            if journaled:
                rule.note_fired(self.clock.now())
            if rule.coupling is Coupling.IMMEDIATE:
                self._run_action(rule, occurrence, effective)
            elif rule.coupling is Coupling.DEFERRED:
                self._deferred.append((rule, occurrence, effective))
            else:  # DETACHED
                if self.detached_dispatcher is not None:
                    # The dispatcher records the completed firing itself
                    # (via record_external_firing) when the worker is done.
                    self.detached_dispatcher(rule, occurrence)
                else:
                    self._run_action(rule, occurrence, effective)

    def _run_action(self, rule: Rule, occurrence: Occurrence,
                    context: Context) -> RuleFiring:
        firing = RuleFiring(
            rule.name, rule.event_name, occurrence, context,
            rule.coupling, self.clock.now())
        try:
            trace = self.trace
            if trace is not None and trace.enabled:
                with trace.span(SPAN_RULE_ACTION, rule.name):
                    rule.action(occurrence)
            else:
                rule.action(occurrence)
        except Exception as exc:
            firing.error = exc
            self._record(firing)
            if not self.swallow_action_errors:
                raise ActionError(rule.name, exc) from exc
            return firing
        self._record(firing)
        return firing

    def record_external_firing(self, firing: RuleFiring) -> None:
        """Let an external dispatcher (the agent's action handler) log the
        completion of a DETACHED action into the shared history."""
        with self._lock:
            self.history.append(firing)
            self._journal_firing(firing)

    def _record(self, firing: RuleFiring) -> None:
        self.history.append(firing)
        if self._current_firings is not None:
            self._current_firings.append(firing)
        self._journal_firing(firing)

    def _journal_firing(self, firing: RuleFiring) -> None:
        journal = self.journal
        if journal is None or not journal.enabled:
            return
        detail = firing.coupling.value.lower()
        if firing.error is not None:
            detail = f"{detail}; error: {firing.error}"
        journal.append(
            KIND_FIRING, firing.rule_name, context=firing.context.value,
            detail=detail,
            parents=journal.ids_for((firing.occurrence,))
            or journal.ambient_parents())
