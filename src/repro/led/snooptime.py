"""Timer queue for the detector's temporal operators.

A deterministic timer wheel: callbacks are enqueued with an absolute fire
time and run (in fire-time order) when the detector is asked to process
timers up to the current clock reading.  This keeps the temporal operators
(P, P*, PLUS) exact under the :class:`~repro.led.clock.ManualClock` used
by tests and benches, while a real-time driver can simply call
``process_due`` from a background thread under the system clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: A timer callback receives the time it was scheduled to fire at.
TimerCallback = Callable[[float], None]


@dataclass
class TimerHandle:
    """Cancelable reference to one scheduled timer."""

    fire_at: float
    seq: int
    callback: TimerCallback | None

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        self.callback = None


@dataclass
class TimerQueue:
    """Min-heap of pending timers."""

    _heap: list[tuple[float, int, TimerHandle]] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count)

    def __len__(self) -> int:
        return sum(1 for _f, _s, handle in self._heap if not handle.cancelled)

    def schedule(self, fire_at: float, callback: TimerCallback) -> TimerHandle:
        """Enqueue a callback for an absolute fire time."""
        handle = TimerHandle(fire_at, next(self._counter), callback)
        heapq.heappush(self._heap, (fire_at, handle.seq, handle))
        return handle

    def next_fire_time(self) -> float | None:
        """Earliest pending (non-cancelled) fire time, or None."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def process_due(self, now: float) -> int:
        """Run every timer with ``fire_at <= now`` in order; returns count.

        Callbacks may schedule further timers (periodic rescheduling);
        those are processed too if they are already due.
        """
        fired = 0
        while self._heap:
            fire_at, _seq, handle = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if fire_at > now:
                break
            heapq.heappop(self._heap)
            callback = handle.callback
            handle.callback = None
            assert callback is not None
            callback(fire_at)
            fired += 1
        return fired
