"""Snoop operator nodes: the composite event state machines.

Each operator keeps detection state *per parameter context*; the context
determines how initiator occurrences pair with terminators and what is
consumed on detection (see :class:`repro.led.rules.Context`).

Terminology (paper Section 2.1): the *initiator* of a composite event is
the constituent that can start its detection; the *terminator* is the
constituent whose occurrence completes a detection.  For ``AND`` either
side can initiate; for ``SEQ``/``NOT``/``A``/``A*``/``P``/``P*`` the
initiator is the first argument and the terminator the last.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .nodes import EventNode
from .occurrences import Occurrence, compose
from .rules import Context
from .snooptime import TimerHandle

LEFT = "left"
RIGHT = "right"
INITIATOR = "initiator"
MIDDLE = "middle"
TERMINATOR = "terminator"


class CompositeNode(EventNode):
    """Base for operator nodes: per-context state plus child bookkeeping."""

    ROLES: tuple[str, ...] = ()

    def __init__(self, detector, name: str, children: dict[str, EventNode]):
        super().__init__(detector, name)
        self._children = children
        self._state: dict[Context, object] = {}
        for role, child in children.items():
            if role not in self.ROLES:
                raise ValueError(f"{type(self).__name__} has no role {role!r}")
            child.attach_parent(self, role)

    def children(self) -> list[EventNode]:
        return list(self._children.values())

    def role_children(self) -> list[tuple[str, EventNode]]:
        return list(self._children.items())

    def child(self, role: str) -> EventNode:
        return self._children[role]

    def state(self, context: Context):
        if context not in self._state:
            self._state[context] = self._new_state()
        return self._state[context]

    def _new_state(self):
        raise NotImplementedError

    def reset(self) -> None:
        self._state.clear()

    def _compose(self, parts: list[Occurrence]) -> Occurrence:
        composed = compose(self.name, parts)
        journal = self.detector.journal
        if journal is not None and journal.enabled:
            # Stage the direct parts' record ids now: composition flattens
            # constituents to primitives, so operator-level lineage edges
            # (this composite <- that composite) exist only here.
            journal.note_parts(composed, parts)
        return composed


class OrNode(CompositeNode):
    """``E1 OR E2`` — stateless: every constituent occurrence passes
    through (relabeled), identically in every context."""

    ROLES = (LEFT, RIGHT)

    def _new_state(self):
        return None

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        self.emit(self._compose([occurrence]), context)


class AndNode(CompositeNode):
    """``E1 AND E2`` — both constituents, in any order."""

    ROLES = (LEFT, RIGHT)

    def _new_state(self):
        return {LEFT: [], RIGHT: []}

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        state = self.state(context)
        other_role = RIGHT if role == LEFT else LEFT
        pending = state[other_role]

        if context is Context.RECENT:
            if pending:
                self.emit(self._compose([pending[-1], occurrence]), context)
            # The most recent occurrence of each side is retained and is
            # never consumed — only displaced by a newer one.
            state[role] = [occurrence]
            return
        if context is Context.CHRONICLE:
            if pending:
                partner = pending.pop(0)
                self.emit(self._compose([partner, occurrence]), context)
            else:
                state[role].append(occurrence)
            return
        if context is Context.CONTINUOUS:
            if pending:
                partners = list(pending)
                pending.clear()
                for partner in partners:
                    self.emit(self._compose([partner, occurrence]), context)
            else:
                state[role].append(occurrence)
            return
        # CUMULATIVE
        if pending:
            parts = state[LEFT] + state[RIGHT] + [occurrence]
            state[LEFT] = []
            state[RIGHT] = []
            self.emit(self._compose(parts), context)
        else:
            state[role].append(occurrence)


class SeqNode(CompositeNode):
    """``E1 SEQ E2`` — E1 strictly before E2 (interval order)."""

    ROLES = (LEFT, RIGHT)

    def _new_state(self):
        return {LEFT: []}

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        state = self.state(context)
        if role == LEFT:
            if context is Context.RECENT:
                state[LEFT] = [occurrence]
            else:
                state[LEFT].append(occurrence)
            return

        candidates = [left for left in state[LEFT] if left.before(occurrence)]
        if not candidates:
            return
        if context is Context.RECENT:
            self.emit(self._compose([candidates[-1], occurrence]), context)
            return
        if context is Context.CHRONICLE:
            partner = candidates[0]
            state[LEFT].remove(partner)
            self.emit(self._compose([partner, occurrence]), context)
            return
        if context is Context.CONTINUOUS:
            for partner in candidates:
                state[LEFT].remove(partner)
            for partner in candidates:
                self.emit(self._compose([partner, occurrence]), context)
            return
        # CUMULATIVE
        for partner in candidates:
            state[LEFT].remove(partner)
        self.emit(self._compose(candidates + [occurrence]), context)


class NotNode(CompositeNode):
    """``NOT(E1, E2, E3)`` — E3 after E1 with no E2 in between.

    An occurrence of the forbidden event cancels every window it falls
    inside (all pending initiators, since they all started earlier).
    """

    ROLES = (INITIATOR, MIDDLE, TERMINATOR)

    def _new_state(self):
        return {INITIATOR: []}

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        state = self.state(context)
        if role == INITIATOR:
            if context is Context.RECENT:
                state[INITIATOR] = [occurrence]
            else:
                state[INITIATOR].append(occurrence)
            return
        if role == MIDDLE:
            # Kill windows the forbidden occurrence falls into.
            state[INITIATOR] = [
                init for init in state[INITIATOR] if not init.before(occurrence)
            ]
            return

        candidates = [
            init for init in state[INITIATOR] if init.before(occurrence)
        ]
        if not candidates:
            return
        if context is Context.RECENT:
            self.emit(self._compose([candidates[-1], occurrence]), context)
            return
        if context is Context.CHRONICLE:
            partner = candidates[0]
            state[INITIATOR].remove(partner)
            self.emit(self._compose([partner, occurrence]), context)
            return
        if context is Context.CONTINUOUS:
            for partner in candidates:
                state[INITIATOR].remove(partner)
            for partner in candidates:
                self.emit(self._compose([partner, occurrence]), context)
            return
        for partner in candidates:
            state[INITIATOR].remove(partner)
        self.emit(self._compose(candidates + [occurrence]), context)


class AperiodicNode(CompositeNode):
    """``A(E1, E2, E3)`` — signal each E2 inside an open E1..E3 window.

    The middle event is the terminator of each *signal*; the closing event
    only ends windows (it never signals).
    """

    ROLES = (INITIATOR, MIDDLE, TERMINATOR)

    def _new_state(self):
        return {INITIATOR: []}

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        state = self.state(context)
        if role == INITIATOR:
            if context is Context.RECENT:
                state[INITIATOR] = [occurrence]
            else:
                state[INITIATOR].append(occurrence)
            return
        if role == MIDDLE:
            candidates = [
                init for init in state[INITIATOR] if init.before(occurrence)
            ]
            if not candidates:
                return
            if context is Context.RECENT:
                self.emit(self._compose([candidates[-1], occurrence]), context)
            elif context is Context.CHRONICLE:
                self.emit(self._compose([candidates[0], occurrence]), context)
            elif context is Context.CONTINUOUS:
                for partner in candidates:
                    self.emit(self._compose([partner, occurrence]), context)
            else:  # CUMULATIVE — one signal carrying every open initiator
                self.emit(self._compose(candidates + [occurrence]), context)
            return
        # TERMINATOR: close windows, no signal.
        candidates = [
            init for init in state[INITIATOR] if init.before(occurrence)
        ]
        if not candidates:
            return
        if context is Context.RECENT:
            state[INITIATOR] = []
        elif context is Context.CHRONICLE:
            state[INITIATOR].remove(candidates[0])
        else:
            for partner in candidates:
                state[INITIATOR].remove(partner)


@dataclass
class _Window:
    """One open A*/P/P* interval."""

    initiator: Occurrence
    collected: list[Occurrence] = field(default_factory=list)
    timer: TimerHandle | None = None


class AperiodicStarNode(CompositeNode):
    """``A*(E1, E2, E3)`` — accumulate E2s, fire once at E3.

    Fires at the terminator even when no middle occurrences were
    collected (the accumulated set is then empty), matching Snoop.
    """

    ROLES = (INITIATOR, MIDDLE, TERMINATOR)

    def _new_state(self):
        return {"windows": []}

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        state = self.state(context)
        windows: list[_Window] = state["windows"]
        if role == INITIATOR:
            window = _Window(occurrence)
            if context is Context.RECENT:
                state["windows"] = [window]
            else:
                windows.append(window)
            return
        if role == MIDDLE:
            for window in windows:
                if window.initiator.before(occurrence):
                    window.collected.append(occurrence)
            return

        candidates = [
            window for window in windows if window.initiator.before(occurrence)
        ]
        if not candidates:
            return
        if context is Context.RECENT:
            window = candidates[-1]
            state["windows"] = []
            self.emit(
                self._compose([window.initiator, *window.collected, occurrence]),
                context,
            )
            return
        if context is Context.CHRONICLE:
            window = candidates[0]
            windows.remove(window)
            self.emit(
                self._compose([window.initiator, *window.collected, occurrence]),
                context,
            )
            return
        if context is Context.CONTINUOUS:
            for window in candidates:
                windows.remove(window)
            for window in candidates:
                self.emit(
                    self._compose([window.initiator, *window.collected, occurrence]),
                    context,
                )
            return
        parts: list[Occurrence] = []
        for window in candidates:
            windows.remove(window)
            parts.append(window.initiator)
            parts.extend(window.collected)
        parts.append(occurrence)
        self.emit(self._compose(parts), context)


class PeriodicNode(CompositeNode):
    """``P(E1, [t], E3)`` — fire every ``t`` while an E1 window is open.

    Each tick produces an occurrence composed of the window's initiator
    plus a synthetic timer occurrence carrying the tick time (and the
    optional ``:parameter`` annotation).
    """

    ROLES = (INITIATOR, TERMINATOR)

    def __init__(self, detector, name, children, period_seconds: float,
                 parameter: str | None = None):
        super().__init__(detector, name, children)
        self.period_seconds = period_seconds
        self.parameter = parameter

    def _new_state(self):
        return {"windows": []}

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        state = self.state(context)
        windows: list[_Window] = state["windows"]
        if role == INITIATOR:
            window = _Window(occurrence)
            if context is Context.RECENT:
                for old in windows:
                    self._cancel(old)
                state["windows"] = [window]
                windows = state["windows"]
            else:
                windows.append(window)
            self._schedule(window, context)
            return
        # TERMINATOR
        candidates = [
            window for window in windows if window.initiator.before(occurrence)
        ]
        if not candidates:
            return
        if context is Context.CHRONICLE:
            candidates = candidates[:1]
        for window in candidates:
            self._cancel(window)
            windows.remove(window)

    def _schedule(self, window: _Window, context: Context) -> None:
        base = window.timer.fire_at if window.timer else window.initiator.time
        window.timer = self.detector._schedule_timer(
            base + self.period_seconds,
            lambda fire_time: self._tick(window, context, fire_time),
        )

    def _cancel(self, window: _Window) -> None:
        if window.timer is not None:
            window.timer.cancel()
            window.timer = None

    def _tick(self, window: _Window, context: Context, fire_time: float) -> None:
        state = self.state(context)
        if window not in state["windows"]:
            return
        tick = self.detector._timer_occurrence(
            f"{self.name}.tick", fire_time, self.parameter)
        self.emit(self._compose([window.initiator, tick]), context)
        self._schedule(window, context)


class PeriodicStarNode(CompositeNode):
    """``P*(E1, [t], E3)`` — accumulate ticks, fire once at E3."""

    ROLES = (INITIATOR, TERMINATOR)

    def __init__(self, detector, name, children, period_seconds: float,
                 parameter: str | None = None):
        super().__init__(detector, name, children)
        self.period_seconds = period_seconds
        self.parameter = parameter

    def _new_state(self):
        return {"windows": []}

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        state = self.state(context)
        windows: list[_Window] = state["windows"]
        if role == INITIATOR:
            window = _Window(occurrence)
            if context is Context.RECENT:
                for old in windows:
                    self._cancel(old)
                state["windows"] = [window]
            else:
                windows.append(window)
            self._schedule(window, context)
            return
        candidates = [
            window for window in windows if window.initiator.before(occurrence)
        ]
        if not candidates:
            return
        if context is Context.RECENT:
            chosen = [candidates[-1]]
        elif context is Context.CHRONICLE:
            chosen = [candidates[0]]
        else:
            chosen = candidates
        if context is Context.CUMULATIVE:
            parts: list[Occurrence] = []
            for window in chosen:
                self._cancel(window)
                windows.remove(window)
                parts.append(window.initiator)
                parts.extend(window.collected)
            parts.append(occurrence)
            self.emit(self._compose(parts), context)
            return
        for window in chosen:
            self._cancel(window)
            windows.remove(window)
            self.emit(
                self._compose([window.initiator, *window.collected, occurrence]),
                context,
            )

    def _schedule(self, window: _Window, context: Context) -> None:
        base = window.timer.fire_at if window.timer else window.initiator.time
        window.timer = self.detector._schedule_timer(
            base + self.period_seconds,
            lambda fire_time: self._tick(window, context, fire_time),
        )

    def _cancel(self, window: _Window) -> None:
        if window.timer is not None:
            window.timer.cancel()
            window.timer = None

    def _tick(self, window: _Window, context: Context, fire_time: float) -> None:
        state = self.state(context)
        if window not in state["windows"]:
            return
        tick = self.detector._timer_occurrence(
            f"{self.name}.tick", fire_time, self.parameter)
        window.collected.append(tick)
        self._schedule(window, context)


class PlusNode(CompositeNode):
    """``E PLUS [t]`` — fire ``t`` after each occurrence of E."""

    ROLES = (INITIATOR,)

    def __init__(self, detector, name, children, delta_seconds: float):
        super().__init__(detector, name, children)
        self.delta_seconds = delta_seconds

    def _new_state(self):
        return None

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        self.detector._schedule_timer(
            occurrence.time + self.delta_seconds,
            lambda fire_time: self._fire(occurrence, context, fire_time),
        )

    def _fire(self, occurrence: Occurrence, context: Context,
              fire_time: float) -> None:
        tick = self.detector._timer_occurrence(
            f"{self.name}.timer", fire_time, None)
        self.emit(self._compose([occurrence, tick]), context)
