"""Event-graph nodes: the base class and primitive event leaves.

The event graph mirrors Sentinel's LED: leaves are primitive events (here,
the database operations the agent's generated triggers notify about) and
inner nodes are Snoop operators.  Nodes propagate occurrences upward,
tagged with the parameter context in which the receiving node is
detecting.  A node participates in a context only if some rule on it or
above it requires that context (:meth:`EventNode.activate`), so unused
context machinery costs nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.tracing import FIG4_DETECTED, SPAN_LED_OP_PREFIX

from .occurrences import Occurrence
from .rules import Context

if TYPE_CHECKING:  # pragma: no cover
    from .detector import LocalEventDetector


class EventNode:
    """Base class of all event-graph nodes."""

    def __init__(self, detector: "LocalEventDetector", name: str):
        self.detector = detector
        self.name = name
        #: (parent node, role) registrations; one child may feed several
        #: parents (event reuse) or several roles of one parent.
        self.parents: list[tuple["EventNode", str]] = []
        self.active_contexts: set[Context] = set()

    # -- wiring ---------------------------------------------------------

    #: When one child occurrence feeds several roles (e.g. the same event
    #: is both initiator and terminator of a NOT), terminator-like roles
    #: must be processed first: the occurrence closes existing windows
    #: before opening/starting new ones.
    _ROLE_ORDER = {
        "terminator": 0,
        "right": 1,
        "middle": 2,
        "left": 3,
        "initiator": 4,
    }

    def attach_parent(self, parent: "EventNode", role: str) -> None:
        self.parents.append((parent, role))
        self.parents.sort(key=lambda entry: self._ROLE_ORDER.get(entry[1], 5))
        for context in parent.active_contexts:
            self.activate(context)

    def detach_parent(self, parent: "EventNode") -> None:
        self.parents = [
            (node, role) for node, role in self.parents if node is not parent
        ]

    def children(self) -> list["EventNode"]:
        """Direct constituents (empty for primitives)."""
        return []

    def role_children(self) -> list[tuple[str, "EventNode"]]:
        """(role, child) pairs (empty for primitives) — introspection
        surface for the ``explain trigger`` event-subgraph walk."""
        return []

    def activate(self, context: Context) -> None:
        """Enable detection in ``context`` for this node and its subtree."""
        if context in self.active_contexts:
            return
        self.active_contexts.add(context)
        for child in self.children():
            child.activate(context)

    # -- propagation ------------------------------------------------------

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        """Receive a child occurrence in a given context (composites only)."""
        raise NotImplementedError

    def emit(self, occurrence: Occurrence, context: Context) -> None:
        """Publish an occurrence of this node detected in ``context``:
        fire this node's rules for that context, then feed parents."""
        detector = self.detector
        metrics = detector.metrics
        if metrics is not None and metrics.enabled:
            detector._m_detected.labels("composite", context.value).inc()
        accounting = detector.accounting
        if accounting is not None and accounting.active():
            accounting.note_detection()
        trace = detector.trace
        traced = trace is not None and trace.enabled
        if traced:
            trace.emit(FIG4_DETECTED, f"{self.name} [{context.value}]")
        journal = detector.journal
        journaled = journal is not None and journal.enabled
        if journaled:
            # RECENT keeps its initiators for reuse; every other context
            # consumes the occurrences incorporated into a detection.
            journal.record_detection(
                self.name, context.value, occurrence,
                consuming=context is not Context.RECENT)
        log = detector.detection_log
        if log is not None:
            log.append((self.name, context, occurrence))
        detector._dispatch_rules(self, occurrence, context)
        for parent, role in self.parents:
            if context in parent.active_contexts:
                if traced or journaled:
                    self._feed_slow(parent, role, occurrence, context,
                                    trace if traced else None,
                                    journal if journaled else None)
                else:
                    parent.process(role, occurrence, context)

    def _feed_slow(self, parent: "EventNode", role: str,
                   occurrence: Occurrence, context: Context,
                   trace, journal) -> None:
        """Traced/journaled propagation of one occurrence into one parent
        (spans the hop; times it into the parent's latency window)."""
        start = journal.now() if journal is not None else 0.0
        if trace is not None:
            with trace.span(SPAN_LED_OP_PREFIX + type(parent).__name__,
                            parent.name):
                parent.process(role, occurrence, context)
        else:
            parent.process(role, occurrence, context)
        if journal is not None:
            journal.observe_node(parent.name, context.value,
                                 latency=journal.now() - start)

    def reset(self) -> None:
        """Discard any partial detection state (composites override)."""

    def describe(self) -> str:
        return self.name


class PrimitiveEventNode(EventNode):
    """A leaf: a named primitive event raised from outside the detector.

    Primitive occurrences are context-independent; when raised, the node
    fires its own rules once and feeds each parent once per context the
    parent is active in.
    """

    def on_raise(self, occurrence: Occurrence) -> None:
        detector = self.detector
        trace = detector.trace
        traced = trace is not None and trace.enabled
        journal = detector.journal
        journaled = journal is not None and journal.enabled
        detector._dispatch_rules(self, occurrence, None)
        for parent, role in self.parents:
            # Canonical Context definition order, not set order: Enum
            # members hash by identity, so iterating the set directly
            # would feed multi-context parents in an order that varies
            # between interpreter runs — unacceptable for seed-exact
            # reproduction (difftest corpus replay).
            for context in Context:
                if context not in parent.active_contexts:
                    continue
                if traced or journaled:
                    self._feed_slow(parent, role, occurrence, context,
                                    trace if traced else None,
                                    journal if journaled else None)
                else:
                    parent.process(role, occurrence, context)

    def process(self, role: str, occurrence: Occurrence, context: Context) -> None:
        raise AssertionError("primitive events have no children")
