"""ECA rules: parameter contexts, coupling modes, priorities.

Mirrors the RULE objects of the paper's Section 5.3::

    RULE *t_and = new RULE(name, event, condition, SybaseAction,
                           actionPara, RECENT);
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from .occurrences import Occurrence


class Context(enum.Enum):
    """Snoop parameter contexts (paper Sections 2.1 and 5.6).

    They differ in which initiator occurrences pair with a terminator and
    which occurrences are consumed on detection:

    - RECENT: only the most recent initiator is used; it is *not* consumed
      (a newer initiator simply replaces it).
    - CHRONICLE: initiator/terminator pairs in chronological (FIFO) order;
      paired occurrences are consumed.
    - CONTINUOUS: every pending initiator starts its own window; one
      terminator detects one occurrence per open window and consumes all
      of them.
    - CUMULATIVE: all occurrences accumulate and are emitted (and consumed)
      together in a single composite occurrence.
    """

    RECENT = "RECENT"
    CHRONICLE = "CHRONICLE"
    CONTINUOUS = "CONTINUOUS"
    CUMULATIVE = "CUMULATIVE"

    @classmethod
    def parse(cls, text: str) -> "Context":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown parameter context {text!r}") from None


class Coupling(enum.Enum):
    """Event-action coupling modes (paper Figure 9; Section 6 future work).

    - IMMEDIATE: the action runs synchronously when the event is detected.
    - DEFERRED: the action is queued and runs when the triggering
      transaction reaches its end (the detector's ``flush_deferred``).
    - DETACHED: the action runs independently (the agent uses a worker
      thread per action, its ``SybaseAction`` analogue).
    """

    IMMEDIATE = "IMMEDIATE"
    DEFERRED = "DEFERRED"
    DETACHED = "DETACHED"

    @classmethod
    def parse(cls, text: str) -> "Coupling":
        normalized = text.strip().upper()
        if normalized == "DEFERED":  # the paper's Figure 9 spelling
            normalized = "DEFERRED"
        try:
            return cls[normalized]
        except KeyError:
            raise ValueError(f"unknown coupling mode {text!r}") from None


#: Default modes per the paper ("The default coupling mode is IMMEDIATE,
#: and the default parameter context is RECENT" — Section 5, with the
#: figure and prose swapped; we follow the syntax figure's defaults).
DEFAULT_CONTEXT = Context.RECENT
DEFAULT_COUPLING = Coupling.IMMEDIATE
DEFAULT_PRIORITY = 1

#: Rule condition: predicate over the triggering occurrence.
Condition = Callable[[Occurrence], bool]
#: Rule action: consumer of the triggering occurrence.
Action = Callable[[Occurrence], object]


def always_true(_occurrence: Occurrence) -> bool:
    """The default (empty) condition."""
    return True


@dataclass
class Rule:
    """One ECA rule bound to an event node.

    Higher ``priority`` runs earlier among rules triggered by the same
    occurrence (the paper's positive-integer priorities).
    """

    name: str
    event_name: str
    action: Action
    condition: Condition = field(default=always_true)
    context: Context = DEFAULT_CONTEXT
    coupling: Coupling = DEFAULT_COUPLING
    priority: int = DEFAULT_PRIORITY
    enabled: bool = True
    #: Provenance bookkeeping (only maintained while the journal is on;
    #: surfaced by the ``explain trigger`` admin command).
    fire_count: int = field(default=0, compare=False)
    last_fired_at: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.priority < 1:
            raise ValueError("priority must be a positive integer")

    def note_fired(self, at: float) -> None:
        """Record one dispatch of this rule (provenance bookkeeping)."""
        self.fire_count += 1
        self.last_fired_at = at
