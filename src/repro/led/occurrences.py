"""Event occurrences and their composition.

An :class:`Occurrence` is one detected instance of an event.  A primitive
occurrence is its own single constituent; a composite occurrence carries
the primitive occurrences that produced it — these constituents are
exactly the *parameters* that Snoop's parameter contexts collect and that
the agent's action procedures consume (paper Section 5.6).

Ordering uses ``(time, seq)`` pairs: ``seq`` is a detector-global counter
so simultaneous raises still have a well-defined total order (needed by
SEQ's "strictly before" semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Occurrence:
    """One event occurrence.

    Attributes:
        event_name: name of the event this occurrence belongs to (inner
            anonymous operator nodes use a generated name).
        start: ``(time, seq)`` of the earliest constituent.
        end: ``(time, seq)`` of the latest constituent (detection point).
        constituents: the primitive occurrences composing this one, in
            detection order.
        params: payload of a primitive occurrence (empty for composites;
            a composite's data lives in its constituents).
    """

    event_name: str
    start: tuple[float, int]
    end: tuple[float, int]
    constituents: tuple["Occurrence", ...] = ()
    params: dict[str, object] = field(default_factory=dict, compare=False)

    @property
    def time(self) -> float:
        """Detection time (the end of the interval)."""
        return self.end[0]

    @property
    def seq(self) -> int:
        """Detection sequence number."""
        return self.end[1]

    def before(self, other: "Occurrence") -> bool:
        """Strictly-before test used by SEQ: this ends before other starts."""
        return self.end < other.start

    def flatten(self) -> tuple["Occurrence", ...]:
        """This occurrence's primitive constituents (itself if primitive)."""
        if not self.constituents:
            return (self,)
        return self.constituents

    def constituent_names(self) -> list[str]:
        """Names of the primitive constituents, in order."""
        return [item.event_name for item in self.flatten()]

    def describe(self) -> str:
        """Compact rendering for logs: ``name[c1@t1, c2@t2]``."""
        inner = ", ".join(
            f"{item.event_name}@{item.time:g}" for item in self.flatten()
        )
        return f"{self.event_name}[{inner}]"


def primitive(event_name: str, time: float, seq: int,
              params: dict[str, object] | None = None) -> Occurrence:
    """Build a primitive occurrence (its own single constituent)."""
    occurrence = Occurrence(
        event_name=event_name,
        start=(time, seq),
        end=(time, seq),
        constituents=(),
        params=params or {},
    )
    return occurrence


def compose(event_name: str, parts: list[Occurrence]) -> Occurrence:
    """Combine occurrences into a composite occurrence.

    The composite's interval spans all parts; constituents are the parts'
    primitive constituents in chronological order.
    """
    if not parts:
        raise ValueError("a composite occurrence needs at least one part")
    flattened: list[Occurrence] = []
    for part in parts:
        flattened.extend(part.flatten())
    flattened.sort(key=lambda occ: occ.end)
    start = min(part.start for part in parts)
    end = max(part.end for part in parts)
    return Occurrence(
        event_name=event_name,
        start=start,
        end=end,
        constituents=tuple(flattened),
    )
