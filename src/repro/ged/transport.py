"""Cross-site notification transport for the sharded GED.

A site's forwarding rule ships each imported occurrence to the GED
router as a ``syb_sendmsg``-format datagram — exactly the payload the
native triggers already send (:mod:`repro.agent.messages`)::

    <site> <table> <operation> begin <Eventname::AppId> <vNo>

Payloads may be ``;``-coalesced multi-segment batches, and while tracing
is enabled at the home site the sending command's trace context rides as
the ``;tc=`` trailer segment — the router re-activates it, so a
cross-site composite detection renders as one connected trace tree
rooted at the originating client command.

:class:`InProcessTransport` is the deterministic default: delivery is
synchronous on the sending thread, which makes multi-site differential
runs exactly reproducible (the same property the agent's synchronous
notification channel provides locally).  The transport refuses payloads
addressed from a site marked down and counts every datagram and batch
segment, so site-failure tests can assert exactly what crossed the wire.
"""

from __future__ import annotations

from typing import Callable

from repro.agent.messages import Notification, split_trace_context
from repro.errors import ConfigurationError

#: A router callback: ``(from_site, payload)`` for one datagram.
Router = Callable[[str, str], None]


class TransportError(ConfigurationError):
    """A datagram could not be accepted by the transport."""


class InProcessTransport:
    """Synchronous in-process site-to-router datagram transport.

    Models the paper's ``syb_sendmsg`` hop between autonomous sites
    without sockets: the router callback runs on the sending thread, so
    cross-site propagation is deterministic and immediate — the
    multi-site analogue of the agent's ``SynchronousChannel``.
    """

    def __init__(self):
        self._router: Router | None = None
        #: sites currently refused (simulated crash isolation)
        self._down: set[str] = set()
        self.sent = 0
        self.segments = 0
        self.rejected = 0

    def attach(self, router: Router) -> None:
        """Register the GED router's delivery callback."""
        self._router = router

    # -- liveness -------------------------------------------------------

    def mark_down(self, site: str) -> None:
        """Refuse further datagrams from ``site`` (simulated crash)."""
        self._down.add(site)

    def mark_up(self, site: str) -> None:
        """Accept datagrams from ``site`` again."""
        self._down.discard(site)

    def is_down(self, site: str) -> bool:
        """Whether the transport currently refuses ``site``."""
        return site in self._down

    # -- sending --------------------------------------------------------

    def send(self, from_site: str, payload: str) -> None:
        """Deliver one (possibly coalesced, possibly traced) datagram.

        Malformed payloads are rejected loudly — a router fed garbage
        must never half-apply a batch — and datagrams from a down site
        are dropped and counted (a crashed site's in-flight packets).
        """
        if self._router is None:
            raise TransportError("no router attached to the transport")
        if from_site in self._down:
            self.rejected += 1
            return
        clean, _token = split_trace_context(payload)
        segments = Notification.decode_batch(clean)  # validate before routing
        self.sent += 1
        self.segments += len(segments)
        self._router(from_site, payload)
