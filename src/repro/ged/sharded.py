"""Sharded multi-site Global Event Detector (paper Section 6, scaled out).

The single-node :class:`~repro.ged.global_detector.GlobalEventDetector`
centralises every global composite graph in one LED.  This module
promotes the GED into a *sharded deployment layer*: the participating
sites form a consistent-hash ring (:mod:`repro.ged.partitioning`) and
each site's agent hosts a **shard** — an extra LED holding exactly the
global composite graphs the ring assigns to that site.  Constituents
that occur at other sites appear in a shard as
:class:`~repro.led.remote.RemoteEventNode` leaves fed by the router.

Data flow for one cross-site composite detection::

    site A trigger ─▶ agent LED ─▶ __ged_forward rule
        ─▶ transport datagram  "user table op begin Event::A vNo[;tc=..]"
        ─▶ router: stamp global gseq, journal, fan out
        ─▶ owning shard LED: raise_remote -> Snoop graph -> global rule

Three properties carry the paper semantics across the sharding:

* **Global sequencing** — the router stamps every forwarded occurrence
  with a single global sequence number used as both its time and seq,
  so interval comparisons (``SEQ``'s *strictly before*) evaluate
  identically at whichever shard the graph lives on.  Sharded and
  single-site deployments of the same rule set are therefore
  semantically equivalent (asserted by the multi-site difftest sweep).
* **Journaled recovery** — every routed occurrence is journaled at the
  router.  When a site crashes mid-way through a half-detected
  composite, :meth:`ShardedGed.recover_site` first runs the agent's own
  torn-write repair (``agent.recover()``), then rebuilds only that
  site's partition and replays the journal entries its composites
  subscribe to, in gseq order.  Replayed IMMEDIATE firings are
  suppressed and already-fired detections are deduplicated, so a
  composite either completes after recovery (DEFERRED coupling) or is
  cleanly discarded (IMMEDIATE coupling) — it never double-fires.
* **Trace continuity** — the forwarding rule attaches the sending
  command's trace context as the datagram's ``;tc=`` trailer and the
  router re-activates it, so a cross-site composite renders as one
  connected trace tree under :data:`~repro.obs.tracing.SPAN_GED_ROUTE`
  / :data:`~repro.obs.tracing.SPAN_GED_SHARD` spans.
"""

from __future__ import annotations

import itertools
from collections import Counter as TallyCounter
from dataclasses import dataclass, field

from repro.agent.messages import (
    Notification,
    attach_trace_context,
    split_trace_context,
)
from repro.errors import ConfigurationError
from repro.led import Context, Coupling, LocalEventDetector
from repro.led.occurrences import Occurrence, primitive
from repro.obs.tracing import (
    SPAN_GED_REPLAY,
    SPAN_GED_ROUTE,
    SPAN_GED_SHARD,
    PipelineTrace,
    TraceContext,
)
from repro.snoop import parse_event_expression
from repro.snoop.ast import EventExpr, referenced_events

from .partitioning import DEFAULT_REPLICAS, HashRing
from .transport import InProcessTransport, TransportError

#: prefix of the forwarding rules installed on home-site LEDs
FORWARD_RULE_PREFIX = "__ged_fwd_"


def qualified_name(site: str, event_internal: str) -> str:
    """Snoop's ``Eventname::AppId`` qualified form for an imported event."""
    return f"{event_internal}::{site}"


@dataclass(frozen=True)
class JournalEntry:
    """One routed occurrence, as durably remembered by the router.

    Attributes:
        gseq: the router's global sequence number (total order).
        name: qualified global event class name.
        site: originating site.
        occurrence: the router-built occurrence fed to subscriber shards
            (its ``(time, seq)`` is ``(float(gseq), gseq)``).
    """

    gseq: int
    name: str
    site: str
    occurrence: Occurrence


@dataclass(frozen=True)
class GedRule:
    """A global ECA rule attached to a global composite event."""

    name: str
    event_name: str
    action: object = field(compare=False)
    context: Context = Context.RECENT
    coupling: Coupling = Coupling.IMMEDIATE
    priority: int = 1


@dataclass(frozen=True)
class GedFiring:
    """Record of one global rule firing (kept on :attr:`ShardedGed.firings`).

    Attributes:
        rule_name / event_name: the rule and its composite event.
        occurrence: the composite occurrence that fired the rule.
        context / coupling: the rule's parameter context and coupling.
        site: the shard (site) where the detection happened.
        replayed: True when the firing ran during journal replay.
    """

    rule_name: str
    event_name: str
    occurrence: Occurrence
    context: Context
    coupling: Coupling
    site: str
    replayed: bool = False


@dataclass(frozen=True)
class SiteRecovery:
    """Outcome of :meth:`ShardedGed.recover_site` for one site.

    Attributes:
        site: the recovered site.
        agent_repair: the agent's own ``recover()`` report (PR 2's
            torn-write repair), ``{}`` when the agent has none.
        replayed: journal entries re-raised into the rebuilt shard.
        rearmed: composites whose partial state survives recovery
            (they have at least one non-IMMEDIATE rule and may still
            complete after recovery).
        discarded: IMMEDIATE-only composites whose half-detected state
            was cleanly reset (they can never fire late).
    """

    site: str
    agent_repair: dict
    replayed: int
    rearmed: tuple[str, ...]
    discarded: tuple[str, ...]


@dataclass(frozen=True)
class _ImportSpec:
    """Registration record of one imported (site-qualified) event class."""

    site: str
    event_internal: str


@dataclass(frozen=True)
class _CompositeSpec:
    """Registration record of one global composite event class."""

    name: str
    expression: str
    ast: EventExpr = field(compare=False)
    leaves: tuple[str, ...] = ()


class GedShard:
    """One site's slice of the global detection graph.

    A thin wrapper pairing the site name with the LED that hosts the
    composite graphs assigned to it and the ordered list of composite
    class names it currently owns.
    """

    def __init__(self, site: str):
        self.site = site
        self.led = LocalEventDetector()
        #: owned global composite names, in definition order
        self.owned: list[str] = []


class ShardedGed:
    """Consistent-hash-sharded Global Event Detector across N sites.

    Construct, :meth:`add_site` each participating agent, then
    :meth:`import_event` the per-site primitives and
    :meth:`define_global_event` / :meth:`add_global_rule` the cross-site
    graphs.  With ``sharded=False`` the same API degenerates to a
    single-coordinator deployment (every class owned by the first site)
    — the difftest sweep runs both shapes and asserts they detect
    identically.

    Args:
        sharded: when False, all classes collapse onto the first
            registered site (the coordinator).
        replicas: virtual nodes per site on the hash ring.
        transport: cross-site datagram transport (defaults to a fresh
            :class:`~repro.ged.transport.InProcessTransport`).
        trace: optional :class:`~repro.obs.tracing.PipelineTrace`; a
            disabled private one is created when omitted.
        metrics: optional :class:`~repro.obs.MetricsRegistry` for
            per-site routed/fired/replayed counters.
    """

    def __init__(self, *, sharded: bool = True,
                 replicas: int = DEFAULT_REPLICAS,
                 transport: InProcessTransport | None = None,
                 trace: PipelineTrace | None = None,
                 metrics=None):
        self.sharded = sharded
        self.ring = HashRing(replicas=replicas)
        self.transport = transport if transport is not None else InProcessTransport()
        self.transport.attach(self._route)
        self.trace = trace if trace is not None else PipelineTrace()
        self.sites: dict[str, object] = {}
        self.status: dict[str, str] = {}
        self.shards: dict[str, GedShard] = {}
        self._coordinator: str | None = None
        self.imports: dict[str, _ImportSpec] = {}
        self.composites: dict[str, _CompositeSpec] = {}
        self._composite_order: list[str] = []
        self._subscribers: dict[str, list[str]] = {}
        self.rules: dict[str, GedRule] = {}
        self._rule_order: list[str] = []
        self._forward_rules: dict[str, tuple[str, str]] = {}
        self.journal: list[JournalEntry] = []
        self._gseq = itertools.count(1)
        self.firings: list[GedFiring] = []
        self._fired: set[tuple] = set()
        self._replaying_site: str | None = None
        #: per-site tallies surfaced by ``show agent sites``
        self.routed_by_site: TallyCounter = TallyCounter()
        self.fired_by_site: TallyCounter = TallyCounter()
        self.replayed_by_site: TallyCounter = TallyCounter()
        self.suppressed = 0
        self.deduped = 0
        self.skipped_down = 0
        self.failures = 0
        self._log_active = False
        self._archived_logs: list[tuple[str, list]] = []
        self._m_routed = self._m_fired = self._m_replayed = None
        if metrics is not None:
            self._m_routed = metrics.counter(
                "ged_routed_total", "occurrences routed by the GED", ("site",))
            self._m_fired = metrics.counter(
                "ged_rules_fired_total", "global rule firings", ("site",))
            self._m_replayed = metrics.counter(
                "ged_replayed_total", "journal entries replayed", ("site",))

    # ------------------------------------------------------------------
    # membership

    def add_site(self, name: str, agent) -> list[tuple[str, str | None, str]]:
        """Register a participating site and rebalance onto it.

        ``agent`` is duck-typed: it needs an ``.led``
        (:class:`~repro.led.LocalEventDetector`) and, for tracing and
        recovery, ``.trace`` / ``.recover()`` — i.e. an
        :class:`~repro.agent.EcaAgent` or any stand-in.  Returns the
        ``(class, old_owner, new_owner)`` moves the join caused.
        """
        if name in self.sites:
            raise ConfigurationError(f"site '{name}' is already registered")
        self.sites[name] = agent
        self.status[name] = "up"
        shard = GedShard(name)
        self.shards[name] = shard
        if self._log_active:
            shard.led.start_detection_log()
        if self.sharded:
            self.ring.add_site(name)
        if self._coordinator is None:
            self._coordinator = name
        try:
            agent.ged_sites = (self, name)
        except AttributeError:
            pass
        if self.composites and self.sharded:
            return self._apply_assignment()
        return []

    def remove_site(self, name: str) -> list[tuple[str, str | None, str]]:
        """Gracefully retire a site, migrating its classes elsewhere.

        A site that still homes imported events cannot leave (its
        triggers are the source of those classes).  Returns the moves
        the departure caused.
        """
        if name not in self.sites:
            raise ConfigurationError(f"site '{name}' is not registered")
        homed = [n for n, spec in self.imports.items() if spec.site == name]
        if homed:
            raise ConfigurationError(
                f"site '{name}' still homes imported events: {homed}")
        if not self.sharded and name == self._coordinator and self.composites:
            raise ConfigurationError(
                "cannot remove the coordinator of a non-sharded GED")
        agent = self.sites.pop(name)
        departing = set(self.shards[name].owned)
        del self.status[name]
        del self.shards[name]
        if self.sharded:
            self.ring.remove_site(name)
        self.transport.mark_up(name)
        if self._coordinator == name:
            self._coordinator = next(iter(self.sites), None)
        try:
            if getattr(agent, "ged_sites", None) == (self, name):
                agent.ged_sites = None
        except AttributeError:
            pass
        if self.composites:
            # The departed shard is gone, so _apply_assignment sees no
            # prior owner for its classes — restore it in the report.
            return [(comp, name if comp in departing else old, new)
                    for comp, old, new in self._apply_assignment()]
        return []

    def owner_of(self, class_name: str) -> str:
        """The site whose shard owns a global event class."""
        if not self.sharded:
            if self._coordinator is None:
                raise ConfigurationError("no sites registered")
            return self._coordinator
        return self.ring.owner(class_name)

    def partition_map(self) -> dict[str, tuple[str, ...]]:
        """All global classes (imports and composites) by owning site."""
        classes = list(self.imports) + self._composite_order
        out: dict[str, list[str]] = {site: [] for site in self.sites}
        for name in classes:
            out[self.owner_of(name)].append(name)
        return {site: tuple(names) for site, names in out.items()}

    # ------------------------------------------------------------------
    # class registration

    def import_event(self, site: str, event_internal: str) -> str:
        """Import a site's primitive event into the global scope.

        Installs a forwarding rule at the home agent's LED that ships
        each occurrence to the router as a ``syb_sendmsg`` datagram
        (with the ``;tc=`` trace trailer while the home site's tracing
        is enabled).  Returns the qualified global name.
        """
        agent = self._site_agent(site)
        name = qualified_name(site, event_internal)
        if name in self.imports:
            return name
        if not agent.led.has_event(event_internal):
            raise ConfigurationError(
                f"event '{event_internal}' is not defined at site '{site}'")
        self.imports[name] = _ImportSpec(site=site, event_internal=event_internal)
        transport = self.transport

        def forward(occurrence: Occurrence, _site=site, _name=name,
                    _agent=agent) -> None:
            params = occurrence.params
            v_no = params.get("vNo")
            notification = Notification(
                user=str(params.get("user", "-")),
                table=str(params.get("table", "-")),
                operation=str(params.get("operation", "-")),
                phase="begin",
                event_internal=_name,
                v_no=v_no if isinstance(v_no, int) else None,
            )
            payload = notification.encode()
            trace = getattr(_agent, "trace", None)
            if trace is not None and trace.enabled:
                ctx = trace.current_context()
                if ctx is not None:
                    payload = attach_trace_context(payload, ctx.encode())
            transport.send(_site, payload)

        rule_name = f"{FORWARD_RULE_PREFIX}{name}"
        agent.led.add_rule(rule_name, event_internal, forward,
                           context=Context.RECENT,
                           coupling=Coupling.IMMEDIATE)
        self._forward_rules[name] = (site, rule_name)
        return name

    def define_global_event(self, name: str, expression: str,
                            *, owner: str | None = None) -> str:
        """Define a global composite over imported (qualified) events.

        Every leaf of ``expression`` must be an imported class; global
        composites cannot reference other global composites (no event
        reuse across the global scope — each composite graph must be
        self-contained so it can live whole on one shard).  ``owner``
        pins the class to a site, overriding the hash ring.
        """
        if name in self.composites or name in self.imports:
            raise ConfigurationError(f"global event '{name}' already exists")
        ast = parse_event_expression(expression)
        leaves = tuple(referenced_events(ast))
        for leaf in leaves:
            if leaf in self.composites:
                raise ConfigurationError(
                    f"global event '{name}' references composite '{leaf}': "
                    "the sharded GED does not support global event reuse "
                    "(each composite graph must be shard-local)")
            if leaf not in self.imports:
                raise ConfigurationError(
                    f"global event '{name}' references '{leaf}' which has "
                    "not been imported")
        spec = _CompositeSpec(name=name, expression=expression,
                              ast=ast, leaves=leaves)
        self.composites[name] = spec
        self._composite_order.append(name)
        for leaf in leaves:
            self._subscribers.setdefault(leaf, []).append(name)
        if owner is not None:
            self._site_agent(owner)  # validate
            if self.sharded:
                self.ring.pin(name, owner)
        site = self.owner_of(name)
        shard = self.shards[site]
        self._install_composite(shard, spec)
        shard.owned.append(name)
        return site

    def add_global_rule(self, rule_name: str, event_name: str,
                        action=None, *,
                        context: Context | str = Context.RECENT,
                        coupling: Coupling | str = Coupling.IMMEDIATE,
                        priority: int = 1) -> GedRule:
        """Attach a rule to a global composite event.

        ``action`` may be ``None``: the firing is still recorded on
        :attr:`firings` (and deduplicated across recovery replay), which
        is all the differential harness needs.
        """
        if rule_name in self.rules:
            raise ConfigurationError(f"global rule '{rule_name}' already exists")
        if event_name not in self.composites:
            raise ConfigurationError(
                f"'{event_name}' is not a global composite event")
        if isinstance(context, str):
            context = Context.parse(context)
        if isinstance(coupling, str):
            coupling = Coupling.parse(coupling)
        rule = GedRule(name=rule_name, event_name=event_name, action=action,
                       context=context, coupling=coupling, priority=priority)
        self.rules[rule_name] = rule
        self._rule_order.append(rule_name)
        shard = self.shards[self.owner_of(event_name)]
        shard.led.add_rule(rule_name, event_name, self._action_for(rule),
                           context=context, coupling=coupling,
                           priority=priority)
        return rule

    # ------------------------------------------------------------------
    # routing

    def _route(self, from_site: str, payload: str) -> None:
        """Transport callback: decode, sequence, journal, fan out."""
        clean, token = split_trace_context(payload)
        ctx = TraceContext.decode(token) if token else None
        notifications = Notification.decode_batch(clean)
        with self.trace.activate(ctx):
            with self.trace.span(SPAN_GED_ROUTE, from_site):
                for notification in notifications:
                    self._route_one(from_site, notification)

    def _route_one(self, from_site: str, notification: Notification) -> None:
        name = notification.event_internal
        spec = self.imports.get(name)
        if spec is None:
            raise TransportError(
                f"datagram for unknown global event '{name}'")
        if spec.site != from_site:
            raise TransportError(
                f"site '{from_site}' sent a datagram for '{name}' "
                f"homed at '{spec.site}'")
        gseq = next(self._gseq)
        occurrence = primitive(name, float(gseq), gseq, {
            "site": from_site,
            "user": notification.user,
            "table": notification.table,
            "operation": notification.operation,
            "vNo": notification.v_no,
        })
        self.journal.append(JournalEntry(
            gseq=gseq, name=name, site=from_site, occurrence=occurrence))
        self.routed_by_site[from_site] += 1
        if self._m_routed is not None:
            self._m_routed.labels(from_site).inc()
        for owner in self._subscriber_shards(name):
            if self.status.get(owner) != "up":
                self.skipped_down += 1
                continue
            with self.trace.span(SPAN_GED_SHARD, owner):
                self.shards[owner].led.raise_remote(name, occurrence)

    def _subscriber_shards(self, name: str) -> list[str]:
        """Owning shards of the composites subscribed to ``name``,
        deduplicated in composite-definition order."""
        owners: list[str] = []
        for comp in self._subscribers.get(name, ()):
            owner = self.owner_of(comp)
            if owner not in owners:
                owners.append(owner)
        return owners

    def flush_deferred(self) -> list[GedFiring]:
        """Run queued DEFERRED global rules on every live shard.

        Shards flush in sorted site order (deterministic); returns the
        global firings this flush produced.
        """
        before = len(self.firings)
        for site in sorted(self.shards):
            if self.status[site] == "up":
                self.shards[site].led.flush_deferred()
        return self.firings[before:]

    # ------------------------------------------------------------------
    # failure and recovery

    def fail_site(self, site: str) -> None:
        """Simulate a crash: drop the site's in-memory shard state.

        The transport starts refusing the site's datagrams, routing
        skips its shard (occurrences are still journaled), and any
        half-detected composite state on the shard is lost — exactly
        what :meth:`recover_site` must repair.
        """
        self._site_agent(site)
        if self.status[site] == "down":
            return
        self.status[site] = "down"
        self.transport.mark_down(site)
        old = self.shards[site]
        if self._log_active:
            self._archived_logs.append((site, old.led.stop_detection_log()))
        fresh = GedShard(site)
        fresh.owned = list(old.owned)
        self.shards[site] = fresh
        self.failures += 1

    def recover_site(self, site: str) -> SiteRecovery:
        """Bring a failed site back: repair, rebuild, replay its partition.

        Composes with the agent's own crash recovery (``agent.recover()``
        repairs torn notification writes at the site), then rebuilds
        only this site's partition of the global graph and replays the
        journal entries its composites subscribe to, in gseq order.
        Replayed IMMEDIATE firings are suppressed and IMMEDIATE-only
        composites are reset afterwards (cleanly discarded); DEFERRED
        detections re-queue and complete at the next
        :meth:`flush_deferred` — never firing twice (:attr:`deduped`).
        """
        agent = self._site_agent(site)
        if self.status[site] != "down":
            raise ConfigurationError(f"site '{site}' is not down")
        recover = getattr(agent, "recover", None)
        agent_repair = recover() if callable(recover) else {}
        self.transport.mark_up(site)
        self.status[site] = "up"
        owned = [c for c in self._composite_order if self.owner_of(c) == site]
        replayed, discarded = self._rebuild_shard(
            site, owned, replay=True, discard_immediate=True)
        rearmed = tuple(c for c in owned if c not in discarded)
        return SiteRecovery(site=site, agent_repair=agent_repair,
                            replayed=replayed, rearmed=rearmed,
                            discarded=tuple(discarded))

    # ------------------------------------------------------------------
    # rebalancing

    def rebalance(self, max_ratio: float = 1.5) -> list[tuple[str, str | None, str]]:
        """Skew-aware rebalancing of composite classes across sites.

        Classes are weighted by observed routed traffic on their leaves
        (plus one, so idle classes still count).  While the most loaded
        site exceeds ``max_ratio`` times the mean load, its heaviest
        movable class is pinned to the least loaded site.  Changed
        shards are rebuilt through the journal-replay machinery, so
        in-flight partial detections survive the move.  Returns the
        ``(class, old_owner, new_owner)`` moves applied.
        """
        if not self.sharded or not self.composites or not self.sites:
            return []
        tally = TallyCounter(entry.name for entry in self.journal)
        weight = {
            name: 1 + sum(tally[leaf] for leaf in spec.leaves)
            for name, spec in self.composites.items()
        }
        load = {site: 0 for site in self.sites}
        owned: dict[str, list[str]] = {site: [] for site in self.sites}
        for comp in self._composite_order:
            site = self.owner_of(comp)
            load[site] += weight[comp]
            owned[site].append(comp)
        for _ in range(8 * len(self.composites) + 8):
            mean = sum(load.values()) / len(load)
            hi = max(sorted(load), key=lambda s: load[s])
            lo = min(sorted(load), key=lambda s: load[s])
            if load[hi] <= max_ratio * max(mean, 1.0) or len(owned[hi]) <= 1:
                break
            movable = sorted(owned[hi], key=lambda c: (-weight[c], c))
            comp = next((c for c in movable
                         if load[lo] + weight[c] < load[hi]), None)
            if comp is None:
                break
            owned[hi].remove(comp)
            owned[lo].append(comp)
            load[hi] -= weight[comp]
            load[lo] += weight[comp]
            self.ring.pin(comp, lo)
        return self._apply_assignment()

    def _apply_assignment(self, replay: bool = True) -> list[tuple[str, str | None, str]]:
        """Rebuild every shard whose owned set changed; return the moves."""
        old_owner: dict[str, str] = {}
        for site, shard in self.shards.items():
            for comp in shard.owned:
                old_owner[comp] = site
        new_owned: dict[str, list[str]] = {site: [] for site in self.sites}
        for comp in self._composite_order:
            new_owned[self.owner_of(comp)].append(comp)
        moves = [(comp, old_owner.get(comp), site)
                 for site, comps in new_owned.items()
                 for comp in comps if old_owner.get(comp) != site]
        for site in sorted(self.sites):
            if self.shards[site].owned != new_owned[site]:
                self._rebuild_shard(site, new_owned[site], replay=replay)
        return moves

    # ------------------------------------------------------------------
    # shard construction and replay

    def _install_composite(self, shard: GedShard, spec: _CompositeSpec) -> None:
        for leaf in spec.leaves:
            if not shard.led.has_event(leaf):
                shard.led.define_remote(leaf, self.imports[leaf].site)
        shard.led.define_composite(spec.name, spec.ast)
        for rule_name in self._rule_order:
            rule = self.rules[rule_name]
            if rule.event_name == spec.name:
                shard.led.add_rule(rule.name, spec.name,
                                   self._action_for(rule),
                                   context=rule.context,
                                   coupling=rule.coupling,
                                   priority=rule.priority)

    def _rebuild_shard(self, site: str, owned: list[str], replay: bool,
                       discard_immediate: bool = False
                       ) -> tuple[int, list[str]]:
        old = self.shards.get(site)
        if old is not None and self._log_active:
            self._archived_logs.append((site, old.led.stop_detection_log()))
        shard = GedShard(site)
        shard.owned = list(owned)
        self.shards[site] = shard
        if self._log_active:
            shard.led.start_detection_log()
        for comp in owned:
            self._install_composite(shard, self.composites[comp])
        if not replay:
            return 0, []
        return self._replay_into(site, shard, discard_immediate)

    def _replay_into(self, site: str, shard: GedShard,
                     discard_immediate: bool) -> tuple[int, list[str]]:
        subscribed = {leaf for comp in shard.owned
                      for leaf in self.composites[comp].leaves}
        count = 0
        if subscribed:
            self._replaying_site = site
            try:
                with self.trace.span(SPAN_GED_REPLAY, site):
                    for entry in self.journal:
                        if entry.name in subscribed:
                            shard.led.raise_remote(entry.name, entry.occurrence)
                            count += 1
            finally:
                self._replaying_site = None
        self.replayed_by_site[site] += count
        if self._m_replayed is not None:
            self._m_replayed.labels(site).inc(count)
        # After a *crash*, the transactional context of the earlier
        # constituents is gone, so an IMMEDIATE-only composite cannot
        # fire for them without violating its coupling: reset the
        # re-armed partial state (cleanly discarded).  A *planned* move
        # (remove_site / rebalance) lost nothing — partial state
        # survives the migration.
        discarded: list[str] = []
        if not discard_immediate:
            return count, discarded
        for comp in shard.owned:
            comp_rules = [self.rules[n] for n in self._rule_order
                          if self.rules[n].event_name == comp]
            if comp_rules and all(r.coupling is Coupling.IMMEDIATE
                                  for r in comp_rules):
                self._reset_subtree(shard.led.get_event(comp))
                discarded.append(comp)
        return count, discarded

    @staticmethod
    def _reset_subtree(node) -> None:
        """Reset an event node and its whole operator subtree (anonymous
        inner nodes hold state too; shared leaves are stateless)."""
        node.reset()
        for child in node.children():
            ShardedGed._reset_subtree(child)

    # ------------------------------------------------------------------
    # rule execution

    def _action_for(self, rule: GedRule):
        """The LED action wrapper for a global rule: dedup across replay,
        suppress replayed IMMEDIATE firings, record the firing."""
        def run(occurrence: Occurrence, _rule=rule) -> None:
            key = (_rule.name, tuple((o.event_name, o.seq)
                                     for o in occurrence.flatten()))
            if key in self._fired:
                self.deduped += 1
                return
            if self._replaying_site is not None \
                    and _rule.coupling is Coupling.IMMEDIATE:
                self.suppressed += 1
                return
            self._fired.add(key)
            site = self.owner_of(_rule.event_name)
            self.fired_by_site[site] += 1
            if self._m_fired is not None:
                self._m_fired.labels(site).inc()
            self.firings.append(GedFiring(
                rule_name=_rule.name, event_name=_rule.event_name,
                occurrence=occurrence, context=_rule.context,
                coupling=_rule.coupling, site=site,
                replayed=self._replaying_site is not None))
            if _rule.action is not None:
                _rule.action(occurrence)
        return run

    # ------------------------------------------------------------------
    # observation surfaces

    def start_detection_logs(self) -> None:
        """Begin recording per-shard detection logs (difftest harness)."""
        self._log_active = True
        self._archived_logs = []
        for shard in self.shards.values():
            shard.led.start_detection_log()

    def stop_detection_logs(self) -> list[tuple[str, list]]:
        """Stop recording; return ``(site, log)`` pairs, archived logs
        from rebuilt/failed shards first, then live shards in site order."""
        self._log_active = False
        logs = list(self._archived_logs)
        self._archived_logs = []
        for site in sorted(self.shards):
            logs.append((site, self.shards[site].led.stop_detection_log()))
        return logs

    def site_rows(self) -> list[tuple]:
        """Per-site status rows backing ``show agent sites``."""
        rows = []
        pmap = self.partition_map() if self.sites else {}
        for site in sorted(self.sites):
            homed = sum(1 for spec in self.imports.values()
                        if spec.site == site)
            rows.append((
                site,
                self.status[site],
                len(self.shards[site].owned),
                homed,
                len(pmap.get(site, ())),
                self.routed_by_site.get(site, 0),
                self.replayed_by_site.get(site, 0),
            ))
        return rows

    def close(self) -> None:
        """Drop the forwarding rules installed on the home-site LEDs."""
        for name, (site, rule_name) in list(self._forward_rules.items()):
            agent = self.sites.get(site)
            if agent is None:
                continue
            try:
                agent.led.drop_rule(rule_name)
            except Exception:
                pass
        self._forward_rules.clear()

    # ------------------------------------------------------------------

    def _site_agent(self, site: str):
        agent = self.sites.get(site)
        if agent is None:
            raise ConfigurationError(f"site '{site}' is not registered")
        return agent
