"""``repro.ged`` — the Global Event Detector (paper Section 6 future work).

"We plan on supporting heterogeneous distributed active capability ...
and use a global event detector (GED) for events and rules across
application/systems."

This extension implements that plan at laptop scale: a
:class:`GlobalEventDetector` owns its own LED whose primitive events are
*imported* events from any number of site agents.  When an imported event
occurs at its home site, the site's LED forwards the occurrence to the
GED, where global composite events (spanning sites) are detected and
global rules fire.
"""

from .global_detector import GlobalEventDetector, GlobalRuleFiring

__all__ = ["GlobalEventDetector", "GlobalRuleFiring"]
