"""``repro.ged`` — the Global Event Detector (paper Section 6 future work).

"We plan on supporting heterogeneous distributed active capability ...
and use a global event detector (GED) for events and rules across
application/systems."

This extension implements that plan at laptop scale, in two deployment
shapes:

- :class:`GlobalEventDetector` — the original single-node GED: one LED
  whose primitive events are *imported* events from any number of site
  agents; global composites and rules live centrally.
- :class:`ShardedGed` — the sharded deployment layer: sites form a
  consistent-hash ring (:class:`HashRing`), each site's shard hosts the
  global composite graphs assigned to it, and the router stamps a global
  sequence so cross-site detection is equivalent to the single-node
  shape.  Ships with journaled per-site recovery, skew-aware
  rebalancing, and an in-process ``syb_sendmsg`` datagram transport
  (:class:`InProcessTransport`).
"""

from .global_detector import GlobalEventDetector, GlobalRuleFiring
from .partitioning import DEFAULT_REPLICAS, HashRing, stable_hash
from .sharded import (
    GedFiring,
    GedRule,
    GedShard,
    JournalEntry,
    ShardedGed,
    SiteRecovery,
    qualified_name,
)
from .transport import InProcessTransport, TransportError

__all__ = [
    "DEFAULT_REPLICAS",
    "GedFiring",
    "GedRule",
    "GedShard",
    "GlobalEventDetector",
    "GlobalRuleFiring",
    "HashRing",
    "InProcessTransport",
    "JournalEntry",
    "ShardedGed",
    "SiteRecovery",
    "TransportError",
    "qualified_name",
    "stable_hash",
]
