"""Global composite event detection across multiple ECA agents."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.agent import EcaAgent
from repro.errors import ConfigurationError
from repro.led import Context, Coupling, LocalEventDetector, ManualClock, Occurrence
from repro.led.clock import VirtualClock


@dataclass
class GlobalRuleFiring:
    """Record of one global rule execution."""

    rule_name: str
    event_name: str
    occurrence: Occurrence


class GlobalEventDetector:
    """Detects composite events whose constituents occur at different
    sites (agents).

    Imported events are named ``<site>::<event internal>`` inside the
    GED, mirroring Snoop's ``Eventname::AppId`` qualified form
    (Section 2.1's BNF).
    """

    def __init__(self, clock: VirtualClock | None = None):
        self.led = LocalEventDetector(clock=clock or ManualClock())
        self.sites: dict[str, EcaAgent] = {}
        self.firings: list[GlobalRuleFiring] = []
        self._imports: dict[str, str] = {}  # global name -> site

    # ------------------------------------------------------------------
    # sites and imports

    def register_site(self, name: str, agent: EcaAgent) -> None:
        """Attach a site agent under a unique site name."""
        if name in self.sites:
            raise ConfigurationError(f"site '{name}' is already registered")
        self.sites[name] = agent

    def global_name(self, site: str, event_internal: str) -> str:
        """The GED-side name of an imported event."""
        return f"{event_internal}::{site}"

    def import_event(self, site: str, event_internal: str) -> str:
        """Make a site event visible to global composite definitions.

        Installs a forwarding rule in the site's LED; every occurrence of
        the event at the site is re-raised in the GED's LED (with the
        site stamped into the parameters).
        """
        agent = self.sites.get(site)
        if agent is None:
            raise ConfigurationError(f"unknown site '{site}'")
        name = self.global_name(site, event_internal)
        if self.led.has_event(name):
            return name
        self.led.define_primitive(name)
        self._imports[name] = site

        def forward(occurrence: Occurrence, _site=site, _name=name) -> None:
            params: dict[str, object] = {"site": _site}
            # Preserve the site-local parameters so global rules can reach
            # back to snapshot tables and occurrence numbers.
            flattened = occurrence.flatten()
            params["constituents"] = [item.params for item in flattened]
            if len(flattened) == 1:
                params.update(flattened[0].params)
            self.led.raise_event(_name, params)

        agent.led.add_rule(
            f"__ged_forward_{name}",
            event_internal,
            action=forward,
            context=Context.RECENT,
            coupling=Coupling.IMMEDIATE,
        )
        return name

    # ------------------------------------------------------------------
    # global events and rules

    def define_global_event(self, name: str, expression: str) -> None:
        """Define a global composite event over imported event names."""
        self.led.define_composite(name, expression)

    def add_global_rule(self, rule_name: str, event_name: str,
                        action: Callable[[Occurrence], object] | None = None,
                        context: Context | str = Context.RECENT,
                        sql_site: str | None = None,
                        sql: str | None = None) -> None:
        """Attach a rule to a global event.

        The action is either a Python callable or, with ``sql_site`` and
        ``sql``, a SQL script executed at the named site through its
        agent (the distributed analogue of the Action Handler).
        """
        if (sql is None) == (action is None):
            if sql is None:
                raise ConfigurationError(
                    "provide either an action callable or sql_site+sql")

        def run(occurrence: Occurrence) -> None:
            self.firings.append(
                GlobalRuleFiring(rule_name, event_name, occurrence))
            if action is not None:
                action(occurrence)
            if sql is not None:
                agent = self.sites.get(sql_site or "")
                if agent is None:
                    raise ConfigurationError(
                        f"unknown action site '{sql_site}'")
                database = agent.server.default_database
                agent.persistent_manager.execute(database, sql)

        self.led.add_rule(rule_name, event_name, action=run, context=context)
