"""Consistent-hash partitioning of global event classes across sites.

The sharded Global Event Detector assigns every global event class — a
site-qualified name in Snoop's ``Eventname::AppId`` form — to exactly
one owner site via a consistent-hash ring.  The ring uses a
content-derived digest (:func:`stable_hash`), **not** Python's builtin
``hash``, so ownership is identical across interpreter runs and
processes (``PYTHONHASHSEED`` randomizes ``hash(str)``; a partition map
that changed per run would make recovery replay nondeterministic).

Virtual nodes smooth the distribution: each site is hashed onto the ring
``replicas`` times, which bounds skew and — the classic consistent-
hashing property — means a site join or leave moves only the keys that
fall between the new/removed virtual nodes and their successors, on the
order of K/N of the keyspace rather than nearly all of it
(tests/ged/test_partitioning.py asserts the bound).

Explicit *pins* override the ring: :class:`HashRing.pin` maps one key to
a chosen owner.  The sharded GED uses pins for skew-aware rebalancing
(move the heaviest classes off an overloaded site) and tests use them to
place a composite on a specific site.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ConfigurationError

#: Virtual nodes per site.  64 keeps the max/mean partition-size skew
#: small (empirically < 1.5x for a few dozen keys over 2-8 sites) while
#: the ring stays tiny (hundreds of points).
DEFAULT_REPLICAS = 64


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash of ``text`` (blake2b digest prefix).

    Deterministic across runs, machines, and ``PYTHONHASHSEED`` — the
    property the partition map, recovery replay, and the difftest
    corpus all rely on.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring mapping keys to site names.

    Sites are hashed onto the ring ``replicas`` times; a key is owned by
    the first virtual node clockwise from the key's hash.  The mapping
    is total (every key has an owner while at least one site exists),
    deterministic (content hashing only), and stable under membership
    change (a join or leave moves ~K/N keys).
    """

    def __init__(self, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ConfigurationError("replicas must be at least 1")
        self.replicas = replicas
        self._sites: set[str] = set()
        #: sorted virtual-node hash points and their parallel owner list
        self._points: list[int] = []
        self._owners: list[str] = []
        #: explicit key -> owner overrides (skew rebalancing, test pinning)
        self._pins: dict[str, str] = {}

    # -- membership -----------------------------------------------------

    def add_site(self, site: str) -> None:
        """Hash a site onto the ring (``replicas`` virtual nodes)."""
        if site in self._sites:
            raise ConfigurationError(f"site '{site}' is already on the ring")
        self._sites.add(site)
        for replica in range(self.replicas):
            point = stable_hash(f"{site}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, site)

    def remove_site(self, site: str) -> None:
        """Remove a site's virtual nodes (its keys move to successors)."""
        if site not in self._sites:
            raise ConfigurationError(f"site '{site}' is not on the ring")
        self._sites.discard(site)
        keep = [(point, owner) for point, owner in
                zip(self._points, self._owners) if owner != site]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]
        self._pins = {key: owner for key, owner in self._pins.items()
                      if owner != site}

    def sites(self) -> list[str]:
        """Current member sites, sorted."""
        return sorted(self._sites)

    # -- pinning --------------------------------------------------------

    def pin(self, key: str, site: str) -> None:
        """Override the ring: ``key`` is owned by ``site`` until unpinned."""
        if site not in self._sites:
            raise ConfigurationError(f"cannot pin to unknown site '{site}'")
        self._pins[key] = site

    def unpin(self, key: str) -> None:
        """Drop a pin (the key returns to its ring position)."""
        self._pins.pop(key, None)

    def pins(self) -> dict[str, str]:
        """A copy of the active pin map."""
        return dict(self._pins)

    # -- lookup ---------------------------------------------------------

    def owner(self, key: str) -> str:
        """The owner site of ``key`` (pin first, ring otherwise)."""
        pinned = self._pins.get(key)
        if pinned is not None:
            return pinned
        if not self._points:
            raise ConfigurationError("the ring has no sites")
        index = bisect.bisect(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignment(self, keys) -> dict[str, str]:
        """Owner of every key in ``keys`` (a snapshot partition map)."""
        return {key: self.owner(key) for key in keys}

    def partition_counts(self, keys) -> dict[str, int]:
        """Keys owned per site, including zero-count members."""
        counts = {site: 0 for site in self._sites}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
