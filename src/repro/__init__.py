"""Reproduction of *"An Agent-Based Approach to Extending the Native
Active Capability of Relational Database Systems"* (Chakravarthy & Li,
ICDE 1999 / AFRL-IF-RS-TR-1999-20).

The package turns a passive relational engine into a full active database
system by interposing a mediator -- the **ECA Agent** -- between clients
and the server, exactly as the paper describes:

- :mod:`repro.sqlengine` -- the passive SQL server substrate (stands in
  for Sybase SQL Server 11);
- :mod:`repro.snoop` -- the Snoop composite-event specification language;
- :mod:`repro.led` -- the Local Event Detector (Sentinel's LED);
- :mod:`repro.agent` -- the ECA Agent mediator itself;
- :mod:`repro.core` -- the public facade (:class:`~repro.core.ActiveDatabase`);
- :mod:`repro.baselines` -- the alternative approaches the paper compares
  against qualitatively (polling, embedded situation checks);
- :mod:`repro.workloads` -- workload generators for the benchmarks;
- :mod:`repro.ged` -- the Global Event Detector extension (Section 6
  future work);
- :mod:`repro.obs` -- the observability layer (metrics registry and
  span-based pipeline tracing);
- :mod:`repro.faults` -- the robustness layer (deterministic fault
  injection and retry policies, with chaos-tested recovery).
"""

from repro.core import ActiveDatabase, Context, Coupling
from repro.errors import ConfigurationError, NotSupportedError, ReproError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SimulatedCrash,
    TransientFaultError,
)
from repro.obs import get_metrics, get_trace

__version__ = "1.1.0"

__all__ = [
    "ActiveDatabase",
    "ConfigurationError",
    "Context",
    "Coupling",
    "FaultInjector",
    "FaultPlan",
    "NotSupportedError",
    "ReproError",
    "RetryPolicy",
    "SimulatedCrash",
    "TransientFaultError",
    "__version__",
    "get_metrics",
    "get_trace",
]
