"""The paper's stock-trading workload (Examples 1 and 2).

Generates a ``stock`` table and a deterministic stream of trading
operations (inserts, price updates, deletes) driven by a seeded RNG, so
benches and tests are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_SYMBOLS = [
    "IBM", "MSFT", "ORCL", "SUNW", "DELL", "INTC", "CSCO", "AAPL",
    "HPQ", "TXN", "MOT", "NOK", "AMD", "EMC", "GTW", "CPQ",
]


@dataclass
class StockWorkload:
    """Deterministic stream of stock-table operations.

    Args:
        seed: RNG seed (defaults keep every run identical).
        symbols: universe of stock symbols.

    Each generated operation is a SQL string against the ``stock`` table;
    the mix is roughly 50% insert / 30% update / 20% delete once the
    table is warm.
    """

    seed: int = 19990201
    symbols: list[str] = field(default_factory=lambda: list(_SYMBOLS))

    TABLE_DDL = (
        "create table stock ("
        "symbol varchar(10) not null, "
        "price float null, "
        "qty int null)"
    )

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._held: list[str] = []
        self._serial = 0

    def setup_sql(self) -> str:
        """DDL creating the workload's table."""
        return self.TABLE_DDL

    def insert_sql(self) -> str:
        """One insert of a fresh position."""
        self._serial += 1
        symbol = f"{self._rng.choice(self.symbols)}{self._serial}"
        self._held.append(symbol)
        price = round(self._rng.uniform(5.0, 250.0), 2)
        qty = self._rng.randint(1, 1000)
        return f"insert stock values ('{symbol}', {price}, {qty})"

    def update_sql(self) -> str | None:
        """One price update of a held position (None when empty)."""
        if not self._held:
            return None
        symbol = self._rng.choice(self._held)
        delta = round(self._rng.uniform(-5.0, 5.0), 2)
        return f"update stock set price = price + {delta} where symbol = '{symbol}'"

    def delete_sql(self) -> str | None:
        """One liquidation of a held position (None when empty)."""
        if not self._held:
            return None
        symbol = self._held.pop(self._rng.randrange(len(self._held)))
        return f"delete stock where symbol = '{symbol}'"

    def operations(self, count: int) -> list[str]:
        """A mixed operation stream of the requested length."""
        ops: list[str] = []
        while len(ops) < count:
            roll = self._rng.random()
            if roll < 0.5 or not self._held:
                ops.append(self.insert_sql())
                continue
            if roll < 0.8:
                update = self.update_sql()
                if update is not None:
                    ops.append(update)
                continue
            delete = self.delete_sql()
            if delete is not None:
                ops.append(delete)
        return ops
