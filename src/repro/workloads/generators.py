"""Random ECA workload generators for the scaling benches (E-PERF3).

Everything is seeded, so the "random" workloads are reproducible across
runs and machines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_BINARY_OPS = ["OR", "AND", "SEQ"]

#: The four Snoop parameter contexts, in canonical order; context-coverage
#: generation cycles through these so every seeded scenario exercises all
#: of them.
PARAMETER_CONTEXTS = ("RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE")


def random_snoop_expression(rng: random.Random, leaves: list[str],
                            depth: int) -> str:
    """A random Snoop expression of the given operator depth.

    Depth 0 yields a bare event name; each additional level wraps one of
    the binary operators (plus the occasional ternary) around subtrees.
    """
    if depth <= 0:
        return rng.choice(leaves)
    roll = rng.random()
    if roll < 0.85 or len(leaves) < 3:
        op = rng.choice(_BINARY_OPS)
        left = random_snoop_expression(rng, leaves, depth - 1)
        right = random_snoop_expression(rng, leaves, depth - 1)
        return f"({left} {op} {right})"
    names = rng.sample(leaves, 3)
    operator = rng.choice(["A", "A*", "NOT"])
    return f"{operator}({names[0]}, {names[1]}, {names[2]})"


@dataclass
class RandomEventStream:
    """A deterministic stream of primitive-event raises for the raw LED."""

    event_names: list[str]
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def take(self, count: int) -> list[str]:
        """The next ``count`` event names to raise."""
        return [self._rng.choice(self.event_names) for _ in range(count)]


@dataclass
class EcaWorkload:
    """A parameterized ECA rule set for LED scaling benches.

    Args:
        n_primitives: how many primitive events to define.
        n_composites: how many composite events to define on top.
        expression_depth: operator depth of each composite expression.
        rules_per_event: rules attached to each composite event.
        seed: RNG seed.
    """

    n_primitives: int = 10
    n_composites: int = 10
    expression_depth: int = 2
    rules_per_event: int = 1
    seed: int = 11

    primitives: list[str] = field(default_factory=list)
    composites: list[tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        self.primitives = [f"ev_p{i}" for i in range(self.n_primitives)]
        self.composites = []
        for index in range(self.n_composites):
            expression = random_snoop_expression(
                rng, self.primitives, self.expression_depth)
            self.composites.append((f"ev_c{index}", expression))

    def install(self, led, action=None, context="RECENT") -> int:
        """Define everything in a LED; returns the number of rules added."""
        if action is None:
            def action(_occurrence):
                return None
        for name in self.primitives:
            led.define_primitive(name)
        rules = 0
        for name, expression in self.composites:
            led.define_composite(name, expression)
            for rule_index in range(self.rules_per_event):
                led.add_rule(
                    f"rule_{name}_{rule_index}", name, action=action,
                    context=context,
                )
                rules += 1
        return rules

    def event_stream(self, count: int, seed: int = 23) -> list[str]:
        """A stream of primitive raises exercising the installed graph."""
        return RandomEventStream(self.primitives, seed).take(count)


@dataclass(frozen=True)
class DmlStatement:
    """One generated DML statement against a monitored table."""

    table: str
    operation: str      # insert | update | delete
    sql: str


def random_dml_stream(rng: random.Random, tables: list[str],
                      count: int) -> list[DmlStatement]:
    """A seeded DML stream over ``(k int, v int)`` tables.

    Roughly 50% inserts / 30% updates / 20% deletes; updates and deletes
    mostly target live keys but occasionally a missing one, so zero-row
    statements (whose statement-level triggers still fire) are covered.
    """
    next_key = {table: 0 for table in tables}
    live: dict[str, list[int]] = {table: [] for table in tables}
    statements: list[DmlStatement] = []
    for _ in range(count):
        table = rng.choice(tables)
        roll = rng.random()
        keys = live[table]
        if roll < 0.5 or not keys:
            key = next_key[table]
            next_key[table] += 1
            keys.append(key)
            sql = f"insert {table} values ({key}, {rng.randrange(100)})"
            operation = "insert"
        elif roll < 0.8:
            key = (rng.choice(keys) if rng.random() < 0.8
                   else next_key[table] + 50)
            sql = (f"update {table} set v = {rng.randrange(100)} "
                   f"where k = {key}")
            operation = "update"
        else:
            key = (rng.choice(keys) if rng.random() < 0.8
                   else next_key[table] + 50)
            if key in keys:
                keys.remove(key)
            sql = f"delete {table} where k = {key}"
            operation = "delete"
        statements.append(DmlStatement(table, operation, sql))
    return statements


@dataclass(frozen=True)
class CompositeRuleSpec:
    """One generated composite event + its defining rule parameters."""

    event: str
    expression: str
    context: str
    coupling: str
    priority: int


def random_rule_set(rng: random.Random, primitives: list[str],
                    n_composites: int,
                    couplings: tuple[str, ...] = ("IMMEDIATE", "DEFERRED"),
                    ) -> list[CompositeRuleSpec]:
    """A seeded set of composite-event rules with full context coverage.

    Contexts cycle through :data:`PARAMETER_CONTEXTS`, so any set of four
    or more composites exercises every Snoop parameter context.  Later
    composites may reference earlier ones as leaves (event reuse — shared
    subgraphs in the LED).
    """
    specs: list[CompositeRuleSpec] = []
    leaves = list(primitives)
    for index in range(n_composites):
        expression = random_snoop_expression(
            rng, leaves, rng.choice([1, 2, 2, 3]))
        if "(" not in expression:
            # A bare name does not define a new event; promote it.
            expression = f"({expression} OR {expression})"
        name = f"c{index}"
        specs.append(CompositeRuleSpec(
            event=name,
            expression=expression,
            context=PARAMETER_CONTEXTS[index % len(PARAMETER_CONTEXTS)],
            coupling=rng.choice(couplings),
            priority=rng.choice([1, 1, 1, 2, 3]),
        ))
        leaves.append(name)
    return specs
