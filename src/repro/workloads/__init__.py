"""``repro.workloads`` — deterministic workload generators for benches.

The paper's running example is a stock-trading database (``stock`` table,
``addStk``/``delStk`` events); :mod:`repro.workloads.stock` generates that
workload.  :mod:`repro.workloads.generators` builds parameterized random
ECA rule sets (events, Snoop expressions, rules) for the scaling benches.
"""

from .generators import EcaWorkload, RandomEventStream, random_snoop_expression
from .stock import StockWorkload

__all__ = [
    "EcaWorkload",
    "RandomEventStream",
    "StockWorkload",
    "random_snoop_expression",
]
