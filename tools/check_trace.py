#!/usr/bin/env python
"""CI gate: trace-context propagation must stay connected and cheap.

Two checks, both required:

1. **Connectivity** — drives a pooled multi-session workload in
   process (4 gateway workers, tracing on): per-session deletes and
   inserts fire the Example 1/2 rules plus two DETACHED triggers, so
   every client command crosses the session queue, the worker pool,
   the ``syb_sendmsg`` datagram hop, and the detached action threads.
   Every trace retained in the store must then form a *single
   connected span tree*: exactly one root span (no parent) and every
   other span's parent resolving inside the same trace — an orphan
   span means some hand-off dropped the
   :class:`~repro.obs.tracing.TraceContext`.  At least one trace must
   also contain a queue-wait span and two concurrent action spans, so
   the gate is known to have exercised the paths it guards.

2. **Overhead** — reads the ``BENCH_overhead.json`` artifact produced
   by ``benchmarks/bench_overhead.py`` and requires the tracing-only
   series (series 7: what a sampled command pays under ``trace next``)
   to stay within ``OBS_OVERHEAD_RATIO`` (default 2.0x) of the
   untraced composite baseline (series 4) — the same ceiling
   ``tools/check_overhead.py`` applies to the other planes.

Usage::

    python tools/check_trace.py                    # ./BENCH_overhead.json
    python tools/check_trace.py path/to/BENCH_overhead.json
    OBS_OVERHEAD_RATIO=1.5 python tools/check_trace.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _helpers import (  # noqa: E402
    EXAMPLE_1,
    EXAMPLE_2_AND,
    EXAMPLE_2_DEL,
    STOCK_DDL,
)
from repro.agent import EcaAgent  # noqa: E402
from repro.led import ManualClock  # noqa: E402
from repro.obs.tracing import (  # noqa: E402
    FIG4_ACTION_RUN,
    SPAN_QUEUE_WAIT,
)
from repro.sqlengine import SqlServer  # noqa: E402

#: Series labels written by benchmarks/bench_overhead.py.
BASELINE_SERIES = "4 + composite detection (Example 2)"
TRACED_SERIES = "7 + trace context (sampled commands)"

#: Default ceiling for traced/baseline mean latency.
DEFAULT_RATIO = 2.0

WORKERS = 4
SESSIONS = 6
ROUNDS = 3

USER = "sharma"
DATABASE = "sentineldb"

DETACHED_TRIGGERS = (
    "create trigger t_det_a event addStk DETACHED as print 'det a'",
    "create trigger t_det_b event addStk DETACHED as print 'det b'",
)


def _tree_problems(trace_id: str, spans) -> list[str]:
    """Single-connected-tree violations for one trace's pinned spans."""
    if not spans:
        return [f"trace {trace_id}: retained but has no spans"]
    problems = []
    seqs = {span.seq for span in spans}
    roots = [span for span in spans if span.parent is None]
    if len(roots) != 1:
        problems.append(
            f"trace {trace_id}: {len(roots)} root spans "
            f"({[span.step for span in roots]}); a command must yield "
            "exactly one")
    for span in spans:
        if span.parent is not None and span.parent not in seqs:
            problems.append(
                f"trace {trace_id}: span #{span.seq} {span.step!r} is "
                f"orphaned (parent #{span.parent} is not in this trace)")
    return problems


def check_connectivity() -> list[str]:
    """Run the pooled workload; returns the list of problems."""
    server = SqlServer(default_database=DATABASE)
    agent = EcaAgent(server, clock=ManualClock(), channel="sync",
                     workers=WORKERS)
    agent.trace.enabled = True
    try:
        conn = agent.connect(user=USER, database=DATABASE)
        for ddl in (STOCK_DDL, EXAMPLE_1, EXAMPLE_2_DEL, EXAMPLE_2_AND,
                    *DETACHED_TRIGGERS):
            conn.execute(ddl)

        gateway = agent.gateway
        sessions = [gateway.open_session(USER, DATABASE)
                    for _ in range(SESSIONS)]
        futures = []
        for round_no in range(ROUNDS):
            for index, session in enumerate(sessions):
                # delete then insert per session: the insert raises
                # addStk (IMMEDIATE rule + both DETACHED rules) and
                # completes the addDel composite opened by the delete.
                futures.append(gateway.submit_for(session, "delete stock"))
                futures.append(gateway.submit_for(
                    session,
                    f"insert stock values ('S{index}', {round_no}.0, 1)"))
                futures.append(gateway.submit_for(
                    session, "select symbol, price from stock"))
        for future in futures:
            future.result()
        agent.action_handler.join_detached()
        agent.drain()
        for session in sessions:
            session.closed = True

        trace = agent.trace
        trace_ids = trace.trace_ids()
        problems = []
        if not trace_ids:
            return ["trace store is empty after a traced workload; "
                    "command contexts are not being minted"]
        total_spans = 0
        richest = False
        for trace_id in trace_ids:
            spans = trace.spans_for(trace_id)
            total_spans += len(spans)
            problems.extend(_tree_problems(trace_id, spans))
            steps = [span.step for span in spans]
            if (SPAN_QUEUE_WAIT in steps
                    and steps.count(FIG4_ACTION_RUN) >= 2):
                richest = True
        print(f"connectivity: {len(trace_ids)} traces / {total_spans} "
              f"spans across {SESSIONS} sessions at {WORKERS} workers")
        if not richest:
            problems.append(
                "no trace contains both a queue-wait span and two action "
                "spans; the workload did not exercise the pooled active "
                "path end to end")
        return problems
    finally:
        agent.close()


def check_overhead(path: Path, max_ratio: float) -> list[str]:
    """Gate the tracing-only bench series; returns the problems."""
    if not path.exists():
        return [f"{path}: artifact not found (run benchmarks/"
                "bench_overhead.py first)"]
    payload = json.loads(path.read_text())
    series = payload.get("series", {})
    for label in (BASELINE_SERIES, TRACED_SERIES):
        if label not in series:
            return [f"{path}: series {label!r} missing"]
    baseline = series[BASELINE_SERIES]["mean"]
    if baseline <= 0:
        return [f"{path}: baseline mean is {baseline}; artifact corrupt"]
    traced = series[TRACED_SERIES]["mean"]
    ratio = traced / baseline
    print(f"tracing overhead: {traced:.4f}ms / {baseline:.4f}ms "
          f"= {ratio:.2f}x (limit {max_ratio:.2f}x)")
    if ratio > max_ratio:
        return [f"{path}: traced mean latency is {ratio:.2f}x the "
                f"baseline, over the {max_ratio:.2f}x limit"]
    return []


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit status."""
    path = Path(argv[0]) if argv else REPO_ROOT / "BENCH_overhead.json"
    max_ratio = float(os.environ.get("OBS_OVERHEAD_RATIO", DEFAULT_RATIO))
    problems = check_connectivity() + check_overhead(path, max_ratio)
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    print("trace gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
