#!/usr/bin/env python
"""CI gate: the worker pool must keep delivering real concurrency.

Reads the ``BENCH_load.json`` artifact produced by
``benchmarks/bench_load.py`` and enforces three floors:

- **Scaling**: the service-latency profile's throughput with the full
  worker pool must be at least ``LOAD_SCALING_FLOOR`` times (default
  2.0x) the single-worker throughput — catching any change that
  re-serializes independent sessions (a coarse lock on the engine, a
  worker handing commands back to one thread, a sleeping statement
  holding the gate exclusively).
- **Throughput**: the closed-loop stock workload must sustain at least
  ``LOAD_THROUGHPUT_FLOOR`` ops/s (default 200 — deliberately low; the
  gate exists to catch collapse, not to benchmark runners).
- **Scale**: the run must have simulated at least ``LOAD_MIN_CLIENTS``
  clients (default 1000), so nobody quietly shrinks the harness until
  it stops testing anything.

The artifact must also show both lock paths exercised (shared and
exclusive batches nonzero) — a load run that never took the
fine-grained path proves nothing about it — and a nonzero
``agent_queue_wait_seconds`` sample count on the pooled closed-loop run,
so the queue-wait histogram (and the watchdog p95 ceiling over it) is
known to be measuring real enqueue/dequeue intervals.

Usage::

    python tools/check_load.py                 # ./BENCH_load.json
    python tools/check_load.py path/to/BENCH_load.json
    LOAD_SCALING_FLOOR=1.5 python tools/check_load.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_SCALING_FLOOR = 2.0
DEFAULT_THROUGHPUT_FLOOR = 200.0
DEFAULT_MIN_CLIENTS = 1000


def check(path: Path, scaling_floor: float, throughput_floor: float,
          min_clients: int) -> list[str]:
    """Validate one load artifact; returns the list of problems."""
    if not path.exists():
        return [f"{path}: artifact not found (run benchmarks/"
                "bench_load.py first)"]
    payload = json.loads(path.read_text())
    load = payload.get("load")
    if not load:
        return [f"{path}: no 'load' section; artifact corrupt"]
    problems: list[str] = []

    clients = load.get("clients", 0)
    print(f"clients: {clients} (floor {min_clients})")
    if clients < min_clients:
        problems.append(
            f"{path}: only {clients} simulated clients, under the "
            f"{min_clients}-client floor")

    scaling = load.get("scaling", {})
    ratio = scaling.get("ratio", 0.0)
    single = scaling.get("single", {}).get("throughput", 0.0)
    pooled = scaling.get("pooled", {}).get("throughput", 0.0)
    workers = scaling.get("pooled", {}).get("workers", "?")
    print(f"worker scaling: {single} ops/s @1 -> {pooled} ops/s "
          f"@{workers} = {ratio:.2f}x (floor {scaling_floor:.2f}x)")
    if ratio < scaling_floor:
        problems.append(
            f"{path}: worker-pool scaling is {ratio:.2f}x, under the "
            f"{scaling_floor:.2f}x floor (LOAD_SCALING_FLOOR)")

    closed = load.get("closed_stock", {})
    throughput = closed.get("throughput", 0.0)
    print(f"closed-loop stock throughput: {throughput} ops/s "
          f"(floor {throughput_floor})")
    if throughput < throughput_floor:
        problems.append(
            f"{path}: closed-loop throughput {throughput} ops/s under "
            f"the {throughput_floor} floor (LOAD_THROUGHPUT_FLOOR)")

    lock_stats = closed.get("lock_stats", {})
    shared = lock_stats.get("shared_batches", 0)
    exclusive = lock_stats.get("exclusive_batches", 0)
    print(f"lock paths: {shared} shared / {exclusive} exclusive batches")
    if not shared or not exclusive:
        problems.append(
            f"{path}: load run exercised shared={shared} "
            f"exclusive={exclusive} batches; both paths must be nonzero")

    # Queue-wait must actually have been measured on the pooled run —
    # a zero sample count means the instrumentation fell off the
    # enqueue/dequeue path and the p95 health ceiling watches nothing.
    wait = closed.get("queue_wait", {})
    wait_count = wait.get("count", 0)
    workers = closed.get("workers", 0)
    print(f"queue-wait: {wait_count} samples at {workers} workers, "
          f"p50={wait.get('p50_ms', 0.0)}ms p95={wait.get('p95_ms', 0.0)}ms")
    if workers >= 2 and not wait_count:
        problems.append(
            f"{path}: closed-loop run at {workers} workers recorded no "
            "queue-wait samples; agent_queue_wait_seconds is not being "
            "observed on the pooled path")
    return problems


def main(argv: list[str]) -> int:
    path = Path(argv[0]) if argv else REPO_ROOT / "BENCH_load.json"
    problems = check(
        path,
        float(os.environ.get("LOAD_SCALING_FLOOR",
                             str(DEFAULT_SCALING_FLOOR))),
        float(os.environ.get("LOAD_THROUGHPUT_FLOOR",
                             str(DEFAULT_THROUGHPUT_FLOOR))),
        int(os.environ.get("LOAD_MIN_CLIENTS",
                           str(DEFAULT_MIN_CLIENTS))),
    )
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    print("load gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
