#!/usr/bin/env python
"""CI gate: sharding the GED must actually buy aggregate throughput.

Reads the ``BENCH_sites.json`` artifact produced by
``benchmarks/bench_sites.py`` and enforces:

- **Scaling**: the 3-site aggregate primitive throughput (shared-
  nothing makespan model — see the bench docstring) must be at least
  ``SITES_SCALING_FLOOR`` times (default 2.0x) the 1-site throughput.
  This catches any change that couples the shards back together — a
  shared lock in the router hot path, cross-shard subscriptions leaking
  into shard-local graphs, per-raise work that scales with total site
  count instead of the owning shard.
- **Monotonicity**: adding a site must never *reduce* aggregate
  throughput (each N-site point >= 0.9x the (N-1)-site point, the slack
  absorbing runner noise).
- **Cross-site latency**: p95 of completing a cross-site SEQ
  (forwarding rule -> transport -> sequencing + journal -> shard
  detection -> global rule) must stay under
  ``SITES_LATENCY_CEILING_MS`` (default 5.0 ms) — the whole hop is
  in-process function calls; milliseconds here means something
  quadratic crept into the router.
- **Scale**: the scaling runs must cover at least 3 sites and the
  latency series at least 100 completions, so the gate cannot be
  satisfied by shrinking the measurement.

Usage::

    python tools/check_sites.py                # ./BENCH_sites.json
    python tools/check_sites.py path/to/BENCH_sites.json
    SITES_SCALING_FLOOR=1.5 python tools/check_sites.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_SCALING_FLOOR = 2.0
DEFAULT_LATENCY_CEILING_MS = 5.0
MIN_SITES = 3
MIN_PAIRS = 100


def check(path: Path, scaling_floor: float,
          latency_ceiling_ms: float) -> list[str]:
    """Validate one sites artifact; returns the list of problems."""
    if not path.exists():
        return [f"{path}: artifact not found (run benchmarks/"
                "bench_sites.py first)"]
    payload = json.loads(path.read_text())
    sites = payload.get("sites")
    if not sites:
        return [f"{path}: no 'sites' section; artifact corrupt"]
    problems: list[str] = []

    scaling = sites.get("scaling", {})
    points = sorted((int(n), point) for n, point in scaling.items())
    top_n = points[-1][0] if points else 0
    print(f"scaling points: {[n for n, _ in points]} "
          f"(need up to >= {MIN_SITES} sites)")
    if top_n < MIN_SITES:
        problems.append(
            f"{path}: largest deployment measured is {top_n} site(s), "
            f"need at least {MIN_SITES}")

    for n, point in points:
        print(f"  {n} site(s): {point.get('throughput', 0.0)} ops/s "
              f"= {point.get('ratio_vs_1', 0.0)}x vs 1 site")
    if points:
        ratio = points[-1][1].get("ratio_vs_1", 0.0)
        if ratio < scaling_floor:
            problems.append(
                f"{path}: {top_n}-site aggregate throughput is only "
                f"{ratio:.2f}x the 1-site deployment, under the "
                f"{scaling_floor:.2f}x floor (SITES_SCALING_FLOOR)")
        for (n_lo, lo), (n_hi, hi) in zip(points, points[1:]):
            lo_t = lo.get("throughput", 0.0)
            hi_t = hi.get("throughput", 0.0)
            if lo_t and hi_t < 0.9 * lo_t:
                problems.append(
                    f"{path}: throughput fell from {lo_t} ops/s at "
                    f"{n_lo} site(s) to {hi_t} ops/s at {n_hi} — "
                    "adding a site must not cost aggregate throughput")

    latency = payload.get("series", {}).get("cross_site_seq_ms", {})
    count = latency.get("count", 0)
    p95 = latency.get("p95", float("inf"))
    print(f"cross-site SEQ completion: {count} samples, "
          f"p50={latency.get('p50', 0.0):.3f}ms p95={p95:.3f}ms "
          f"(ceiling {latency_ceiling_ms}ms)")
    if count < MIN_PAIRS:
        problems.append(
            f"{path}: only {count} cross-site completions sampled, "
            f"under the {MIN_PAIRS} floor")
    if p95 > latency_ceiling_ms:
        problems.append(
            f"{path}: cross-site SEQ p95 is {p95:.3f}ms, over the "
            f"{latency_ceiling_ms}ms ceiling (SITES_LATENCY_CEILING_MS)")
    return problems


def main(argv: list[str]) -> int:
    path = Path(argv[0]) if argv else REPO_ROOT / "BENCH_sites.json"
    problems = check(
        path,
        float(os.environ.get("SITES_SCALING_FLOOR",
                             str(DEFAULT_SCALING_FLOOR))),
        float(os.environ.get("SITES_LATENCY_CEILING_MS",
                             str(DEFAULT_LATENCY_CEILING_MS))),
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("sites gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
