#!/usr/bin/env python
"""CI gate: the differential harness must find zero real divergences —
and must provably still be able to find one.

Three sub-commands over :mod:`repro.difftest` (all run by the CI
``difftest`` job; see docs/TESTING.md):

``sweep`` (default)
    Generate ``--seeds`` scenarios, execute each on the full stack with
    the plan cache on and off and the DAG-executor planner on and off
    (against the legacy AST walker), the reference Snoop interpreter,
    and the baseline oracles, and cross-check every surface.  Also replays the
    committed regression corpus and runs a seeded chaos sweep.  On any
    divergence the failing seed is echoed, the scenario is shrunk, and
    the minimised reproduction is written to ``--artifacts`` for upload.

``mutate``
    Harness self-check: arm a named intentional LED semantics bug
    (``repro.difftest.mutations``), prove the sweep catches it within
    the seed budget, and shrink the catch to a small reproduction
    (``--max-statements`` cap, default 10).  Exits nonzero if the bug
    is NOT caught — a harness that cannot see a planted bug gates
    nothing.  ``--write-corpus`` persists the shrunk reproduction into
    the committed corpus (it replays clean on the unmutated stack).

``corpus``
    Replay only the committed regression corpus.

``sites``
    Multi-site sweep over the sharded GED: each seeded 2–4 site
    scenario runs on the consistent-hash sharded deployment AND the
    degenerate single-coordinator one, both against the multi-site
    reference twin, plus shape-vs-shape (sharding must be semantically
    invisible).  Replays the multi-site corpus
    (``tests/difftest/corpus/multisite/``) and proves
    planted-mutation liveness through the sharded path; divergences
    ddmin-shrink into the corpus format.

``interleave``
    Concurrency cross-check: replay each scenario serially and through
    ``--clients`` concurrent gateway sessions over a ``--workers``
    thread pool (serial global schedule, multi-session execution path),
    and require the two stack observations to be identical on every
    semantic surface.  Exits nonzero on any divergence.

Usage::

    python tools/check_difftest.py --seeds 25
    python tools/check_difftest.py mutate seq-chronicle-newest
    python tools/check_difftest.py corpus
    python tools/check_difftest.py interleave --seeds 10 --clients 8
    DIFFTEST_SEEDS=50 python tools/check_difftest.py
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.difftest import (  # noqa: E402  (path bootstrap above)
    MUTATIONS,
    apply_mutation,
    compare_multisite_runs,
    compare_multisite_stack_runs,
    compare_runs,
    compare_stack_runs,
    generate_multisite_scenario,
    generate_scenario,
    load_corpus,
    load_multisite_corpus,
    render_report,
    run_baselines,
    run_chaos,
    run_interleaved,
    run_multisite_reference,
    run_multisite_stack,
    run_reference,
    run_stack,
    shrink_multisite_scenario,
    shrink_scenario,
    write_corpus,
)

DEFAULT_SEEDS = int(os.environ.get("DIFFTEST_SEEDS", "25"))
DEFAULT_CHAOS_SEEDS = int(os.environ.get("DIFFTEST_CHAOS_SEEDS", "10"))
CORPUS_DIR = REPO_ROOT / "tests" / "difftest" / "corpus"
ARTIFACTS_DIR = REPO_ROOT / "difftest-artifacts"


def _check_scenario(scenario) -> list:
    """Full cross-check of one scenario; returns divergences.

    The stack leg sweeps both runner axes: plan cache on/off and the
    DAG-executor planner on/off (the legacy AST walker is the
    semantics reference the planner must be indistinguishable from).
    """
    on = run_stack(scenario, plan_cache=True)
    off = run_stack(scenario, plan_cache=False)
    legacy = run_stack(scenario, plan_cache=True, planner=False)
    reference = run_reference(scenario)
    baseline = run_baselines(scenario)
    divergences = compare_runs(scenario, on, reference, baseline)
    divergences += compare_stack_runs(on, off)
    divergences += compare_stack_runs(
        on, legacy, label_a="planner-on", label_b="planner-off")
    return divergences


def _oracle_diverges(scenario) -> bool:
    """Shrink predicate: does the stack still diverge from the oracle?

    A crash during re-execution counts as a divergence too — shrinking
    toward a crash is exactly as useful as shrinking toward a mismatch.
    """
    try:
        stack = run_stack(scenario, plan_cache=True)
        reference = run_reference(scenario)
    except Exception:
        return True
    return bool(compare_runs(scenario, stack, reference))


def _report_and_shrink(scenario, divergences, artifacts: Path) -> None:
    """Echo a divergence, shrink it, and persist the reproduction."""
    print(render_report(scenario, divergences))
    print(f"shrinking seed {scenario.seed} "
          f"(re-run with: generate_scenario({scenario.seed}))...")
    small = shrink_scenario(scenario, _oracle_diverges)
    path = write_corpus(small, artifacts)
    print(f"minimised: {small.describe()}")
    print(f"reproduction written to {path}")


def cmd_sweep(args) -> int:
    problems = 0
    for seed in range(args.start, args.start + args.seeds):
        scenario = generate_scenario(seed)
        divergences = _check_scenario(scenario)
        if divergences:
            problems += 1
            print(f"FAIL seed={seed}")
            _report_and_shrink(scenario, divergences, args.artifacts)
        else:
            print(f"ok seed={seed} ({scenario.describe()})")
    problems += _replay_corpus(args)
    for offset in range(args.chaos):
        seed = args.start + offset
        chaos_seed = args.chaos_base + offset
        scenario = generate_scenario(seed)
        report = run_chaos(scenario, chaos_seed)
        if report.clean:
            print(f"ok chaos seed={seed} schedule={chaos_seed} "
                  f"{report.schedule.names} "
                  f"injected={report.faults_injected}")
        else:
            problems += 1
            print(f"FAIL chaos seed={seed} schedule={chaos_seed} "
                  f"{report.schedule.names}")
            print(render_report(scenario, report.divergences))
    if problems:
        print(f"difftest: {problems} failing sweep item(s)")
        return 1
    print(f"difftest: clean ({args.seeds} seeds, cache on+off, "
          f"planner on+off, {args.chaos} chaos schedules, "
          f"corpus replayed)")
    return 0


def _replay_corpus(args) -> int:
    problems = 0
    entries = load_corpus(args.corpus)
    for path, scenario in entries:
        divergences = _check_scenario(scenario)
        if divergences:
            problems += 1
            print(f"FAIL corpus {path.name}")
            print(render_report(scenario, divergences))
        else:
            print(f"ok corpus {path.name}")
    if not entries:
        print(f"corpus: no entries under {args.corpus}")
    return problems


def cmd_corpus(args) -> int:
    problems = _replay_corpus(args)
    if problems:
        return 1
    print("corpus replay: clean")
    return 0


def cmd_interleave(args) -> int:
    problems = 0
    for seed in range(args.start, args.start + args.seeds):
        scenario = generate_scenario(seed)
        serial = run_stack(scenario, plan_cache=True)
        pooled = run_interleaved(
            scenario, clients=args.clients, workers=args.workers,
            seed=seed)
        divergences = compare_stack_runs(
            serial, pooled, label_a="serial", label_b="interleaved")
        if divergences:
            problems += 1
            print(f"FAIL interleave seed={seed} clients={args.clients} "
                  f"workers={args.workers}")
            print(render_report(scenario, divergences))
        else:
            print(f"ok interleave seed={seed} ({scenario.describe()})")
    if problems:
        print(f"interleave: {problems} divergent seed(s)")
        return 1
    print(f"interleave: clean ({args.seeds} seeds, {args.clients} "
          f"clients over {args.workers} workers)")
    return 0


def _check_multisite(scenario) -> list:
    """Full cross-check of one multi-site scenario.

    Both deployment shapes run — the consistent-hash sharded GED and
    the degenerate single-coordinator layout — each against the
    multi-site reference twin, plus shape-vs-shape (the
    sharding-invisibility contract)."""
    sharded = run_multisite_stack(scenario, sharded=True)
    single = run_multisite_stack(scenario, sharded=False)
    reference = run_multisite_reference(scenario)
    divergences = compare_multisite_runs(sharded, reference, label="sharded")
    divergences += compare_multisite_runs(single, reference,
                                          label="single-site")
    divergences += compare_multisite_stack_runs(sharded, single)
    return divergences


def _multisite_diverges(scenario) -> bool:
    """Shrink predicate for multi-site scenarios (crash = divergence)."""
    try:
        stack = run_multisite_stack(scenario, sharded=True)
        reference = run_multisite_reference(scenario)
    except Exception:
        return True
    return bool(compare_multisite_runs(stack, reference))


def cmd_sites(args) -> int:
    problems = 0
    for seed in range(args.start, args.start + args.seeds):
        scenario = generate_multisite_scenario(seed)
        divergences = _check_multisite(scenario)
        if divergences:
            problems += 1
            print(f"FAIL sites seed={seed}")
            print(render_report(scenario, divergences))
            print(f"shrinking seed {seed} (re-run with: "
                  f"generate_multisite_scenario({seed}))...")
            small = shrink_multisite_scenario(scenario, _multisite_diverges)
            path = write_corpus(small, args.artifacts / "multisite")
            print(f"minimised: {small.describe()}")
            print(f"reproduction written to {path}")
        else:
            print(f"ok sites seed={seed} ({scenario.describe()})")
    entries = load_multisite_corpus(args.corpus / "multisite")
    for path, scenario in entries:
        divergences = _check_multisite(scenario)
        if divergences:
            problems += 1
            print(f"FAIL sites corpus {path.name}")
            print(render_report(scenario, divergences))
        else:
            print(f"ok sites corpus {path.name}")
    if not entries:
        print(f"sites corpus: no entries under {args.corpus / 'multisite'}")
    if not args.skip_mutation:
        problems += _sites_mutation_liveness(args)
    if problems:
        print(f"sites: {problems} failing item(s)")
        return 1
    print(f"sites: clean ({args.seeds} seeds, sharded + single-site, "
          f"corpus replayed, mutation liveness "
          f"{'skipped' if args.skip_mutation else 'proven'})")
    return 0


def _sites_mutation_liveness(args) -> int:
    """Prove the multi-site sweep still catches a planted LED bug.

    Shard LEDs run the same operator code the mutations corrupt, so a
    sweep that cannot see ``seq-chronicle-newest`` through the sharded
    deployment is gating nothing."""
    restore = apply_mutation(args.mutation)
    try:
        caught = None
        for seed in range(args.start, args.start + args.seeds):
            scenario = generate_multisite_scenario(seed)
            if _multisite_diverges(scenario):
                caught = scenario
                break
        if caught is None:
            print(f"sites mutation {args.mutation!r} NOT caught in "
                  f"{args.seeds} seeds — the multi-site harness is blind")
            return 1
        print(f"sites mutation {args.mutation!r} caught at seed "
              f"{caught.seed}")
        small = shrink_multisite_scenario(caught, _multisite_diverges)
        print(f"shrunk to: {small.describe()}")
    finally:
        restore()
    clean = _check_multisite(small)
    if clean:
        print("shrunk multi-site reproduction does NOT replay clean "
              "unmutated:")
        print(render_report(small, clean))
        return 1
    if args.write_corpus:
        path = write_corpus(small, args.corpus / "multisite")
        print(f"multisite corpus entry written: {path}")
    return 0


def cmd_mutate(args) -> int:
    restore = apply_mutation(args.name)
    try:
        caught = None
        for seed in range(args.start, args.start + args.seeds):
            scenario = generate_scenario(seed)
            if _oracle_diverges(scenario):
                caught = scenario
                break
        if caught is None:
            print(f"mutation {args.name!r} NOT caught in "
                  f"{args.seeds} seeds — the harness is blind")
            return 1
        print(f"mutation {args.name!r} caught at seed {caught.seed}")
        small = shrink_scenario(caught, _oracle_diverges)
        print(f"shrunk to: {small.describe()}")
        if len(small.statements) > args.max_statements:
            print(f"reproduction has {len(small.statements)} statements, "
                  f"over the {args.max_statements}-statement cap")
            return 1
    finally:
        restore()
    # The reproduction must replay clean on the unmutated stack — that
    # is what makes it safe to commit as a regression corpus entry.
    clean = _check_scenario(small)
    if clean:
        print("shrunk reproduction does NOT replay clean unmutated:")
        print(render_report(small, clean))
        return 1
    if args.write_corpus:
        path = write_corpus(small, args.corpus)
        print(f"corpus entry written: {path}")
    print(f"mutation check: caught and shrunk to "
          f"{len(small.statements)} statements")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=DEFAULT_SEEDS,
                        help="scenario seeds to sweep (env DIFFTEST_SEEDS)")
    parser.add_argument("--start", type=int, default=0,
                        help="first scenario seed")
    parser.add_argument("--chaos", type=int, default=DEFAULT_CHAOS_SEEDS,
                        help="chaos schedules to run "
                             "(env DIFFTEST_CHAOS_SEEDS)")
    parser.add_argument("--chaos-base", type=int, default=100,
                        help="first chaos-schedule seed")
    parser.add_argument("--corpus", type=Path, default=CORPUS_DIR,
                        help="regression corpus directory")
    parser.add_argument("--artifacts", type=Path, default=ARTIFACTS_DIR,
                        help="where divergence reproductions are written")
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("sweep", add_help=False)
    subparsers.add_parser("corpus", add_help=False)
    interleave = subparsers.add_parser("interleave")
    interleave.add_argument(
        "--clients", type=int,
        default=int(os.environ.get("DIFFTEST_CLIENTS", "8")),
        help="concurrent gateway sessions (env DIFFTEST_CLIENTS)")
    interleave.add_argument(
        "--workers", type=int,
        default=int(os.environ.get("DIFFTEST_WORKERS", "4")),
        help="worker-pool threads (env DIFFTEST_WORKERS)")
    sites = subparsers.add_parser("sites")
    sites.add_argument(
        "--mutation", default="seq-chronicle-newest",
        choices=sorted(MUTATIONS),
        help="planted bug for the multi-site liveness check")
    sites.add_argument(
        "--skip-mutation", action="store_true",
        help="skip the mutation-liveness leg (seeds + corpus only)")
    sites.add_argument(
        "--write-corpus", action="store_true",
        help="persist the shrunk mutation catch to --corpus/multisite")
    mutate = subparsers.add_parser("mutate")
    mutate.add_argument("name", choices=sorted(MUTATIONS))
    mutate.add_argument("--max-statements", type=int, default=10,
                        help="cap on the shrunk reproduction's stream")
    mutate.add_argument("--write-corpus", action="store_true",
                        help="persist the shrunk reproduction to --corpus")
    args = parser.parse_args(argv)
    if args.command == "mutate":
        return cmd_mutate(args)
    if args.command == "corpus":
        return cmd_corpus(args)
    if args.command == "interleave":
        return cmd_interleave(args)
    if args.command == "sites":
        return cmd_sites(args)
    return cmd_sweep(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
