#!/usr/bin/env python
"""CI gate: the plan cache must keep paying for itself.

Reads the ``BENCH_hotpath.json`` artifact produced by
``benchmarks/bench_hotpath.py`` and compares the median latency of the
same repeated batch with the plan cache off vs on.  The cached path must
be at least ``HOTPATH_RATIO`` times faster (default 1.3x) — catching any
change that re-introduces per-execution parsing onto the hot path.  The
indexed point-select series is also required to beat the full scan, and
the planned-DAG three-table join must be at least ``PLANNER_RATIO``
times faster (default 1.5x) than the legacy AST walker at the median.

Usage::

    python tools/check_hotpath.py                  # ./BENCH_hotpath.json
    python tools/check_hotpath.py path/to/BENCH_hotpath.json
    HOTPATH_RATIO=1.1 PLANNER_RATIO=1.2 python tools/check_hotpath.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Series labels written by benchmarks/bench_hotpath.py.
CACHE_OFF_SERIES = "1 repeated batch, plan cache off"
CACHE_ON_SERIES = "2 repeated batch, plan cache on"
SCAN_SERIES = "3 point select, full scan"
INDEX_SERIES = "4 point select, indexed"
JOIN_LEGACY_SERIES = "9 three-table join, legacy walker"
JOIN_PLANNED_SERIES = "10 three-table join, planned DAG"

#: Default floor for the cache-off/cache-on median-latency ratio.
DEFAULT_RATIO = 1.3

#: Default floor for the legacy-walker/planned-DAG join p50 ratio.
DEFAULT_PLANNER_RATIO = 1.5


def check(path: Path, min_ratio: float,
          min_planner_ratio: float = DEFAULT_PLANNER_RATIO) -> list[str]:
    """Validate one hotpath artifact; returns the list of problems."""
    if not path.exists():
        return [f"{path}: artifact not found (run benchmarks/"
                "bench_hotpath.py first)"]
    payload = json.loads(path.read_text())
    series = payload.get("series", {})
    problems = []
    for label in (CACHE_OFF_SERIES, CACHE_ON_SERIES, SCAN_SERIES,
                  INDEX_SERIES, JOIN_LEGACY_SERIES, JOIN_PLANNED_SERIES):
        if label not in series:
            problems.append(f"{path}: series {label!r} missing")
    if problems:
        return problems
    off = series[CACHE_OFF_SERIES]["p50"]
    on = series[CACHE_ON_SERIES]["p50"]
    if on <= 0:
        return [f"{path}: cached p50 is {on}; artifact corrupt"]
    ratio = off / on
    print(f"plan-cache speedup: {off:.4f}ms / {on:.4f}ms = {ratio:.2f}x "
          f"(floor {min_ratio:.2f}x)")
    if ratio < min_ratio:
        problems.append(
            f"{path}: cached-path p50 speedup is {ratio:.2f}x, under the "
            f"{min_ratio:.2f}x floor")
    scan = series[SCAN_SERIES]["p50"]
    indexed = series[INDEX_SERIES]["p50"]
    print(f"index-scan speedup: {scan:.4f}ms / {indexed:.4f}ms = "
          f"{scan / indexed:.2f}x" if indexed > 0 else
          f"index-scan p50 is {indexed}")
    if indexed <= 0 or indexed >= scan:
        problems.append(
            f"{path}: indexed point select ({indexed}ms p50) does not beat "
            f"the full scan ({scan}ms p50)")
    legacy = series[JOIN_LEGACY_SERIES]["p50"]
    planned = series[JOIN_PLANNED_SERIES]["p50"]
    if planned <= 0:
        problems.append(f"{path}: planned join p50 is {planned}; "
                        "artifact corrupt")
        return problems
    planner_ratio = legacy / planned
    print(f"planner join speedup: {legacy:.4f}ms / {planned:.4f}ms = "
          f"{planner_ratio:.2f}x (floor {min_planner_ratio:.2f}x)")
    if planner_ratio < min_planner_ratio:
        problems.append(
            f"{path}: planned three-table join p50 speedup is "
            f"{planner_ratio:.2f}x, under the {min_planner_ratio:.2f}x "
            "floor")
    return problems


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit status."""
    path = Path(argv[0]) if argv else REPO_ROOT / "BENCH_hotpath.json"
    min_ratio = float(os.environ.get("HOTPATH_RATIO", DEFAULT_RATIO))
    min_planner_ratio = float(
        os.environ.get("PLANNER_RATIO", DEFAULT_PLANNER_RATIO))
    problems = check(path, min_ratio, min_planner_ratio)
    for problem in problems:
        print(problem)
    if problems:
        return 1
    print("hotpath check: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
