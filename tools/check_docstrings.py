#!/usr/bin/env python
"""CI gate: every public symbol in the agent's API surface has a docstring.

Walks the checked files with ``ast`` (no imports, so it runs before the
package is installable) and reports any public module, class, function,
or method whose docstring is missing or empty.  "Public" means the name
does not start with an underscore and is not an enclosed (nested)
function.  Exit status 0 when clean, 1 with a per-symbol report when not.

Usage::

    python tools/check_docstrings.py            # check the default surface
    python tools/check_docstrings.py src/my.py  # check specific files
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The public API surface the docs suite documents (docs/ARCHITECTURE.md);
#: additions here are additions to the operator-facing contract.
DEFAULT_SURFACE = [
    "src/repro/__init__.py",
    "src/repro/agent/agent.py",
    "src/repro/agent/gateway.py",
    "src/repro/agent/persistence.py",
    "src/repro/agent/session.py",
    "src/repro/agent/workers.py",
    "src/repro/sqlengine/locks.py",
    "src/repro/sqlengine/planner.py",
    "src/repro/sqlengine/dagexec.py",
    "src/repro/faults/__init__.py",
    "src/repro/faults/injector.py",
    "src/repro/faults/retry.py",
    "src/repro/obs/provenance.py",
    "src/repro/obs/export.py",
    "src/repro/ged/__init__.py",
    "src/repro/ged/global_detector.py",
    "src/repro/ged/partitioning.py",
    "src/repro/ged/transport.py",
    "src/repro/ged/sharded.py",
    "src/repro/led/remote.py",
]

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _missing_in(tree: ast.Module, path: str) -> list[str]:
    """The public symbols in one parsed module lacking docstrings."""
    problems: list[str] = []
    if not (ast.get_docstring(tree) or "").strip():
        problems.append(f"{path}: module docstring missing")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                name = f"{prefix}{child.name}"
                if not child.name.startswith("_") and not (
                        ast.get_docstring(child) or "").strip():
                    problems.append(
                        f"{path}:{child.lineno}: class {name} "
                        "docstring missing")
                visit(child, f"{name}.")
            elif isinstance(child, _DEF_NODES):
                name = f"{prefix}{child.name}"
                public = not child.name.startswith("_")
                overload = any(
                    isinstance(d, ast.Name) and d.id == "overload"
                    for d in child.decorator_list)
                if public and not overload and not (
                        ast.get_docstring(child) or "").strip():
                    problems.append(
                        f"{path}:{child.lineno}: def {name} "
                        "docstring missing")
                # do not descend: enclosed functions are implementation

    visit(tree, "")
    return problems


def check(paths: list[str]) -> list[str]:
    """Check the given files; returns the list of problem strings."""
    problems: list[str] = []
    for rel in paths:
        target = (REPO_ROOT / rel) if not Path(rel).is_absolute() else Path(rel)
        if not target.exists():
            problems.append(f"{rel}: file not found")
            continue
        tree = ast.parse(target.read_text(), filename=str(target))
        problems.extend(_missing_in(tree, rel))
    return problems


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit status."""
    paths = argv or DEFAULT_SURFACE
    problems = check(paths)
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} public symbol(s) missing docstrings")
        return 1
    print(f"docstring check: {len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
