#!/usr/bin/env python
"""CI gate: the observability plane must stay cheap.

Reads the ``BENCH_overhead.json`` artifact produced by
``benchmarks/bench_overhead.py`` and compares the fully-observed series
(stats + trace + provenance journal on) against the same stack with the
observability plane off.  The mean-latency ratio between the two must
stay under a threshold (default 2.0x, overridable through the
``OBS_OVERHEAD_RATIO`` environment variable) — catching any change that
moves real work onto the instrumented hot path.

The health-plane series (stats + accounting + slow-op capture armed,
trace and provenance off) is gated against the same baseline under the
same ceiling, so the always-on health surface can never quietly grow
more expensive than the full debugging plane is allowed to be.

Usage::

    python tools/check_overhead.py                   # ./BENCH_overhead.json
    python tools/check_overhead.py path/to/BENCH_overhead.json
    OBS_OVERHEAD_RATIO=1.5 python tools/check_overhead.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Series labels written by benchmarks/bench_overhead.py.
BASELINE_SERIES = "4 + composite detection (Example 2)"
OBSERVED_SERIES = "5 + observability on (stats+trace+provenance)"
HEALTH_SERIES = "6 + health plane (accounting+slowlog+stats)"

#: Default ceiling for observed/baseline mean latency.
DEFAULT_RATIO = 2.0


def check(path: Path, max_ratio: float) -> list[str]:
    """Validate one overhead artifact; returns the list of problems."""
    if not path.exists():
        return [f"{path}: artifact not found (run benchmarks/"
                "bench_overhead.py first)"]
    payload = json.loads(path.read_text())
    series = payload.get("series", {})
    problems = []
    for label in (BASELINE_SERIES, OBSERVED_SERIES, HEALTH_SERIES):
        if label not in series:
            problems.append(f"{path}: series {label!r} missing")
    if problems:
        return problems
    baseline = series[BASELINE_SERIES]["mean"]
    if baseline <= 0:
        return [f"{path}: baseline mean is {baseline}; artifact corrupt"]
    for name, label in (("observability", OBSERVED_SERIES),
                        ("health plane", HEALTH_SERIES)):
        observed = series[label]["mean"]
        ratio = observed / baseline
        print(f"{name} overhead: {observed:.4f}ms / {baseline:.4f}ms "
              f"= {ratio:.2f}x (limit {max_ratio:.2f}x)")
        if ratio > max_ratio:
            problems.append(
                f"{path}: {name} mean latency is {ratio:.2f}x the "
                f"baseline, over the {max_ratio:.2f}x limit")
    return problems


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit status."""
    path = Path(argv[0]) if argv else REPO_ROOT / "BENCH_overhead.json"
    max_ratio = float(os.environ.get("OBS_OVERHEAD_RATIO", DEFAULT_RATIO))
    problems = check(path, max_ratio)
    for problem in problems:
        print(problem)
    if problems:
        return 1
    print("overhead check: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
