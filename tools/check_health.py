#!/usr/bin/env python
"""CI gate: the agent must report itself healthy under a clean workload.

Builds the paper's Example 1 + Example 2 stack in-process, drives a
representative workload through the gateway with the full health plane
hot (stats, accounting, slow-op capture armed), and evaluates the
watchdog (:mod:`repro.obs.health`).  The resulting report — status,
per-rule findings, the raw sample, the top sessions/rules, and any
captured slow ops — is written to ``BENCH_health.json`` for CI to
archive.

Exit status: 0 when the report is ``ok`` or ``degraded`` (a degraded
report is printed loudly but does not fail the build — thresholds like
plan-cache hit rate depend on runner speed), 1 when any rule reports
``critical`` or the workload itself errors.  ``HEALTH_STRICT=1``
promotes ``degraded`` to a failure for local runs.

Usage::

    python tools/check_health.py
    HEALTH_STRICT=1 python tools/check_health.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _helpers import example_2_stack  # noqa: E402  (path bootstrap above)

ARTIFACT = REPO_ROOT / "BENCH_health.json"

#: Slow-op threshold for the gate workload: generous enough that only a
#: pathological regression records commands on a CI runner.
SLOWLOG_MS = 250.0


def drive_workload(conn, rounds: int = 50) -> None:
    """A clean mixed workload: inserts and deletes that raise both
    primitive events and the Example 2 composite, plus reads.  The
    statement texts repeat so a healthy plan cache hits."""
    for index in range(rounds):
        conn.execute("insert stock values ('IBM', 100, 10)")
        conn.execute("select symbol, price from stock")
        conn.execute("select symbol from stock where qty = 10")
        conn.execute("select qty from stock")
        if index % 5 == 4:
            conn.execute("delete stock where symbol = 'IBM'")


def main() -> int:
    """Run the gate; returns the process exit status."""
    _server, agent, conn = example_2_stack()
    agent.metrics.enabled = True
    conn.execute(f"set agent slowlog {SLOWLOG_MS:g}")
    drive_workload(conn)

    report = agent.health()
    payload = {
        "report": report.as_dict(),
        "top_sessions": [
            totals.as_dict() for totals in agent.accounting.top_sessions(5)],
        "top_rules": [
            totals.as_dict() for totals in agent.accounting.top_rules(5)],
        "slow_ops": [record.as_dict() for record in agent.flightrec.tail(5)],
    }
    ARTIFACT.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8")

    print(f"agent health: {report.status}  (artifact: {ARTIFACT.name})")
    for finding in report.findings:
        marker = "  " if finding.status == "ok" else "! "
        print(f"{marker}{finding.rule}: {finding.status} "
              f"(value={finding.value:g}, {finding.direction} "
              f"{finding.threshold:g})")

    if report.status == "critical":
        print("health check: CRITICAL — failing the build")
        return 1
    if report.status == "degraded":
        print("health check: degraded")
        if os.environ.get("HEALTH_STRICT") == "1":
            print("HEALTH_STRICT=1 — failing the build")
            return 1
        return 0
    print("health check: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
