"""Shared fixtures: a fresh server, direct and mediated connections,
and the suite-wide randomness seed."""

from __future__ import annotations

import os
import random

import pytest

from repro.agent import EcaAgent
from repro.core import ActiveDatabase
from repro.sqlengine import SqlServer, connect

#: Default seed for every seeded test; override with REPRO_TEST_SEED=n
#: to rotate the whole suite's randomised coverage in one move.
DEFAULT_TEST_SEED = 7


@pytest.fixture
def rng_seed(request) -> int:
    """The suite's randomness seed (env-overridable, echoed on failure).

    Seeded tests take this instead of hard-coding a literal, so
    ``REPRO_TEST_SEED=n pytest`` re-rolls every randomised test at once
    and a red test's report always names the seed that reproduces it.
    """
    seed = int(os.environ.get("REPRO_TEST_SEED", DEFAULT_TEST_SEED))
    # Echo into the failure report: pytest prints captured output for
    # failing tests, so the reproducing seed is always in the log.
    print(f"[rng_seed] {request.node.name} running with seed {seed} "
          f"(override with REPRO_TEST_SEED)")
    return seed


@pytest.fixture
def rng(rng_seed) -> random.Random:
    """A fresh ``random.Random`` seeded with :func:`rng_seed`."""
    return random.Random(rng_seed)

STOCK_DDL = (
    "create table stock ("
    "symbol varchar(10) not null, "
    "price float null, "
    "qty int null)"
)


@pytest.fixture
def server() -> SqlServer:
    """A fresh passive engine with a ``sentineldb`` database."""
    return SqlServer(default_database="sentineldb")


@pytest.fixture
def conn(server):
    """A direct (non-mediated) connection as user ``sharma``."""
    connection = connect(server, user="sharma", database="sentineldb")
    yield connection
    connection.close()


@pytest.fixture
def stock(conn):
    """The paper's stock table, created directly on the engine."""
    conn.execute(STOCK_DDL)
    return conn


@pytest.fixture
def agent(server):
    """An ECA Agent mediating the fresh server (synchronous channel)."""
    eca_agent = EcaAgent(server)
    yield eca_agent
    eca_agent.close()


@pytest.fixture
def aconn(agent):
    """A mediated connection through the agent as user ``sharma``."""
    connection = agent.connect(user="sharma", database="sentineldb")
    yield connection
    connection.close()


@pytest.fixture
def astock(aconn):
    """The stock table created through the agent (plain SQL passthrough)."""
    aconn.execute(STOCK_DDL)
    return aconn


@pytest.fixture
def adb():
    """An :class:`ActiveDatabase` facade instance."""
    database = ActiveDatabase(database="sentineldb", user="sharma")
    yield database
    database.close()
