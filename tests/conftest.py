"""Shared fixtures: a fresh server, direct and mediated connections."""

from __future__ import annotations

import pytest

from repro.agent import EcaAgent
from repro.core import ActiveDatabase
from repro.sqlengine import SqlServer, connect

STOCK_DDL = (
    "create table stock ("
    "symbol varchar(10) not null, "
    "price float null, "
    "qty int null)"
)


@pytest.fixture
def server() -> SqlServer:
    """A fresh passive engine with a ``sentineldb`` database."""
    return SqlServer(default_database="sentineldb")


@pytest.fixture
def conn(server):
    """A direct (non-mediated) connection as user ``sharma``."""
    connection = connect(server, user="sharma", database="sentineldb")
    yield connection
    connection.close()


@pytest.fixture
def stock(conn):
    """The paper's stock table, created directly on the engine."""
    conn.execute(STOCK_DDL)
    return conn


@pytest.fixture
def agent(server):
    """An ECA Agent mediating the fresh server (synchronous channel)."""
    eca_agent = EcaAgent(server)
    yield eca_agent
    eca_agent.close()


@pytest.fixture
def aconn(agent):
    """A mediated connection through the agent as user ``sharma``."""
    connection = agent.connect(user="sharma", database="sentineldb")
    yield connection
    connection.close()


@pytest.fixture
def astock(aconn):
    """The stock table created through the agent (plain SQL passthrough)."""
    aconn.execute(STOCK_DDL)
    return aconn


@pytest.fixture
def adb():
    """An :class:`ActiveDatabase` facade instance."""
    database = ActiveDatabase(database="sentineldb", user="sharma")
    yield database
    database.close()
