"""Workload generators: determinism and validity."""

import pytest

from repro.led import LocalEventDetector, ManualClock
from repro.snoop import parse_event_expression
from repro.workloads import (
    EcaWorkload,
    RandomEventStream,
    StockWorkload,
    random_snoop_expression,
)


class TestStockWorkload:
    def test_deterministic(self):
        one = StockWorkload(seed=42).operations(50)
        two = StockWorkload(seed=42).operations(50)
        assert one == two

    def test_seeds_differ(self):
        assert StockWorkload(seed=1).operations(30) != \
            StockWorkload(seed=2).operations(30)

    def test_operations_are_executable(self, conn):
        workload = StockWorkload()
        conn.execute(workload.setup_sql())
        for sql in workload.operations(200):
            conn.execute(sql)
        count = conn.execute("select count(*) from stock").last.scalar()
        assert count > 0

    def test_mix_contains_all_kinds(self):
        ops = StockWorkload().operations(300)
        kinds = {op.split()[0] for op in ops}
        assert kinds == {"insert", "update", "delete"}

    def test_update_and_delete_target_held_positions(self, conn):
        workload = StockWorkload()
        conn.execute(workload.setup_sql())
        deletes_hit = 0
        for sql in workload.operations(300):
            result = conn.execute(sql)
            if sql.startswith("delete"):
                deletes_hit += result.rowcount
        assert deletes_hit > 0


class TestRandomSnoop:
    def test_expressions_parse(self, rng):
        leaves = [f"e{i}" for i in range(6)]
        for depth in range(4):
            for _ in range(20):
                text = random_snoop_expression(rng, leaves, depth)
                parse_event_expression(text)  # must not raise

    def test_depth_zero_is_leaf(self, rng):
        assert random_snoop_expression(rng, ["x"], 0) == "x"


class TestEcaWorkload:
    def test_install_into_led(self):
        workload = EcaWorkload(n_primitives=5, n_composites=8,
                               expression_depth=2, rules_per_event=2)
        led = LocalEventDetector(clock=ManualClock())
        rules = workload.install(led)
        assert rules == 16
        assert len(led.events) >= 13  # 5 primitives + 8 named composites

    def test_event_stream_covers_primitives(self):
        workload = EcaWorkload(n_primitives=4)
        stream = workload.event_stream(200)
        assert set(stream) == set(workload.primitives)

    def test_stream_is_raisable(self):
        workload = EcaWorkload(n_primitives=4, n_composites=4)
        led = LocalEventDetector(clock=ManualClock())
        hits = []
        workload.install(led, action=lambda occ: hits.append(occ))
        for name in workload.event_stream(100):
            led.clock.advance(1)
            led.raise_event(name)
        # Some composites must have fired on a 100-event stream.
        assert hits

    def test_deterministic(self):
        one = EcaWorkload(seed=5)
        two = EcaWorkload(seed=5)
        assert one.composites == two.composites


class TestRandomEventStream:
    def test_deterministic(self):
        a = RandomEventStream(["x", "y"], seed=9).take(50)
        b = RandomEventStream(["x", "y"], seed=9).take(50)
        assert a == b
