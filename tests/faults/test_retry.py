"""Unit tests for the retry policy (bounded retries, backoff, budget)."""

import pytest

from repro.faults import (
    RetryExhaustedError,
    RetryPolicy,
    TransientFaultError,
)
from repro.obs import MetricsRegistry


class Flaky:
    """Callable that fails transiently N times, then succeeds."""

    def __init__(self, failures, exc=TransientFaultError):
        self.failures = failures
        self.calls = 0
        self.exc = exc

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom {self.calls}")
        return "ok"


class TestRetryLoop:
    def test_success_after_transient_failures(self):
        flaky = Flaky(2)
        assert RetryPolicy(max_attempts=3).call(flaky) == "ok"
        assert flaky.calls == 3

    def test_exhaustion_wraps_last_error(self):
        flaky = Flaky(5)
        with pytest.raises(RetryExhaustedError) as excinfo:
            RetryPolicy(max_attempts=3).call(flaky, operation="persistence")
        assert excinfo.value.attempts == 3
        assert "persistence" in str(excinfo.value)
        assert isinstance(excinfo.value.last_error, TransientFaultError)
        assert excinfo.value.__cause__ is excinfo.value.last_error

    def test_non_transient_errors_propagate_unchanged(self):
        def broken():
            raise ValueError("real bug")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(broken)

    def test_retry_if_predicate_restricts(self):
        flaky = Flaky(1)
        with pytest.raises(TransientFaultError):
            RetryPolicy(max_attempts=3).call(
                flaky, retry_if=lambda exc: False)
        assert flaky.calls == 1

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestBackoff:
    def test_exponential_backoff_sequence(self):
        slept = []
        policy = RetryPolicy(max_attempts=4, backoff=0.1, multiplier=2.0,
                             sleeper=slept.append)
        flaky = Flaky(3)
        assert policy.call(flaky) == "ok"
        assert slept == [0.1, 0.2, 0.4]

    def test_zero_backoff_never_sleeps(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, backoff=0.0,
                             sleeper=slept.append)
        policy.call(Flaky(2))
        assert slept == []


class TestTimeBudget:
    def test_budget_exhaustion_stops_retrying(self):
        fake_now = [0.0]

        def clock():
            fake_now[0] += 10.0
            return fake_now[0]

        policy = RetryPolicy(max_attempts=100, timeout=5.0, clock=clock)
        flaky = Flaky(50)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(flaky)
        assert excinfo.value.attempts == 1  # budget gone before retry 1


class TestRetryMetrics:
    def test_retries_attempted_and_exhausted_counters(self):
        metrics = MetricsRegistry(enabled=True)
        policy = RetryPolicy(max_attempts=3)
        policy.call(Flaky(2), operation="persistence", metrics=metrics)
        with pytest.raises(RetryExhaustedError):
            policy.call(Flaky(9), operation="persistence", metrics=metrics)
        attempted = metrics.get("retries_attempted")
        exhausted = metrics.get("retry_exhausted")
        assert attempted.labels("persistence").value() == 2 + 2
        assert exhausted.labels("persistence").value() == 1

    def test_no_metric_families_registered_on_success(self):
        metrics = MetricsRegistry(enabled=True)
        RetryPolicy().call(lambda: "ok", metrics=metrics)
        assert metrics.get("retries_attempted") is None
