"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.faults import (
    Directive,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
    TransientFaultError,
)


class TestFaultSpec:
    def test_kind_coerced_from_string(self):
        spec = FaultSpec(point="p", kind="crash")
        assert spec.kind is FaultKind.CRASH

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(point="p", probability=1.5)

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(point="p", after=-1)


class TestAfterNMode:
    def test_fires_on_exact_call_index(self):
        plan = FaultPlan()
        plan.inject("p", kind="raise", after=2)
        injector = FaultInjector(plan)
        injector.fire("p")
        injector.fire("p")
        with pytest.raises(TransientFaultError):
            injector.fire("p")
        # times=1 default: exhausted afterwards
        injector.fire("p")
        assert injector.injected_count == 1

    def test_times_bounds_total_firings(self):
        plan = FaultPlan()
        plan.inject("p", kind="raise", after=0, times=2)
        injector = FaultInjector(plan)
        with pytest.raises(TransientFaultError):
            injector.fire("p")
        with pytest.raises(TransientFaultError):
            injector.fire("p")
        # after-N mode fires on consecutive calls until times runs out.
        injector.fire("p")
        assert injector.injected_count == 2

    def test_unlimited_probability_faults(self, rng_seed):
        plan = FaultPlan(seed=rng_seed)
        plan.inject("p", kind="drop", probability=1.0, times=0)
        injector = FaultInjector(plan)
        for _ in range(5):
            assert injector.fire("p") is Directive.DROP
        assert injector.injected_count == 5


class TestMatchFilter:
    def test_match_restricts_to_substring(self):
        plan = FaultPlan()
        plan.inject("p", kind="raise", match="SysEcaAction")
        injector = FaultInjector(plan)
        injector.fire("p", "insert SysEcaTrigger values (...)")
        with pytest.raises(TransientFaultError):
            injector.fire("p", "insert sysecaaction values (...)")

    def test_after_counts_matching_calls_only(self):
        plan = FaultPlan()
        plan.inject("p", kind="raise", match="target", after=1)
        injector = FaultInjector(plan)
        injector.fire("p", "other")
        injector.fire("p", "target one")   # matching call 0
        with pytest.raises(TransientFaultError):
            injector.fire("p", "target two")  # matching call 1


class TestDeterminism:
    def _run(self, seed):
        plan = FaultPlan(seed=seed)
        plan.inject("p", kind="drop", probability=0.5, times=0)
        injector = FaultInjector(plan)
        return [injector.fire("p") is Directive.DROP for _ in range(32)]

    def test_same_seed_same_sequence(self):
        assert self._run(7) == self._run(7)

    def test_different_seed_different_sequence(self):
        assert self._run(7) != self._run(8)


class TestKinds:
    def test_crash_is_base_exception(self):
        plan = FaultPlan()
        plan.inject("p", kind="crash")
        injector = FaultInjector(plan)
        with pytest.raises(SimulatedCrash):
            injector.fire("p")
        assert not issubclass(SimulatedCrash, Exception)

    def test_latency_uses_sleeper(self):
        slept = []
        plan = FaultPlan()
        plan.inject("p", kind="latency", latency=0.25)
        injector = FaultInjector(plan, sleeper=slept.append)
        assert injector.fire("p") is Directive.CONTINUE
        assert slept == [0.25]

    def test_raise_carries_point(self):
        plan = FaultPlan()
        plan.inject("p", kind="raise")
        injector = FaultInjector(plan)
        with pytest.raises(TransientFaultError) as excinfo:
            injector.fire("p")
        assert excinfo.value.point == "p"


class TestArming:
    def test_disarm_and_rearm(self):
        plan = FaultPlan()
        plan.inject("p", kind="raise")
        injector = FaultInjector(plan)
        injector.disarm()
        assert injector.fire("p") is Directive.CONTINUE
        injector.arm()
        with pytest.raises(TransientFaultError):
            injector.fire("p")

    def test_empty_plan_never_enabled(self):
        injector = FaultInjector()
        assert not injector.enabled
        assert injector.fire("anything") is Directive.CONTINUE


class TestMetricsAndDescribe:
    def test_faults_injected_counter(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry(enabled=True)
        plan = FaultPlan()
        plan.inject("p", kind="drop")
        injector = FaultInjector(plan, metrics=metrics)
        injector.fire("p")
        family = metrics.get("faults_injected")
        assert family.labels("p", "drop").value() == 1

    def test_describe_reports_counts(self):
        plan = FaultPlan()
        plan.inject("p", kind="drop", times=1)
        injector = FaultInjector(plan)
        injector.fire("p")
        injector.fire("p")
        (row,) = injector.describe()
        assert row["point"] == "p"
        assert row["fired"] == 1
        assert row["seen"] >= 1
