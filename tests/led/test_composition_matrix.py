"""Operator composition: nested Snoop expressions behave compositionally.

The paper's event graphs allow arbitrary nesting; these tests pin down
the semantics of representative nestings in each context family.
"""

import pytest

from repro.led import Context

from .conftest import Recorder, raise_sequence


def install(led, recorder, expression, context=Context.CHRONICLE, name="X"):
    led.define_composite(name, expression)
    led.add_rule("r", name, action=recorder, context=context)


class TestNestedBinary:
    def test_and_of_seqs(self, led, recorder):
        install(led, recorder, "(a SEQ b) AND (c SEQ d)")
        raise_sequence(led, ["a", "c", "b", "d"])
        assert recorder.constituents == [["a", "c", "b", "d"]]

    def test_seq_of_ands_requires_interval_order(self, led, recorder):
        install(led, recorder, "(a AND b) SEQ (c AND d)")
        # The (c,d) pair completes before (a,b) does -> no sequence.
        raise_sequence(led, ["a", "c", "d", "b"])
        assert recorder.count == 0
        # Now a fresh (c,d) after the completed (a,b): fires.
        raise_sequence(led, ["c", "d"])
        assert recorder.count == 1

    def test_or_distributes_detection(self, led, recorder):
        install(led, recorder, "(a OR b) SEQ c")
        raise_sequence(led, ["a", "c", "b", "c"])
        assert recorder.count == 2

    def test_deep_left_nesting(self, led, recorder):
        install(led, recorder, "((a SEQ b) SEQ c) SEQ d")
        raise_sequence(led, ["a", "b", "c", "d"])
        assert recorder.constituents == [["a", "b", "c", "d"]]

    def test_deep_nesting_partial_prefix_does_not_fire(self, led, recorder):
        install(led, recorder, "((a SEQ b) SEQ c) SEQ d")
        raise_sequence(led, ["a", "b", "d", "c"])
        assert recorder.count == 0


class TestTernaryOverComposite:
    def test_not_with_composite_interval_ends(self, led, recorder):
        # NOT((a AND b), c, d): window opens when the AND completes.
        install(led, recorder, "NOT(a AND b, c, d)")
        raise_sequence(led, ["a", "b", "d"])
        assert recorder.count == 1

    def test_not_with_composite_killed_by_middle(self, led, recorder):
        install(led, recorder, "NOT(a AND b, c, d)")
        raise_sequence(led, ["a", "b", "c", "d"])
        assert recorder.count == 0

    def test_aperiodic_with_composite_middle(self, led, recorder):
        install(led, recorder, "A(a, b AND c, d)")
        raise_sequence(led, ["a", "b", "c", "d", "b", "c"])
        # One (b AND c) completion inside the window; the pair after d
        # is outside.
        assert recorder.count == 1

    def test_astar_collects_composite_middles(self, led, recorder):
        install(led, recorder, "A*(a, b SEQ c, d)")
        raise_sequence(led, ["a", "b", "c", "b", "c", "d"])
        assert recorder.count == 1
        names = recorder.constituents[0]
        assert names.count("b") == 2 and names.count("c") == 2


class TestContextThroughNesting:
    def test_recent_inner_feeds_recent_outer(self, led, recorder):
        install(led, recorder, "(a AND b) SEQ c", context=Context.RECENT)
        raise_sequence(led, ["a", "b", "a", "b", "c"])
        # RECENT keeps only the newest completed (a AND b) as initiator.
        assert recorder.count == 1
        inner_times = [c.time for c in recorder.occurrences[0].flatten()][:2]
        assert inner_times == [3.0, 4.0]

    def test_cumulative_merges_nested_pairs(self, led, recorder):
        install(led, recorder, "(a AND b) SEQ c", context=Context.CUMULATIVE)
        raise_sequence(led, ["a", "b", "a", "b", "c"])
        assert recorder.count == 1
        names = recorder.constituents[0]
        assert names.count("a") == 2 and names.count("b") == 2

    def test_continuous_counts_inner_completions(self, led, recorder):
        install(led, recorder, "(a AND b) SEQ c", context=Context.CONTINUOUS)
        raise_sequence(led, ["a", "b", "a", "b", "c"])
        # Each completed inner pair is its own open window.
        assert recorder.count == 2


class TestEventNameResolutionThroughNesting:
    def test_named_subevents_equal_inline_expression(self, led):
        inline, named = Recorder(), Recorder()
        led.define_composite("inlineX", "(a AND b) SEQ c")
        led.define_composite("ab", "a AND b")
        led.define_composite("namedX", "ab SEQ c")
        led.add_rule("ri", "inlineX", action=inline, context=Context.CHRONICLE)
        led.add_rule("rn", "namedX", action=named, context=Context.CHRONICLE)
        raise_sequence(led, ["a", "b", "c", "a", "c", "b"])
        assert inline.constituents == named.constituents

    def test_three_level_reuse(self, led, recorder):
        led.define_composite("l1", "a AND b")
        led.define_composite("l2", "l1 SEQ c")
        led.define_composite("l3", "l2 OR d")
        led.add_rule("r", "l3", action=recorder, context=Context.CHRONICLE)
        raise_sequence(led, ["d"])
        assert recorder.count == 1
        raise_sequence(led, ["a", "b", "c"])
        assert recorder.count == 2
        assert recorder.constituents[1] == ["a", "b", "c"]
