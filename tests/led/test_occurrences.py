"""Occurrence composition and interval algebra."""

import pytest

from repro.led.occurrences import Occurrence, compose, primitive


class TestPrimitive:
    def test_interval_is_a_point(self):
        occ = primitive("e", 5.0, 3)
        assert occ.start == occ.end == (5.0, 3)
        assert occ.time == 5.0
        assert occ.seq == 3

    def test_flatten_is_self(self):
        occ = primitive("e", 1.0, 1)
        assert occ.flatten() == (occ,)

    def test_params_carried(self):
        occ = primitive("e", 1.0, 1, {"vNo": 4})
        assert occ.params["vNo"] == 4


class TestBefore:
    def test_strictly_before(self):
        first = primitive("a", 1.0, 1)
        second = primitive("b", 2.0, 2)
        assert first.before(second)
        assert not second.before(first)

    def test_same_time_uses_sequence(self):
        first = primitive("a", 1.0, 1)
        second = primitive("b", 1.0, 2)
        assert first.before(second)

    def test_not_before_itself(self):
        occ = primitive("a", 1.0, 1)
        assert not occ.before(occ)


class TestCompose:
    def test_interval_spans_parts(self):
        a = primitive("a", 1.0, 1)
        b = primitive("b", 5.0, 2)
        c = compose("ab", [b, a])
        assert c.start == (1.0, 1)
        assert c.end == (5.0, 2)

    def test_constituents_chronological(self):
        a = primitive("a", 3.0, 2)
        b = primitive("b", 1.0, 1)
        c = compose("ab", [a, b])
        assert c.constituent_names() == ["b", "a"]

    def test_nested_composition_flattens(self):
        a = primitive("a", 1.0, 1)
        b = primitive("b", 2.0, 2)
        c = primitive("c", 3.0, 3)
        inner = compose("ab", [a, b])
        outer = compose("abc", [inner, c])
        assert outer.constituent_names() == ["a", "b", "c"]
        assert outer.start == (1.0, 1)
        assert outer.end == (3.0, 3)

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            compose("x", [])

    def test_describe(self):
        a = primitive("a", 1.0, 1)
        b = primitive("b", 2.0, 2)
        text = compose("ab", [a, b]).describe()
        assert text == "ab[a@1, b@2]"

    def test_composite_before_uses_interval_ends(self):
        # A composite spanning [1, 5] is NOT before an occurrence at 3.
        a = primitive("a", 1.0, 1)
        b = primitive("b", 5.0, 3)
        mid = primitive("m", 3.0, 2)
        span = compose("ab", [a, b])
        assert not span.before(mid)
        late = primitive("l", 6.0, 4)
        assert span.before(late)
