"""Temporal operators (P, P*, PLUS) under the manual clock."""

import pytest

from repro.led import Context, LocalEventDetector, ManualClock

from .conftest import Recorder, raise_sequence


class TestPlus:
    def test_fires_exactly_after_delta(self, led, recorder):
        led.define_composite("late", "a PLUS [10 sec]")
        led.add_rule("r", "late", action=recorder)
        led.raise_event("a")
        led.advance_time(9.99)
        assert recorder.count == 0
        led.advance_time(0.01)
        assert recorder.count == 1
        assert recorder.occurrences[0].time == 10.0

    def test_one_timer_per_occurrence(self, led, recorder):
        led.define_composite("late", "a PLUS [5 sec]")
        led.add_rule("r", "late", action=recorder)
        led.raise_event("a")
        led.advance_time(2)
        led.raise_event("a")
        led.advance_time(10)
        assert recorder.count == 2
        assert [occ.time for occ in recorder.occurrences] == [5.0, 7.0]

    def test_constituents_include_source_and_timer(self, led, recorder):
        led.define_composite("late", "a PLUS [1 sec]")
        led.add_rule("r", "late", action=recorder)
        led.raise_event("a")
        led.advance_time(2)
        names = recorder.occurrences[0].constituent_names()
        assert names[0] == "a"
        assert names[1].endswith(".timer")

    def test_plus_over_composite(self, led, recorder):
        led.define_composite("late", "(a AND b) PLUS [3 sec]")
        led.add_rule("r", "late", action=recorder, context=Context.RECENT)
        raise_sequence(led, ["a", "b"])
        led.advance_time(3)
        assert recorder.count == 1
        assert recorder.occurrences[0].constituent_names()[:2] == ["a", "b"]


class TestPeriodic:
    def test_ticks_until_terminator(self, led, recorder):
        led.define_composite("pp", "P(a, [5 sec], b)")
        led.add_rule("r", "pp", action=recorder)
        led.raise_event("a")
        led.advance_time(17)          # ticks at 5, 10, 15
        led.raise_event("b")
        led.advance_time(20)          # no more ticks
        assert [occ.time for occ in recorder.occurrences] == [5.0, 10.0, 15.0]

    def test_no_tick_without_initiator(self, led, recorder):
        led.define_composite("pp", "P(a, [5 sec], b)")
        led.add_rule("r", "pp", action=recorder)
        led.advance_time(30)
        assert recorder.count == 0

    def test_recent_new_initiator_resets_phase(self, led, recorder):
        led.define_composite("pp", "P(a, [10 sec], b)")
        led.add_rule("r", "pp", action=recorder, context=Context.RECENT)
        led.raise_event("a")
        led.advance_time(6)
        led.raise_event("a")          # replaces window, phase restarts
        led.advance_time(9)
        assert recorder.count == 0    # old tick at 10 cancelled
        led.advance_time(1)
        assert recorder.count == 1    # new tick at 6 + 10 = 16

    def test_chronicle_windows_tick_independently(self, led, recorder):
        led.define_composite("pp", "P(a, [10 sec], b)")
        led.add_rule("r", "pp", action=recorder, context=Context.CHRONICLE)
        led.raise_event("a")
        led.advance_time(5)
        led.raise_event("a")
        led.advance_time(10)          # ticks at 10 (w1) and 15 (w2)
        assert [occ.time for occ in recorder.occurrences] == [10.0, 15.0]

    def test_terminator_cancels_pending_timers(self, led, recorder):
        led.define_composite("pp", "P(a, [5 sec], b)")
        led.add_rule("r", "pp", action=recorder)
        led.raise_event("a")
        led.advance_time(1)
        led.raise_event("b")
        assert led.pending_timer_count() == 0

    def test_tick_carries_parameter_annotation(self, led, recorder):
        led.define_composite("pp", "P(a, [5 sec]:price, b)")
        led.add_rule("r", "pp", action=recorder)
        led.raise_event("a")
        led.advance_time(5)
        tick = recorder.occurrences[0].constituents[-1]
        assert tick.params["parameter"] == "price"


class TestPeriodicStar:
    def test_accumulates_ticks_fires_at_terminator(self, led, recorder):
        led.define_composite("pp", "P*(a, [5 sec], b)")
        led.add_rule("r", "pp", action=recorder)
        led.raise_event("a")
        led.advance_time(12)          # ticks at 5, 10 collected silently
        assert recorder.count == 0
        led.raise_event("b")
        assert recorder.count == 1
        names = recorder.occurrences[0].constituent_names()
        assert names[0] == "a" and names[-1] == "b"
        assert sum(1 for n in names if n.endswith(".tick")) == 2

    def test_no_ticks_still_fires(self, led, recorder):
        led.define_composite("pp", "P*(a, [1 hour], b)")
        led.add_rule("r", "pp", action=recorder)
        raise_sequence(led, ["a", "b"])
        assert recorder.count == 1


class TestTimerMachinery:
    def test_advance_time_steps_through_deadlines(self, led, recorder):
        # Periodic reschedules land exactly on multiples even when the
        # clock jumps far past several of them at once.
        led.define_composite("pp", "P(a, [3 sec], b)")
        led.add_rule("r", "pp", action=recorder)
        led.raise_event("a")
        led.advance_time(100)
        times = [occ.time for occ in recorder.occurrences]
        assert times[:5] == [3.0, 6.0, 9.0, 12.0, 15.0]
        assert len(times) == 33

    def test_advance_requires_manual_clock(self):
        from repro.led.clock import SystemClock
        from repro.led.errors import RuleError

        detector = LocalEventDetector(clock=SystemClock())
        with pytest.raises(RuleError):
            detector.advance_time(1)

    def test_process_timers_without_advance(self, led, recorder):
        led.define_composite("late", "a PLUS [5 sec]")
        led.add_rule("r", "late", action=recorder)
        led.raise_event("a")
        led.clock.advance(10)         # move clock without processing
        assert recorder.count == 0
        led.process_timers()
        assert recorder.count == 1
