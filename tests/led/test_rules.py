"""Rule machinery: priorities, conditions, coupling modes, errors."""

import pytest

from repro.led import Context, Coupling
from repro.led.errors import ActionError, RuleError

from .conftest import raise_sequence


class TestMultipleRules:
    def test_multiple_rules_one_event(self, led):
        hits = []
        led.add_rule("r1", "a", action=lambda o: hits.append("r1"))
        led.add_rule("r2", "a", action=lambda o: hits.append("r2"))
        led.raise_event("a")
        assert sorted(hits) == ["r1", "r2"]

    def test_priority_order(self, led):
        hits = []
        led.add_rule("low", "a", action=lambda o: hits.append("low"), priority=1)
        led.add_rule("high", "a", action=lambda o: hits.append("high"), priority=9)
        led.add_rule("mid", "a", action=lambda o: hits.append("mid"), priority=5)
        led.raise_event("a")
        assert hits == ["high", "mid", "low"]

    def test_equal_priority_ordered_by_name(self, led):
        hits = []
        led.add_rule("zz", "a", action=lambda o: hits.append("zz"))
        led.add_rule("aa", "a", action=lambda o: hits.append("aa"))
        led.raise_event("a")
        assert hits == ["aa", "zz"]

    def test_priority_must_be_positive(self, led):
        with pytest.raises(ValueError):
            led.add_rule("bad", "a", action=lambda o: None, priority=0)

    def test_duplicate_rule_name(self, led):
        led.add_rule("r", "a", action=lambda o: None)
        with pytest.raises(RuleError):
            led.add_rule("r", "b", action=lambda o: None)


class TestConditions:
    def test_condition_gates_action(self, led):
        hits = []
        led.add_rule(
            "r", "a", action=lambda o: hits.append(o),
            condition=lambda o: o.params.get("price", 0) > 100)
        led.raise_event("a", {"price": 50})
        led.raise_event("a", {"price": 150})
        assert len(hits) == 1

    def test_condition_on_composite_occurrence(self, led):
        hits = []
        led.define_composite("ab", "a AND b")
        led.add_rule(
            "r", "ab", action=lambda o: hits.append(o),
            condition=lambda o: len(o.flatten()) == 2,
            context=Context.RECENT)
        raise_sequence(led, ["a", "b"])
        assert len(hits) == 1

    def test_condition_error_propagates_by_default(self, led):
        led.add_rule("r", "a", action=lambda o: None,
                     condition=lambda o: 1 / 0)
        with pytest.raises(ActionError):
            led.raise_event("a")


class TestRuleLifecycle:
    def test_drop_rule(self, led):
        hits = []
        led.add_rule("r", "a", action=lambda o: hits.append(o))
        led.drop_rule("r")
        led.raise_event("a")
        assert hits == []

    def test_drop_unknown_rule(self, led):
        with pytest.raises(RuleError):
            led.drop_rule("ghost")

    def test_disable_rule(self, led):
        hits = []
        rule = led.add_rule("r", "a", action=lambda o: hits.append(o))
        rule.enabled = False
        led.raise_event("a")
        rule.enabled = True
        led.raise_event("a")
        assert len(hits) == 1

    def test_rules_for_sorted_by_priority(self, led):
        led.add_rule("x", "a", action=lambda o: None, priority=1)
        led.add_rule("y", "a", action=lambda o: None, priority=3)
        assert [rule.name for rule in led.rules_for("a")] == ["y", "x"]


class TestCoupling:
    def test_immediate_runs_inline(self, led):
        hits = []
        led.add_rule("r", "a", action=lambda o: hits.append(o),
                     coupling=Coupling.IMMEDIATE)
        firings = led.raise_event("a")
        assert len(hits) == 1 and len(firings) == 1

    def test_deferred_waits_for_flush(self, led):
        hits = []
        led.add_rule("r", "a", action=lambda o: hits.append(o),
                     coupling=Coupling.DEFERRED)
        led.raise_event("a")
        assert hits == []
        assert led.deferred_count == 1
        led.flush_deferred()
        assert len(hits) == 1

    def test_discard_deferred(self, led):
        hits = []
        led.add_rule("r", "a", action=lambda o: hits.append(o),
                     coupling=Coupling.DEFERRED)
        led.raise_event("a")
        assert led.discard_deferred() == 1
        led.flush_deferred()
        assert hits == []

    def test_deferred_condition_evaluated_at_detection(self, led):
        gate = {"open": True}
        hits = []
        led.add_rule("r", "a", action=lambda o: hits.append(o),
                     condition=lambda o: gate["open"],
                     coupling=Coupling.DEFERRED)
        led.raise_event("a")
        gate["open"] = False          # too late: already queued
        led.flush_deferred()
        assert len(hits) == 1

    def test_detached_uses_dispatcher(self, led):
        dispatched = []
        led.detached_dispatcher = lambda rule, occ: dispatched.append(rule.name)
        led.add_rule("r", "a", action=lambda o: None,
                     coupling=Coupling.DETACHED)
        led.raise_event("a")
        assert dispatched == ["r"]

    def test_detached_without_dispatcher_runs_inline(self, led):
        hits = []
        led.add_rule("r", "a", action=lambda o: hits.append(o),
                     coupling=Coupling.DETACHED)
        led.raise_event("a")
        assert len(hits) == 1

    def test_coupling_parse_accepts_paper_spelling(self):
        # Figure 9 spells it DEFERED.
        assert Coupling.parse("DEFERED") is Coupling.DEFERRED


class TestActionErrors:
    def test_propagates_by_default(self, led):
        led.add_rule("r", "a", action=lambda o: 1 / 0)
        with pytest.raises(ActionError):
            led.raise_event("a")

    def test_swallow_mode_records_error(self, led):
        led.swallow_action_errors = True
        led.add_rule("bad", "a", action=lambda o: 1 / 0)
        led.add_rule("good", "a", action=lambda o: None)
        firings = led.raise_event("a")
        assert len(firings) == 2
        errors = [f for f in firings if f.error is not None]
        assert len(errors) == 1 and errors[0].rule_name == "bad"

    def test_history_records_all_firings(self, led):
        led.add_rule("r", "a", action=lambda o: None)
        led.raise_event("a")
        led.raise_event("a")
        assert len(led.history) == 2
        assert led.history[0].rule_name == "r"


class TestContextIsolation:
    def test_rules_in_different_contexts_see_different_streams(self, led):
        recent, cumulative = [], []
        led.define_composite("ab", "a AND b")
        led.add_rule("r1", "ab", action=lambda o: recent.append(o),
                     context=Context.RECENT)
        led.add_rule("r2", "ab", action=lambda o: cumulative.append(o),
                     context=Context.CUMULATIVE)
        raise_sequence(led, ["a", "a", "b"])
        assert len(recent) == 1
        assert len(cumulative) == 1
        assert len(recent[0].flatten()) == 2
        assert len(cumulative[0].flatten()) == 3

    def test_context_activation_is_lazy(self, led):
        led.define_composite("ab", "a AND b")
        node = led.get_event("ab")
        assert node.active_contexts == set()
        led.add_rule("r", "ab", action=lambda o: None, context=Context.CHRONICLE)
        assert node.active_contexts == {Context.CHRONICLE}
