"""Snoop operator semantics in every parameter context.

Each test raises a canonical primitive sequence and asserts exactly which
composite occurrences each context produces — these are the semantics of
the Snoop papers the ECA Agent inherits (paper Sections 2.1, 5.6).
"""

import pytest

from repro.led import Context

from .conftest import Recorder, raise_sequence


def install(led, recorder, expression, context, name="X"):
    led.define_composite(name, expression)
    led.add_rule("r", name, action=recorder, context=context)


class TestOr:
    @pytest.mark.parametrize("context", list(Context))
    def test_fires_once_per_constituent_in_every_context(
            self, led, recorder, context):
        install(led, recorder, "a OR b", context)
        raise_sequence(led, ["a", "b", "a"])
        assert recorder.constituents == [["a"], ["b"], ["a"]]

    def test_no_fire_for_unrelated_event(self, led, recorder):
        install(led, recorder, "a OR b", Context.RECENT)
        raise_sequence(led, ["c"])
        assert recorder.count == 0


class TestAnd:
    def test_recent_pairs_with_most_recent(self, led, recorder):
        install(led, recorder, "a AND b", Context.RECENT)
        raise_sequence(led, ["a", "a", "b"])
        # The second `a` is the most recent; pairs once.
        assert recorder.count == 1
        occ = recorder.occurrences[0]
        assert occ.constituent_names() == ["a", "b"]
        assert occ.constituents[0].time == 2.0

    def test_recent_constituents_not_consumed(self, led, recorder):
        install(led, recorder, "a AND b", Context.RECENT)
        raise_sequence(led, ["a", "b", "b"])
        # The retained `a` pairs again with the newer `b`.
        assert recorder.count == 2

    def test_recent_is_order_insensitive(self, led, recorder):
        install(led, recorder, "a AND b", Context.RECENT)
        raise_sequence(led, ["b", "a"])
        assert recorder.count == 1

    def test_chronicle_pairs_fifo_and_consumes(self, led, recorder):
        install(led, recorder, "a AND b", Context.CHRONICLE)
        raise_sequence(led, ["a", "a", "b", "b", "b"])
        # Two pairs (oldest-first); the third b has no partner.
        assert recorder.count == 2
        first = recorder.occurrences[0]
        assert first.constituents[0].time == 1.0  # oldest a

    def test_continuous_one_per_open_initiator(self, led, recorder):
        install(led, recorder, "a AND b", Context.CONTINUOUS)
        raise_sequence(led, ["a", "a", "a", "b"])
        assert recorder.count == 3

    def test_continuous_terminator_consumed(self, led, recorder):
        install(led, recorder, "a AND b", Context.CONTINUOUS)
        raise_sequence(led, ["a", "b", "b"])
        # Second b finds no pending a.
        assert recorder.count == 1

    def test_cumulative_accumulates_everything_once(self, led, recorder):
        install(led, recorder, "a AND b", Context.CUMULATIVE)
        raise_sequence(led, ["a", "a", "a", "b"])
        assert recorder.constituents == [["a", "a", "a", "b"]]

    def test_cumulative_resets_after_firing(self, led, recorder):
        install(led, recorder, "a AND b", Context.CUMULATIVE)
        raise_sequence(led, ["a", "b", "a", "b"])
        assert recorder.constituents == [["a", "b"], ["a", "b"]]


class TestSeq:
    def test_order_matters(self, led, recorder):
        install(led, recorder, "a SEQ b", Context.RECENT)
        raise_sequence(led, ["b", "a"])
        assert recorder.count == 0

    def test_recent(self, led, recorder):
        install(led, recorder, "a SEQ b", Context.RECENT)
        raise_sequence(led, ["a", "a", "b", "b"])
        # Latest a pairs with each b (initiator retained).
        assert recorder.count == 2
        assert all(occ.constituents[0].time == 2.0
                   for occ in recorder.occurrences)

    def test_chronicle(self, led, recorder):
        install(led, recorder, "a SEQ b", Context.CHRONICLE)
        raise_sequence(led, ["a", "a", "b", "b", "b"])
        assert recorder.count == 2
        assert recorder.occurrences[0].constituents[0].time == 1.0
        assert recorder.occurrences[1].constituents[0].time == 2.0

    def test_continuous(self, led, recorder):
        install(led, recorder, "a SEQ b", Context.CONTINUOUS)
        raise_sequence(led, ["a", "a", "b", "b"])
        # First b terminates both open a-windows; second b finds none.
        assert recorder.count == 2

    def test_cumulative(self, led, recorder):
        install(led, recorder, "a SEQ b", Context.CUMULATIVE)
        raise_sequence(led, ["a", "a", "b"])
        assert recorder.constituents == [["a", "a", "b"]]

    def test_simultaneous_raises_are_ordered_by_sequence(self, led, recorder):
        install(led, recorder, "a SEQ b", Context.RECENT)
        # Same clock reading: the global sequence number breaks the tie,
        # so a-then-b still counts as a sequence.
        led.raise_event("a")
        led.raise_event("b")
        assert recorder.count == 1


class TestNot:
    def test_fires_without_middle(self, led, recorder):
        install(led, recorder, "NOT(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "c"])
        assert recorder.constituents == [["a", "c"]]

    def test_middle_cancels(self, led, recorder):
        install(led, recorder, "NOT(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "b", "c"])
        assert recorder.count == 0

    def test_new_initiator_after_cancel(self, led, recorder):
        install(led, recorder, "NOT(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "b", "a", "c"])
        assert recorder.count == 1

    def test_chronicle_consumes_initiator(self, led, recorder):
        install(led, recorder, "NOT(a, b, c)", Context.CHRONICLE)
        raise_sequence(led, ["a", "c", "c"])
        assert recorder.count == 1

    def test_continuous_fires_per_open_window(self, led, recorder):
        install(led, recorder, "NOT(a, b, c)", Context.CONTINUOUS)
        raise_sequence(led, ["a", "a", "c"])
        assert recorder.count == 2

    def test_middle_only_kills_started_windows(self, led, recorder):
        install(led, recorder, "NOT(a, b, c)", Context.CHRONICLE)
        raise_sequence(led, ["b", "a", "c"])
        # b before a does not poison the later window.
        assert recorder.count == 1


class TestAperiodic:
    def test_fires_per_middle_within_window(self, led, recorder):
        install(led, recorder, "A(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "b", "b", "c", "b"])
        # Two b's inside the window; the b after c is outside.
        assert recorder.count == 2

    def test_no_fire_before_initiator(self, led, recorder):
        install(led, recorder, "A(a, b, c)", Context.RECENT)
        raise_sequence(led, ["b", "a", "b"])
        assert recorder.count == 1

    def test_terminator_does_not_signal(self, led, recorder):
        install(led, recorder, "A(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "c"])
        assert recorder.count == 0

    def test_continuous_pairs_every_open_window(self, led, recorder):
        install(led, recorder, "A(a, b, c)", Context.CONTINUOUS)
        raise_sequence(led, ["a", "a", "b"])
        assert recorder.count == 2

    def test_occurrence_carries_initiator_and_middle(self, led, recorder):
        install(led, recorder, "A(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "b"])
        assert recorder.constituents == [["a", "b"]]


class TestAperiodicStar:
    def test_accumulates_and_fires_at_terminator(self, led, recorder):
        install(led, recorder, "A*(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "b", "b", "b", "c"])
        assert recorder.constituents == [["a", "b", "b", "b", "c"]]

    def test_fires_with_empty_collection(self, led, recorder):
        install(led, recorder, "A*(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "c"])
        assert recorder.constituents == [["a", "c"]]

    def test_window_closes_after_terminator(self, led, recorder):
        install(led, recorder, "A*(a, b, c)", Context.RECENT)
        raise_sequence(led, ["a", "b", "c", "b", "c"])
        assert recorder.count == 1

    def test_chronicle_windows_fifo(self, led, recorder):
        install(led, recorder, "A*(a, b, c)", Context.CHRONICLE)
        raise_sequence(led, ["a", "b", "a", "c", "c"])
        assert recorder.count == 2
        # First firing closes the older window (which saw the b).
        assert recorder.constituents[0] == ["a", "b", "c"]
        assert recorder.constituents[1] == ["a", "b", "c"] or \
            recorder.constituents[1] == ["a", "c"]

    def test_cumulative_merges_windows(self, led, recorder):
        install(led, recorder, "A*(a, b, c)", Context.CUMULATIVE)
        raise_sequence(led, ["a", "a", "b", "c"])
        assert recorder.count == 1


class TestComposition:
    def test_nested_operators(self, led, recorder):
        install(led, recorder, "(a SEQ b) AND c", Context.CHRONICLE)
        raise_sequence(led, ["a", "c", "b"])
        assert recorder.constituents == [["a", "c", "b"]]

    def test_reuse_of_named_composite(self, led, recorder):
        led.define_composite("ab", "a AND b")
        led.define_composite("abc", "ab SEQ c")
        led.add_rule("r", "abc", action=recorder, context=Context.CHRONICLE)
        raise_sequence(led, ["a", "b", "c"])
        assert recorder.constituents == [["a", "b", "c"]]

    def test_same_event_both_sides(self, led, recorder):
        install(led, recorder, "a SEQ a", Context.CHRONICLE)
        raise_sequence(led, ["a", "a"])
        assert recorder.count >= 1

    def test_shared_constituent_two_composites(self, led):
        left, right = Recorder(), Recorder()
        led.define_composite("X1", "a AND b")
        led.define_composite("X2", "a AND c")
        led.add_rule("r1", "X1", action=left, context=Context.RECENT)
        led.add_rule("r2", "X2", action=right, context=Context.RECENT)
        raise_sequence(led, ["a", "b", "c"])
        assert left.count == 1
        assert right.count == 1

    def test_or_of_sequences(self, led, recorder):
        install(led, recorder, "(a SEQ b) OR (c SEQ d)", Context.CHRONICLE)
        raise_sequence(led, ["c", "a", "d", "b"])
        assert recorder.constituents == [["c", "d"], ["a", "b"]]
