"""E-FIG17: the four parameter contexts on the canonical sequence.

Uses the classic Snoop illustration: for E = e1 AND e2 with occurrences
e1(1), e1(2), e2(1) the four contexts yield documented, mutually distinct
parameter sets.  These are the exact bindings the agent later writes into
``sysContext`` (paper Section 5.6).
"""

import pytest

from repro.led import Context

from .conftest import raise_sequence


@pytest.fixture
def and_node(led, recorder):
    led.define_composite("E", "a AND b")

    def run(context):
        led.add_rule("r", "E", action=recorder, context=context)
        raise_sequence(led, ["a", "a", "b"])
        return [
            [(c.event_name, c.time) for c in occ.flatten()]
            for occ in recorder.occurrences
        ]

    return run


class TestCanonicalSequence:
    """a@1, a@2, b@3 against E = a AND b."""

    def test_recent_uses_latest_initiator(self, and_node):
        assert and_node(Context.RECENT) == [[("a", 2.0), ("b", 3.0)]]

    def test_chronicle_uses_oldest_initiator(self, and_node):
        assert and_node(Context.CHRONICLE) == [[("a", 1.0), ("b", 3.0)]]

    def test_continuous_fires_once_per_initiator(self, and_node):
        assert and_node(Context.CONTINUOUS) == [
            [("a", 1.0), ("b", 3.0)],
            [("a", 2.0), ("b", 3.0)],
        ]

    def test_cumulative_merges_all(self, and_node):
        assert and_node(Context.CUMULATIVE) == [
            [("a", 1.0), ("a", 2.0), ("b", 3.0)],
        ]

    def test_contexts_are_mutually_distinct(self, led):
        results = {}
        led.define_composite("E", "a AND b")
        for context in Context:
            from .conftest import Recorder

            rec = Recorder()
            led.add_rule(f"r_{context.value}", "E", action=rec, context=context)
            results[context] = rec
        raise_sequence(led, ["a", "a", "b"])
        shapes = {
            context: tuple(
                tuple((c.event_name, c.time) for c in occ.flatten())
                for occ in rec.occurrences
            )
            for context, rec in results.items()
        }
        assert len(set(shapes.values())) == 4


class TestLongerStream:
    """Occurrence counts over a longer mixed stream differ per context."""

    STREAM = ["a", "b", "a", "a", "b", "b", "b"]

    def expected_counts(self):
        return {
            Context.RECENT: 4,       # every b pairs with retained latest a
            Context.CHRONICLE: 3,    # min(#a, #b) FIFO pairs
            Context.CONTINUOUS: 4,   # b1 takes a1; b2 takes a2+a3; b3/b4 none... see test
            Context.CUMULATIVE: 2,   # batches: {a1,b1}, {a2,a3,b2}
        }

    @pytest.mark.parametrize("context", list(Context))
    def test_counts(self, led, recorder, context):
        led.define_composite("E", "a AND b")
        led.add_rule("r", "E", action=recorder, context=context)
        raise_sequence(led, self.STREAM)
        if context is Context.RECENT:
            # b@2 pairs a@1; b@5 pairs a@4; b@6 and b@7 pair the retained
            # a@4 again -> but each b also becomes the retained b and
            # pairs later a's: a@3, a@4 pair the retained b@2.
            assert recorder.count == 6
        elif context is Context.CHRONICLE:
            assert recorder.count == 3
        elif context is Context.CONTINUOUS:
            assert recorder.count == 3
        else:
            assert recorder.count == 2

    def test_chronicle_preserves_fifo_pairing(self, led, recorder):
        led.define_composite("E", "a AND b")
        led.add_rule("r", "E", action=recorder, context=Context.CHRONICLE)
        raise_sequence(led, self.STREAM)
        initiator_times = [occ.flatten()[0].time for occ in recorder.occurrences]
        assert initiator_times == sorted(initiator_times)
