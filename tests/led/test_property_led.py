"""Property-based invariants of the event detector (hypothesis)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.led import Context, LocalEventDetector, ManualClock

events = st.lists(st.sampled_from(["a", "b", "c"]), min_size=0, max_size=30)

_quick = settings(max_examples=60, deadline=None)


def build(expression, context):
    led = LocalEventDetector(clock=ManualClock())
    for name in "abc":
        led.define_primitive(name)
    led.define_composite("X", expression)
    hits = []
    led.add_rule("r", "X", action=lambda o: hits.append(o), context=context)
    return led, hits


def play(led, stream):
    for name in stream:
        led.clock.advance(1)
        led.raise_event(name)


class TestStructuralInvariants:
    @_quick
    @given(stream=events)
    def test_or_count_equals_constituent_count(self, stream):
        led, hits = build("a OR b", Context.RECENT)
        play(led, stream)
        assert len(hits) == sum(1 for name in stream if name in "ab")

    @_quick
    @given(stream=events)
    def test_seq_constituents_are_ordered(self, stream):
        for context in Context:
            led, hits = build("a SEQ b", context)
            play(led, stream)
            for occ in hits:
                parts = occ.flatten()
                assert parts[0].end < parts[-1].start or len(parts) > 2
                # strictly: every a precedes the terminating b
                terminator = parts[-1]
                for part in parts[:-1]:
                    assert part.end < terminator.start

    @_quick
    @given(stream=events)
    def test_and_occurrence_has_both_sides(self, stream):
        for context in (Context.RECENT, Context.CHRONICLE, Context.CONTINUOUS):
            led, hits = build("a AND b", context)
            play(led, stream)
            for occ in hits:
                names = set(occ.constituent_names())
                assert names == {"a", "b"}

    @_quick
    @given(stream=events)
    def test_chronicle_never_exceeds_min_side_count(self, stream):
        led, hits = build("a AND b", Context.CHRONICLE)
        play(led, stream)
        a_count = sum(1 for name in stream if name == "a")
        b_count = sum(1 for name in stream if name == "b")
        assert len(hits) == min(a_count, b_count)

    @_quick
    @given(stream=events)
    def test_chronicle_consumption_is_disjoint(self, stream):
        # No primitive occurrence participates in two chronicle detections.
        led, hits = build("a AND b", Context.CHRONICLE)
        play(led, stream)
        seen: set[tuple[float, int]] = set()
        for occ in hits:
            for part in occ.flatten():
                assert part.end not in seen
                seen.add(part.end)

    @_quick
    @given(stream=events)
    def test_cumulative_fires_at_most_half(self, stream):
        led, hits = build("a AND b", Context.CUMULATIVE)
        play(led, stream)
        pair_bound = min(
            sum(1 for name in stream if name == "a"),
            sum(1 for name in stream if name == "b"),
        )
        assert len(hits) <= pair_bound

    @_quick
    @given(stream=events)
    def test_cumulative_consumes_everything_available(self, stream):
        led, hits = build("a AND b", Context.CUMULATIVE)
        play(led, stream)
        total_consumed = sum(len(occ.flatten()) for occ in hits)
        relevant = sum(1 for name in stream if name in "ab")
        assert total_consumed <= relevant

    @_quick
    @given(stream=events)
    def test_not_windows_never_contain_middle(self, stream):
        led, hits = build("NOT(a, b, c)", Context.CHRONICLE)
        play(led, stream)
        # Reconstruct: for each firing [a@t1, c@t2] there is no b between.
        b_times = [
            index + 1.0
            for index, name in enumerate(stream) if name == "b"
        ]
        for occ in hits:
            start = occ.flatten()[0].time
            end = occ.flatten()[-1].time
            assert not any(start < t < end for t in b_times)

    @_quick
    @given(stream=events)
    def test_detection_time_is_terminator_time(self, stream):
        for expr in ("a AND b", "a SEQ b"):
            led, hits = build(expr, Context.RECENT)
            play(led, stream)
            for occ in hits:
                assert occ.time == max(p.time for p in occ.flatten())

    @_quick
    @given(stream=events)
    def test_history_matches_rule_hits(self, stream):
        led, hits = build("a AND b", Context.RECENT)
        play(led, stream)
        assert len(led.history) == len(hits)


class TestDeterminism:
    @_quick
    @given(stream=events)
    def test_same_stream_same_result(self, stream):
        results = []
        for _ in range(2):
            led, hits = build("(a SEQ b) OR c", Context.CHRONICLE)
            play(led, stream)
            results.append([occ.constituent_names() for occ in hits])
        assert results[0] == results[1]
