"""LED test helpers: a detector with primitives and a firing recorder."""

from __future__ import annotations

import pytest

from repro.led import LocalEventDetector, ManualClock


class Recorder:
    """Collects rule firings as (constituent-name lists) for assertions."""

    def __init__(self):
        self.occurrences = []

    def __call__(self, occurrence):
        self.occurrences.append(occurrence)

    @property
    def constituents(self) -> list[list[str]]:
        return [occ.constituent_names() for occ in self.occurrences]

    @property
    def count(self) -> int:
        return len(self.occurrences)


@pytest.fixture
def led():
    """Fresh detector with a manual clock and primitives a..f defined."""
    detector = LocalEventDetector(clock=ManualClock())
    for name in "abcdef":
        detector.define_primitive(name)
    return detector


@pytest.fixture
def recorder():
    return Recorder()


def raise_sequence(led, names):
    """Raise each named event one second apart (deterministic ordering)."""
    for name in names:
        led.clock.advance(1)
        led.raise_event(name)
