"""Detector registry: event definition, reuse, dropping, resets."""

import pytest

from repro.led import Context, LocalEventDetector
from repro.led.errors import EventDefinitionError

from .conftest import Recorder, raise_sequence


class TestEventDefinition:
    def test_define_primitive(self, led):
        assert led.has_event("a")

    def test_duplicate_primitive(self, led):
        with pytest.raises(EventDefinitionError):
            led.define_primitive("a")

    def test_define_composite_from_text(self, led):
        led.define_composite("ab", "a AND b")
        assert led.has_event("ab")

    def test_define_composite_from_ast(self, led):
        from repro.snoop import parse_event_expression

        led.define_composite("ab", parse_event_expression("a OR b"))
        assert led.has_event("ab")

    def test_unknown_constituent_rejected(self, led):
        with pytest.raises(EventDefinitionError):
            led.define_composite("bad", "a AND nosuch")

    def test_bare_name_is_not_a_composite(self, led):
        # Name checking (Section 5.3): an alias is not a new event.
        with pytest.raises(EventDefinitionError):
            led.define_composite("alias", "a")

    def test_duplicate_composite(self, led):
        led.define_composite("ab", "a AND b")
        with pytest.raises(EventDefinitionError):
            led.define_composite("ab", "a OR b")

    def test_raise_composite_rejected(self, led):
        led.define_composite("ab", "a AND b")
        with pytest.raises(EventDefinitionError):
            led.raise_event("ab")

    def test_raise_unknown_event(self, led):
        with pytest.raises(EventDefinitionError):
            led.raise_event("ghost")


class TestEventReuse:
    def test_composite_as_constituent(self, led, recorder):
        led.define_composite("ab", "a AND b")
        led.define_composite("abc", "ab AND c")
        led.add_rule("r", "abc", action=recorder, context=Context.RECENT)
        raise_sequence(led, ["a", "b", "c"])
        assert recorder.count == 1

    def test_inner_event_still_usable_directly(self, led):
        inner, outer = Recorder(), Recorder()
        led.define_composite("ab", "a AND b")
        led.define_composite("abc", "ab SEQ c")
        led.add_rule("ri", "ab", action=inner, context=Context.RECENT)
        led.add_rule("ro", "abc", action=outer, context=Context.RECENT)
        raise_sequence(led, ["a", "b", "c"])
        assert inner.count == 1
        assert outer.count == 1


class TestDropEvent:
    def test_drop_unused_event(self, led):
        led.define_composite("ab", "a AND b")
        led.drop_event("ab")
        assert not led.has_event("ab")

    def test_drop_event_with_rules_refused(self, led):
        led.define_composite("ab", "a AND b")
        led.add_rule("r", "ab", action=lambda o: None)
        with pytest.raises(EventDefinitionError):
            led.drop_event("ab")

    def test_drop_event_used_by_composite_refused(self, led):
        led.define_composite("ab", "a AND b")
        led.define_composite("abc", "ab AND c")
        with pytest.raises(EventDefinitionError):
            led.drop_event("ab")

    def test_drop_stops_propagation(self, led, recorder):
        led.define_composite("ab", "a AND b")
        led.add_rule("r", "ab", action=recorder)
        led.drop_rule("r")
        led.drop_event("ab")
        raise_sequence(led, ["a", "b"])
        assert recorder.count == 0

    def test_drop_unknown_event(self, led):
        with pytest.raises(EventDefinitionError):
            led.drop_event("ghost")


class TestResets:
    def test_reset_detection_state_clears_partial_detections(self, led, recorder):
        led.define_composite("ab", "a AND b")
        led.add_rule("r", "ab", action=recorder, context=Context.CHRONICLE)
        raise_sequence(led, ["a"])
        led.reset_detection_state()
        raise_sequence(led, ["b"])
        assert recorder.count == 0

    def test_reset_clears_timers(self, led, recorder):
        led.define_composite("late", "a PLUS [5 sec]")
        led.add_rule("r", "late", action=recorder)
        led.raise_event("a")
        led.reset_detection_state()
        led.advance_time(10)
        assert recorder.count == 0

    def test_definitions_survive_reset(self, led):
        led.define_composite("ab", "a AND b")
        led.reset_detection_state()
        assert led.has_event("ab")


class TestRaiseReturnValue:
    def test_returns_synchronous_firings_only(self, led):
        led.define_composite("ab", "a AND b")
        led.add_rule("r", "ab", action=lambda o: None, context=Context.RECENT)
        assert led.raise_event("a") == []
        firings = led.raise_event("b")
        assert [f.rule_name for f in firings] == ["r"]

    def test_cascading_rule_raises_are_included(self, led):
        # A rule action that raises another primitive event.
        led.add_rule("chain", "a", action=lambda o: led.raise_event("b"))
        led.add_rule("leaf", "b", action=lambda o: None)
        firings = led.raise_event("a")
        assert {f.rule_name for f in firings} == {"chain", "leaf"}

    def test_timestamp_override(self, led):
        led.define_composite("ab", "a SEQ b")
        hits = []
        led.add_rule("r", "ab", action=lambda o: hits.append(o))
        led.raise_event("a", at=5.0)
        led.raise_event("b", at=2.0)   # earlier time, later seq
        # SEQ compares (time, seq): b starts before a ends, so no fire.
        assert hits == []
