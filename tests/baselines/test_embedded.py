"""The Embedded Situation Check baseline and its structural weaknesses."""

import pytest

from repro.baselines import EmbeddedSituationClient
from repro.sqlengine import connect


@pytest.fixture
def client(server, stock):
    return EmbeddedSituationClient(
        connect(server, user="sharma", database="sentineldb"))


class TestChecks:
    def test_check_fires_when_condition_holds(self, client):
        alerts = []
        client.add_check(
            "cheap", "select symbol from stock where price < 10",
            handler=alerts.append)
        client.execute("insert stock values ('PENNY', 1.0, 1)")
        assert alerts == [[["PENNY"]]]

    def test_check_silent_when_condition_fails(self, client):
        alerts = []
        client.add_check(
            "cheap", "select symbol from stock where price < 10",
            handler=alerts.append)
        client.execute("insert stock values ('RICH', 500.0, 1)")
        assert alerts == []

    def test_every_statement_pays_for_every_check(self, client):
        client.add_check("c1", "select * from stock where 1 = 2",
                         handler=lambda rows: None)
        client.add_check("c2", "select * from stock where 1 = 2",
                         handler=lambda rows: None)
        for _ in range(5):
            client.execute("select 1")
        assert client.statements_executed == 5
        assert client.check_queries_issued == 10

    def test_fired_and_evaluation_counters(self, client):
        check = client.add_check(
            "always", "select 1", handler=lambda rows: None)
        client.execute("select 2")
        client.execute("select 3")
        assert check.evaluations == 2
        assert check.fired == 2


class TestStructuralWeakness:
    def test_other_clients_changes_are_missed(self, server, client, stock):
        """The paper's core criticism: situations caused by other
        applications go unnoticed until *this* client acts."""
        alerts = []
        client.add_check(
            "cheap", "select symbol from stock where price < 10",
            handler=alerts.append)
        stock.execute("insert stock values ('PENNY', 1.0, 1)")
        # The other client's insert satisfied the condition, but nothing
        # fired because the checking client issued no statement.
        assert alerts == []
        # Only when this client does something does the alert appear.
        client.execute("select 1")
        assert len(alerts) == 1
