"""The native-trigger-only toolkit (Section 2.2 configuration)."""

import pytest

from repro.baselines import NativeTriggerToolkit


@pytest.fixture
def toolkit(server, stock):
    return NativeTriggerToolkit(server, database="sentineldb", user="sharma")


class TestToolkit:
    def test_create_and_fire(self, toolkit):
        toolkit.create_trigger("tr", "stock", "insert", "print 'fired'")
        assert toolkit.execute("insert stock values ('A', 1, 1)").messages == \
            ["fired"]

    def test_silent_displacement_observable(self, toolkit):
        toolkit.create_trigger("tr1", "stock", "insert", "print 'one'")
        result = toolkit.create_trigger("tr2", "stock", "insert", "print 'two'")
        assert result.messages == []  # no warning to the client
        assert toolkit.displaced_by_last_create() == ["sharma.tr1"]

    def test_drop_trigger(self, toolkit):
        toolkit.create_trigger("tr", "stock", "insert", "print 'fired'")
        toolkit.drop_trigger("tr")
        assert toolkit.execute("insert stock values ('A', 1, 1)").messages == []

    def test_composite_requires_manual_state_tables(self, toolkit):
        """What the paper's users had to do before the agent: hand-rolled
        correlation state in trigger bodies."""
        toolkit.execute("create table seen_insert (n int)")
        toolkit.execute("create table alerts (msg varchar(40))")
        toolkit.create_trigger(
            "t_ins", "stock", "insert", "insert seen_insert values (1)")
        toolkit.create_trigger(
            "t_del", "stock", "delete",
            "if exists (select * from seen_insert) "
            "insert alerts values ('insert-then-delete')")
        toolkit.execute("insert stock values ('A', 1, 1)")
        toolkit.execute("delete stock")
        assert toolkit.execute("select * from alerts").last.rows == [
            ["insert-then-delete"]]
