"""The Polling baseline: correctness and its inherent costs."""

import pytest

from repro.baselines import PollingMonitor


@pytest.fixture
def monitor(server, stock):
    stock.execute("insert stock values ('SEED', 1.0, 1)")
    poller = PollingMonitor(
        server, ["stock"], database="sentineldb", user="sharma")
    poller.prime()
    return poller


class TestDetection:
    def test_detects_insert(self, monitor, stock):
        stock.execute("insert stock values ('NEW', 2.0, 2)")
        changes = monitor.poll()
        assert [(c.kind, c.row[0]) for c in changes] == [("insert", "NEW")]

    def test_detects_delete(self, monitor, stock):
        stock.execute("delete stock where symbol = 'SEED'")
        changes = monitor.poll()
        assert [(c.kind, c.row[0]) for c in changes] == [("delete", "SEED")]

    def test_update_appears_as_delete_plus_insert(self, monitor, stock):
        stock.execute("update stock set price = 9.0 where symbol = 'SEED'")
        kinds = sorted(c.kind for c in monitor.poll())
        assert kinds == ["delete", "insert"]

    def test_idle_poll_reports_nothing(self, monitor):
        assert monitor.poll() == []

    def test_changes_between_polls_are_batched(self, monitor, stock):
        stock.execute("insert stock values ('A', 1, 1)")
        stock.execute("insert stock values ('B', 2, 2)")
        assert len(monitor.poll()) == 2

    def test_insert_then_delete_between_polls_is_invisible(self, monitor, stock):
        # The fundamental polling blind spot: transient states are lost.
        stock.execute("insert stock values ('GHOST', 1, 1)")
        stock.execute("delete stock where symbol = 'GHOST'")
        assert monitor.poll() == []

    def test_duplicate_rows_counted(self, monitor, stock):
        stock.execute("insert stock values ('D', 1, 1), ('D', 1, 1)")
        assert len(monitor.poll()) == 2

    def test_callback_invoked(self, server, stock):
        seen = []
        poller = PollingMonitor(
            server, ["stock"], database="sentineldb", user="sharma",
            on_change=seen.append)
        poller.prime()
        stock.execute("insert stock values ('X', 1, 1)")
        poller.poll()
        assert len(seen) == 1


class TestCosts:
    def test_idle_polls_still_scan_full_table(self, monitor, stock):
        for _ in range(100):
            stock.execute("insert stock values ('R', 1, 1)")
        monitor.poll()
        scanned_before = monitor.rows_scanned
        for _ in range(5):
            monitor.poll()  # nothing changed
        # Five idle polls scanned 5 * 101 rows.
        assert monitor.rows_scanned - scanned_before == 5 * 101

    def test_statistics_accumulate(self, monitor, stock):
        stock.execute("insert stock values ('A', 1, 1)")
        monitor.poll()
        monitor.poll()
        assert monitor.polls == 2
        assert monitor.changes_detected == 1

    def test_multiple_tables(self, server, stock):
        stock.execute("create table other (a int)")
        poller = PollingMonitor(
            server, ["stock", "other"], database="sentineldb", user="sharma")
        poller.prime()
        stock.execute("insert other values (1)")
        changes = poller.poll()
        assert [(c.table, c.kind) for c in changes] == [("other", "insert")]
