"""E-EXT2: the Global Event Detector across two site agents."""

import pytest

from repro.agent import EcaAgent
from repro.errors import ConfigurationError
from repro.ged import GlobalEventDetector
from repro.sqlengine import SqlServer


@pytest.fixture
def sites():
    """Two independent servers+agents (e.g. two branch databases)."""
    stack = []
    for name in ("east", "west"):
        server = SqlServer(default_database=f"{name}db")
        agent = EcaAgent(server)
        conn = agent.connect(user="ops", database=f"{name}db")
        conn.execute("create table trades (symbol varchar(10), qty int)")
        conn.execute(
            "create trigger t_trade on trades for insert event newTrade "
            "as print 'trade'")
        stack.append((server, agent, conn))
    yield stack
    for _server, agent, _conn in stack:
        agent.close()


@pytest.fixture
def ged(sites):
    detector = GlobalEventDetector()
    detector.register_site("east", sites[0][1])
    detector.register_site("west", sites[1][1])
    return detector


class TestImports:
    def test_import_defines_global_primitive(self, ged):
        name = ged.import_event("east", "eastdb.ops.newTrade")
        assert name == "eastdb.ops.newTrade::east"
        assert ged.led.has_event(name)

    def test_import_is_idempotent(self, ged):
        first = ged.import_event("east", "eastdb.ops.newTrade")
        second = ged.import_event("east", "eastdb.ops.newTrade")
        assert first == second

    def test_unknown_site_rejected(self, ged):
        with pytest.raises(ConfigurationError):
            ged.import_event("north", "x.y.z")

    def test_duplicate_site_rejected(self, ged, sites):
        with pytest.raises(ConfigurationError):
            ged.register_site("east", sites[0][1])


class TestGlobalDetection:
    def test_cross_site_and(self, ged, sites):
        east = ged.import_event("east", "eastdb.ops.newTrade")
        west = ged.import_event("west", "westdb.ops.newTrade")
        ged.define_global_event("bothCoasts", f"{east} AND {west}")
        hits = []
        ged.add_global_rule("gr", "bothCoasts",
                            action=lambda occ: hits.append(occ))
        sites[0][2].execute("insert trades values ('IBM', 10)")
        assert hits == []
        sites[1][2].execute("insert trades values ('IBM', 20)")
        assert len(hits) == 1
        assert set(hits[0].constituent_names()) == {east, west}

    def test_cross_site_sequence_order_matters(self, ged, sites):
        east = ged.import_event("east", "eastdb.ops.newTrade")
        west = ged.import_event("west", "westdb.ops.newTrade")
        ged.define_global_event("westThenEast", f"{west} SEQ {east}")
        hits = []
        ged.add_global_rule("gr", "westThenEast",
                            action=lambda occ: hits.append(occ))
        sites[0][2].execute("insert trades values ('A', 1)")  # east first
        sites[1][2].execute("insert trades values ('B', 2)")  # then west
        assert hits == []
        sites[0][2].execute("insert trades values ('C', 3)")  # east again
        assert len(hits) == 1

    def test_site_params_forwarded(self, ged, sites):
        east = ged.import_event("east", "eastdb.ops.newTrade")
        ged.define_global_event("justEast", f"{east} OR {east}")
        seen = []
        ged.add_global_rule(
            "gr", "justEast",
            action=lambda occ: seen.append(occ.flatten()[0].params))
        sites[0][2].execute("insert trades values ('IBM', 10)")
        assert seen
        assert seen[0]["site"] == "east"
        assert seen[0]["vNo"] == 1

    def test_global_sql_action_runs_at_target_site(self, ged, sites):
        east = ged.import_event("east", "eastdb.ops.newTrade")
        west = ged.import_event("west", "westdb.ops.newTrade")
        ged.define_global_event("both", f"{east} AND {west}")
        sites[1][2].execute("create table dbo.alerts (msg varchar(30))")
        ged.add_global_rule(
            "gr", "both", sql_site="west",
            sql="insert westdb.dbo.alerts values ('cross-site event')")
        sites[0][2].execute("insert trades values ('A', 1)")
        sites[1][2].execute("insert trades values ('B', 2)")
        rows = sites[1][2].execute("select * from dbo.alerts").last.rows
        assert rows == [["cross-site event"]]
        assert len(ged.firings) == 1

    def test_rule_requires_action_or_sql(self, ged, sites):
        east = ged.import_event("east", "eastdb.ops.newTrade")
        ged.define_global_event("ge", f"{east} OR {east}")
        with pytest.raises(ConfigurationError):
            ged.add_global_rule("bad", "ge")
