"""Chaos: a site dies mid-way through a half-detected cross-site composite.

The recovery contract (docs/DISTRIBUTED.md): constituents are journaled
at the router, a recovering site replays only its own partition on top
of ``agent.recover()``, and a half-detected composite either completes
after recovery (non-IMMEDIATE coupling) or is cleanly discarded
(IMMEDIATE-only — the constituents' transactional context died with the
site) — and in no interleaving does a rule fire twice.
"""

from types import SimpleNamespace

import pytest

from repro.agent import EcaAgent
from repro.errors import ConfigurationError
from repro.ged import ShardedGed, SiteRecovery
from repro.led import Context, Coupling, LocalEventDetector
from repro.sqlengine import SqlServer


def make_site(*events):
    led = LocalEventDetector()
    for event in events:
        led.define_primitive(event)
    return SimpleNamespace(led=led, trace=None,
                           recover=lambda: {"stand_in": True})


def build(coupling, *, owner="omega"):
    """Three sites and a cross-site SEQ owned by a dedicated third site
    (so the producers survive when the owner dies)."""
    ged = ShardedGed()
    a, b, c = make_site("e1"), make_site("e2"), make_site()
    ged.add_site("alpha", a)
    ged.add_site("beta", b)
    ged.add_site("omega", c)
    qa = ged.import_event("alpha", "e1")
    qb = ged.import_event("beta", "e2")
    ged.define_global_event("G", f"({qa} SEQ {qb})", owner=owner)
    ged.add_global_rule("r", "G", context=Context.CHRONICLE,
                        coupling=coupling)
    return ged, a, b


class TestHalfDetected:
    def test_deferred_completes_exactly_once_after_recovery(self):
        ged, a, b = build(Coupling.DEFERRED)
        a.led.raise_event("e1", {"vNo": 1})
        ged.fail_site("omega")  # half-detected state lost with the shard
        report = ged.recover_site("omega")
        assert report.replayed == 1
        assert report.rearmed == ("G",)
        assert report.discarded == ()
        b.led.raise_event("e2", {"vNo": 1})
        fired = ged.flush_deferred()
        assert [f.rule_name for f in fired] == ["r"]
        # Never twice: both constituents consumed, nothing re-queued.
        assert ged.flush_deferred() == []
        assert len(ged.firings) == 1

    def test_immediate_only_is_cleanly_discarded(self):
        ged, a, b = build(Coupling.IMMEDIATE)
        a.led.raise_event("e1", {"vNo": 1})
        ged.fail_site("omega")
        report = ged.recover_site("omega")
        assert isinstance(report, SiteRecovery)
        assert report.discarded == ("G",)
        assert report.rearmed == ()
        # The late second constituent must NOT complete the composite:
        # the first constituent's transaction died with the site.
        b.led.raise_event("e2", {"vNo": 1})
        assert ged.firings == []
        # ... and a fresh well-ordered pair detects normally again.
        a.led.raise_event("e1", {"vNo": 2})
        b.led.raise_event("e2", {"vNo": 2})
        assert len(ged.firings) == 1

    def test_completed_composite_never_double_fires(self):
        ged, a, b = build(Coupling.IMMEDIATE)
        a.led.raise_event("e1", {"vNo": 1})
        b.led.raise_event("e2", {"vNo": 1})
        assert len(ged.firings) == 1
        ged.fail_site("omega")
        ged.recover_site("omega")  # replay re-detects the pair
        assert len(ged.firings) == 1
        assert ged.suppressed + ged.deduped >= 1

    def test_constituents_arriving_while_down_are_journaled(self):
        ged, a, b = build(Coupling.DEFERRED)
        ged.fail_site("omega")
        a.led.raise_event("e1", {"vNo": 1})
        b.led.raise_event("e2", {"vNo": 1})
        assert ged.skipped_down == 2
        assert [e.gseq for e in ged.journal] == [1, 2]
        report = ged.recover_site("omega")
        assert report.replayed == 2
        fired = ged.flush_deferred()
        assert [f.rule_name for f in fired] == ["r"]
        assert len(ged.firings) == 1

    def test_deferred_detection_completed_while_down(self):
        """Both halves consumed, site dies before the flush: the replay
        re-queues the detection and the next flush fires it once."""
        ged, a, b = build(Coupling.DEFERRED)
        a.led.raise_event("e1", {"vNo": 1})
        b.led.raise_event("e2", {"vNo": 1})
        ged.fail_site("omega")  # queued DEFERRED firing lost
        ged.recover_site("omega")
        fired = ged.flush_deferred()
        assert [f.rule_name for f in fired] == ["r"]
        assert ged.flush_deferred() == []
        assert len(ged.firings) == 1


class TestPartitionScopedRecovery:
    def test_replay_touches_only_the_failed_sites_partition(self):
        ged = ShardedGed()
        a, b = make_site("e1"), make_site("e2")
        ged.add_site("alpha", a)
        ged.add_site("beta", b)
        qa = ged.import_event("alpha", "e1")
        qb = ged.import_event("beta", "e2")
        ged.define_global_event("GA", f"({qa} AND {qb})", owner="alpha")
        ged.define_global_event("GB", f"({qa} SEQ {qb})", owner="beta")
        ged.add_global_rule("ra", "GA", context=Context.RECENT,
                            coupling=Coupling.DEFERRED)
        ged.add_global_rule("rb", "GB", context=Context.RECENT,
                            coupling=Coupling.DEFERRED)
        a.led.raise_event("e1", {"vNo": 1})
        b.led.raise_event("e2", {"vNo": 1})
        ged.flush_deferred()
        baseline = len(ged.firings)
        ged.fail_site("alpha")
        report = ged.recover_site("alpha")
        # Only alpha's composites replayed; beta's shard was untouched.
        assert report.site == "alpha"
        assert report.replayed == 2
        assert ged.replayed_by_site["beta"] == 0
        # Replay re-detected GA but the flush deduplicates it.
        assert ged.flush_deferred() == []
        assert len(ged.firings) == baseline

    def test_agent_recover_composes(self):
        """A real agent's own crash repair runs before the replay."""
        server = SqlServer(default_database="ops")
        agent = EcaAgent(server, channel="sync")
        conn = agent.connect(user="sre", database="ops")
        conn.execute("create table t (x int)")
        conn.execute("create trigger tr on t for insert event rowIn "
                     "as print 'in'")
        other = make_site("e2")
        ged = ShardedGed()
        try:
            ged.add_site("real", agent)
            ged.add_site("other", other)
            qa = ged.import_event("real", "ops.sre.rowIn")
            qb = ged.import_event("other", "e2")
            ged.define_global_event("G", f"({qa} SEQ {qb})", owner="real")
            ged.add_global_rule("r", "G", context=Context.RECENT,
                                coupling=Coupling.DEFERRED)
            conn.execute("insert t values (1)")
            ged.fail_site("real")
            report = ged.recover_site("real")
            assert isinstance(report.agent_repair, dict)
            other.led.raise_event("e2", {"vNo": 1})
            assert [f.rule_name for f in ged.flush_deferred()] == ["r"]
        finally:
            ged.close()
            agent.close()


class TestFailureEdges:
    def test_transport_drops_a_down_sites_datagrams(self):
        """A crashed site's in-flight packets vanish: counted as
        rejected, never journaled (they are not part of history)."""
        ged, a, _b = build(Coupling.IMMEDIATE)
        ged.fail_site("alpha")
        a.led.raise_event("e1", {"vNo": 1})
        assert ged.transport.rejected == 1
        assert ged.journal == []

    def test_fail_is_idempotent_recover_requires_down(self):
        ged, _a, _b = build(Coupling.IMMEDIATE)
        ged.fail_site("omega")
        ged.fail_site("omega")
        assert ged.failures == 1
        ged.recover_site("omega")
        with pytest.raises(ConfigurationError):
            ged.recover_site("omega")

    def test_unknown_site_rejected(self):
        ged, _a, _b = build(Coupling.IMMEDIATE)
        with pytest.raises(ConfigurationError):
            ged.fail_site("nowhere")
