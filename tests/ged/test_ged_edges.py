"""GED edge cases: contexts, temporal operators, and mixed rule kinds."""

import pytest

from repro.agent import EcaAgent
from repro.ged import GlobalEventDetector
from repro.led import Context, ManualClock
from repro.sqlengine import SqlServer


@pytest.fixture
def site():
    server = SqlServer(default_database="sitedb")
    agent = EcaAgent(server)
    conn = agent.connect(user="ops", database="sitedb")
    conn.execute("create table events_t (n int)")
    conn.execute(
        "create trigger tr on events_t for insert event localEv "
        "as print 'local'")
    yield agent, conn
    agent.close()


class TestGedContexts:
    def test_chronicle_pairs_in_order(self, site):
        agent, conn = site
        ged = GlobalEventDetector()
        ged.register_site("s", agent)
        imported = ged.import_event("s", "sitedb.ops.localEv")
        ged.define_global_event("pair", f"{imported} AND {imported}")
        hits = []
        ged.add_global_rule("gr", "pair", action=hits.append,
                            context=Context.CHRONICLE)
        conn.execute("insert events_t values (1)")
        # Same event feeds both AND roles: each occurrence completes one.
        assert len(hits) >= 1

    def test_global_temporal_operator(self, site):
        agent, conn = site
        ged = GlobalEventDetector(clock=ManualClock())
        ged.register_site("s", agent)
        imported = ged.import_event("s", "sitedb.ops.localEv")
        ged.define_global_event("late", f"{imported} PLUS [60 sec]")
        hits = []
        ged.add_global_rule("gr", "late", action=hits.append)
        conn.execute("insert events_t values (1)")
        ged.led.advance_time(59)
        assert hits == []
        ged.led.advance_time(2)
        assert len(hits) == 1

    def test_local_rules_keep_firing_alongside_export(self, site):
        agent, conn = site
        ged = GlobalEventDetector()
        ged.register_site("s", agent)
        ged.import_event("s", "sitedb.ops.localEv")
        result = conn.execute("insert events_t values (1)")
        assert "local" in result.messages  # the site's own rule still runs

    def test_constituents_params_preserved_through_forwarding(self, site):
        agent, conn = site
        ged = GlobalEventDetector()
        ged.register_site("s", agent)
        imported = ged.import_event("s", "sitedb.ops.localEv")
        ged.define_global_event("g", f"{imported} OR {imported}")
        seen = []
        ged.add_global_rule(
            "gr", "g", action=lambda occ: seen.append(occ.flatten()[0].params))
        conn.execute("insert events_t values (1)")
        params = seen[0]
        assert params["table"] == "events_t"
        assert params["operation"] == "insert"
        assert "snapshot_tables" in params["constituents"][0]
