"""Property tests for the GED's consistent-hash ring.

The three contracted properties (docs/DISTRIBUTED.md):

- **total**: every key has exactly one owner for any non-empty ring;
- **deterministic**: ownership is a pure function of the membership set
  (independent of join order, process, and ``PYTHONHASHSEED``);
- **stable**: a join or leave moves at most ~K/N of K keys — the whole
  point of consistent hashing over modulo placement.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ged import DEFAULT_REPLICAS, HashRing, stable_hash


def _keys(rng: random.Random, count: int) -> list[str]:
    return [f"difftest.dbo.p{i}::s{rng.randrange(8)}" for i in range(count)]


def _ring(sites) -> HashRing:
    ring = HashRing()
    for site in sites:
        ring.add_site(site)
    return ring


def test_stable_hash_is_process_independent():
    # Pinned digests: blake2b of the key bytes, not Python's salted
    # hash().  If these move, every persisted partition map breaks.
    assert stable_hash("a") == stable_hash("a")
    assert stable_hash("a") != stable_hash("b")
    assert stable_hash("") == int.from_bytes(
        __import__("hashlib").blake2b(b"", digest_size=8).digest(), "big")


def test_empty_ring_refuses_ownership():
    ring = HashRing()
    with pytest.raises(ConfigurationError):
        ring.owner("anything")


def test_total_every_key_owned(rng):
    ring = _ring(["s0", "s1", "s2"])
    for key in _keys(rng, 200):
        assert ring.owner(key) in {"s0", "s1", "s2"}


def test_deterministic_under_join_order(rng):
    keys = _keys(rng, 150)
    sites = [f"s{i}" for i in range(5)]
    shuffled = list(sites)
    rng.shuffle(shuffled)
    a, b = _ring(sites), _ring(shuffled)
    assert a.assignment(keys) == b.assignment(keys)


def test_join_moves_at_most_k_over_n(rng):
    keys = _keys(rng, 400)
    sites = ["s0", "s1", "s2"]
    before = _ring(sites).assignment(keys)
    ring = _ring(sites)
    ring.add_site("s3")
    after = ring.assignment(keys)
    moved = sum(1 for key in keys if before[key] != after[key])
    # Expected K/N = 100 for N = 4; allow vnode variance headroom but
    # stay far below the ~300 a modulo reshard would move.
    assert moved <= len(keys) // len(ring.sites()) * 2
    # Every moved key must have moved TO the joining site.
    for key in keys:
        if before[key] != after[key]:
            assert after[key] == "s3"


def test_leave_moves_only_the_leavers_keys(rng):
    keys = _keys(rng, 400)
    sites = ["s0", "s1", "s2", "s3"]
    ring = _ring(sites)
    before = ring.assignment(keys)
    ring.remove_site("s1")
    after = ring.assignment(keys)
    for key in keys:
        if before[key] == "s1":
            assert after[key] != "s1"
        else:
            assert after[key] == before[key]


def test_pins_override_and_survive_membership_changes():
    ring = _ring(["s0", "s1"])
    ring.pin("hot-class", "s1")
    assert ring.owner("hot-class") == "s1"
    ring.add_site("s2")
    assert ring.owner("hot-class") == "s1"
    ring.remove_site("s1")  # pins to a removed site fall away
    assert ring.owner("hot-class") in {"s0", "s2"}


def test_duplicate_and_unknown_sites_refused():
    ring = _ring(["s0"])
    with pytest.raises(ConfigurationError):
        ring.add_site("s0")
    with pytest.raises(ConfigurationError):
        ring.remove_site("nope")
    with pytest.raises(ConfigurationError):
        ring.pin("k", "nope")


def test_partition_counts_cover_all_sites(rng):
    ring = _ring(["s0", "s1", "s2"])
    keys = _keys(rng, 300)
    counts = ring.partition_counts(keys)
    assert set(counts) == {"s0", "s1", "s2"}
    assert sum(counts.values()) == len(set(keys))


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(st.text(min_size=1, max_size=20), min_size=1,
                  max_size=60, unique=True),
    sites=st.lists(st.sampled_from([f"s{i}" for i in range(6)]),
                   min_size=1, max_size=6, unique=True),
)
def test_property_total_and_deterministic(keys, sites):
    a, b = _ring(sites), _ring(reversed(sites))
    for key in keys:
        owner = a.owner(key)
        assert owner in sites
        assert owner == b.owner(key)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.text(min_size=1, max_size=16), min_size=10,
                  max_size=80, unique=True),
    sites=st.lists(st.sampled_from([f"s{i}" for i in range(5)]),
                   min_size=2, max_size=5, unique=True),
    joiner=st.sampled_from(["x0", "x1"]),
)
def test_property_join_only_moves_to_joiner(keys, sites, joiner):
    ring = _ring(sites)
    before = ring.assignment(keys)
    ring.add_site(joiner)
    after = ring.assignment(keys)
    for key in keys:
        if before[key] != after[key]:
            assert after[key] == joiner


def test_default_replicas_spread_is_reasonable(rng):
    # 64 vnodes/site keeps the max/min partition ratio bounded for a
    # uniform keyspace — the skew the rebalancer then refines.
    ring = _ring(["s0", "s1", "s2"])
    keys = [f"k{i}" for i in range(3000)]
    counts = ring.partition_counts(keys)
    assert DEFAULT_REPLICAS == 64
    assert max(counts.values()) / max(1, min(counts.values())) < 3.0
