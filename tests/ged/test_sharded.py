"""The sharded GED: routing, detection, equivalence, observability.

Most tests run on duck-typed stand-in sites (a bare LED plus a
``recover()``) because :class:`~repro.ged.ShardedGed` only contracts for
``.led``; the trace and admin tests use real agents to prove the full
path — trigger, forwarding rule, ``;tc=`` trailer, router, shard — is
one connected pipeline.
"""

from types import SimpleNamespace

import pytest

from repro.agent import EcaAgent
from repro.errors import ConfigurationError
from repro.ged import (
    GedFiring,
    ShardedGed,
    TransportError,
    qualified_name,
)
from repro.ged.sharded import FORWARD_RULE_PREFIX
from repro.led import Context, Coupling, LocalEventDetector
from repro.obs import MetricsRegistry
from repro.obs.tracing import (
    SPAN_GED_ROUTE,
    SPAN_GED_SHARD,
    PipelineTrace,
)
from repro.sqlengine import SqlServer


def make_site(*events):
    """A duck-typed site: bare LED with the given primitives defined."""
    led = LocalEventDetector()
    for event in events:
        led.define_primitive(event)
    return SimpleNamespace(led=led, trace=None,
                           recover=lambda: {"stand_in": True})


@pytest.fixture
def pair():
    """A 2-site sharded GED with one primitive imported per site."""
    ged = ShardedGed()
    a, b = make_site("e1"), make_site("e2")
    ged.add_site("alpha", a)
    ged.add_site("beta", b)
    qa = ged.import_event("alpha", "e1")
    qb = ged.import_event("beta", "e2")
    return ged, a, b, qa, qb


class TestRouting:
    def test_qualified_names(self, pair):
        _ged, _a, _b, qa, qb = pair
        assert qa == qualified_name("alpha", "e1") == "e1::alpha"
        assert qb == "e2::beta"

    def test_journal_gseq_is_a_total_order(self, pair):
        ged, a, b, _qa, _qb = pair
        a.led.raise_event("e1", {"vNo": 1})
        b.led.raise_event("e2", {"vNo": 1})
        a.led.raise_event("e1", {"vNo": 2})
        assert [e.gseq for e in ged.journal] == [1, 2, 3]
        assert [e.site for e in ged.journal] == ["alpha", "beta", "alpha"]
        # The occurrence's interval IS the gseq, at every shard.
        assert all(e.occurrence.seq == e.gseq for e in ged.journal)

    def test_forward_rule_installed_and_dropped(self, pair):
        ged, a, _b, qa, _qb = pair
        rule_name = f"{FORWARD_RULE_PREFIX}{qa}"
        assert any(r.name == rule_name for r in a.led.rules_for("e1"))
        ged.close()
        assert not any(r.name == rule_name for r in a.led.rules_for("e1"))

    def test_spoofed_origin_rejected(self, pair):
        ged, _a, _b, qa, _qb = pair
        with pytest.raises(TransportError):
            ged.transport.send(
                "beta", f"- - - begin {qa} 1")

    def test_unknown_event_rejected(self, pair):
        ged, _a, _b, _qa, _qb = pair
        with pytest.raises(TransportError):
            ged.transport.send("alpha", "- - - begin ghost::alpha 1")

    def test_import_requires_defined_event(self, pair):
        ged, _a, _b, _qa, _qb = pair
        with pytest.raises(ConfigurationError):
            ged.import_event("alpha", "missing")

    def test_per_site_metrics(self):
        metrics = MetricsRegistry()
        metrics.enabled = True
        ged = ShardedGed(metrics=metrics)
        site = make_site("e1", "e2")
        ged.add_site("solo", site)
        ged.import_event("solo", "e1")
        ged.import_event("solo", "e2")
        ged.define_global_event("G", "(e1::solo OR e2::solo)")
        ged.add_global_rule("r", "G", context=Context.RECENT,
                            coupling=Coupling.IMMEDIATE)
        site.led.raise_event("e1", {"vNo": 1})
        routed = {labels["site"]: m.value() for labels, m
                  in metrics.get("ged_routed_total").children()}
        fired = {labels["site"]: m.value() for labels, m
                 in metrics.get("ged_rules_fired_total").children()}
        assert routed["solo"] == 1
        assert fired["solo"] == 1


class TestDetection:
    def test_cross_site_seq(self, pair):
        ged, a, b, qa, qb = pair
        fired = []
        ged.define_global_event("G", f"({qa} SEQ {qb})")
        ged.add_global_rule("r_seq", "G", fired.append,
                            context=Context.RECENT,
                            coupling=Coupling.IMMEDIATE)
        a.led.raise_event("e1", {"vNo": 1})
        assert fired == []
        b.led.raise_event("e2", {"vNo": 1})
        assert len(fired) == 1
        leaves = [(o.event_name, o.seq) for o in fired[0].flatten()]
        assert leaves == [(qa, 1), (qb, 2)]
        record = ged.firings[0]
        assert isinstance(record, GedFiring)
        assert record.event_name == "G"
        assert record.site == ged.owner_of("G")
        assert not record.replayed

    def test_rule_without_action_still_recorded(self, pair):
        ged, a, _b, qa, qb = pair
        ged.define_global_event("Solo", f"({qa} OR {qb})")
        ged.add_global_rule("r_solo", "Solo")
        a.led.raise_event("e1", {"vNo": 1})
        assert [f.rule_name for f in ged.firings] == ["r_solo"]

    def test_deferred_coupling_waits_for_flush(self, pair):
        ged, a, b, qa, qb = pair
        ged.define_global_event("G", f"({qa} SEQ {qb})")
        ged.add_global_rule("r_def", "G", context=Context.RECENT,
                            coupling=Coupling.DEFERRED)
        a.led.raise_event("e1", {"vNo": 1})
        b.led.raise_event("e2", {"vNo": 1})
        assert ged.firings == []
        flushed = ged.flush_deferred()
        assert [f.rule_name for f in flushed] == ["r_def"]
        assert ged.flush_deferred() == []

    def test_no_global_event_reuse(self, pair):
        ged, _a, _b, qa, qb = pair
        ged.define_global_event("G", f"({qa} SEQ {qb})")
        with pytest.raises(ConfigurationError):
            ged.define_global_event("H", f"(G AND {qa})")

    def test_leaves_must_be_imported(self, pair):
        ged, _a, _b, qa, _qb = pair
        with pytest.raises(ConfigurationError):
            ged.define_global_event("G", f"({qa} SEQ e9::beta)")

    def test_sharded_equals_single_coordinator(self):
        """The sharding-invisibility contract on a small workload."""
        def build(sharded):
            ged = ShardedGed(sharded=sharded)
            sites = {name: make_site("e1", "e2")
                     for name in ("s0", "s1", "s2")}
            for name, agent in sites.items():
                ged.add_site(name, agent)
            names = []
            for name in sites:
                for event in ("e1", "e2"):
                    names.append(ged.import_event(name, event))
            ged.define_global_event(
                "G0", f"({names[0]} SEQ {names[3]})")
            ged.define_global_event(
                "G1", f"({names[1]} AND {names[4]})", owner=None)
            ged.add_global_rule("r0", "G0", context=Context.CHRONICLE,
                                coupling=Coupling.IMMEDIATE)
            ged.add_global_rule("r1", "G1", context=Context.CUMULATIVE,
                                coupling=Coupling.DEFERRED)
            stream = [("s0", "e1"), ("s1", "e2"), ("s1", "e1"),
                      ("s2", "e2"), ("s0", "e2"), ("s1", "e2")]
            for site, event in stream:
                sites[site].led.raise_event(event, {"vNo": 1})
                ged.flush_deferred()
            return [(f.rule_name, f.event_name,
                     tuple((o.event_name, o.seq)
                           for o in f.occurrence.flatten()))
                    for f in ged.firings]

        assert build(sharded=True) == build(sharded=False)
        # ... while the two shapes partition differently: the sharded
        # ring spreads classes, the coordinator owns everything.


class TestMembership:
    def test_remove_site_refused_while_homing_imports(self, pair):
        ged, _a, _b, _qa, _qb = pair
        with pytest.raises(ConfigurationError) as excinfo:
            ged.remove_site("alpha")
        assert "homes imported events" in str(excinfo.value)

    def test_remove_unused_site_migrates_classes(self, pair):
        ged, a, b, qa, qb = pair
        ged.add_site("gamma", make_site())
        ged.define_global_event("G", f"({qa} SEQ {qb})", owner="gamma")
        ged.add_global_rule("r", "G", context=Context.RECENT,
                            coupling=Coupling.IMMEDIATE)
        assert ged.owner_of("G") == "gamma"
        a.led.raise_event("e1", {"vNo": 1})  # half-detected on gamma
        moves = ged.remove_site("gamma")
        assert ("G", "gamma", ged.owner_of("G")) in moves
        assert ged.owner_of("G") != "gamma"
        # The journal replay carried the partial state across the move.
        b.led.raise_event("e2", {"vNo": 1})
        assert [f.rule_name for f in ged.firings] == ["r"]

    def test_owner_pin_overrides_ring(self, pair):
        ged, _a, _b, qa, qb = pair
        ged.define_global_event("G", f"({qa} AND {qb})", owner="beta")
        assert ged.owner_of("G") == "beta"
        assert "G" in ged.partition_map()["beta"]

    def test_duplicate_site_rejected(self, pair):
        ged, a, _b, _qa, _qb = pair
        with pytest.raises(ConfigurationError):
            ged.add_site("alpha", a)

    def test_agent_backref_set_and_cleared(self, pair):
        ged, a, b, _qa, _qb = pair
        extra = make_site()
        ged.add_site("gamma", extra)
        assert extra.ged_sites == (ged, "gamma")
        ged.remove_site("gamma")
        assert extra.ged_sites is None
        assert a.ged_sites == (ged, "alpha")


class TestRebalance:
    def test_skew_moves_heavy_classes(self):
        ged = ShardedGed()
        sites = {name: make_site("e1", "e2") for name in ("s0", "s1", "s2")}
        for name, agent in sites.items():
            ged.add_site(name, agent)
            ged.import_event(name, "e1")
            ged.import_event(name, "e2")
        # Pin every composite onto one site to manufacture skew.
        for index, site in enumerate(sorted(sites)):
            ged.define_global_event(
                f"G{index}", f"(e1::{site} OR e2::{site})", owner="s0")
            ged.add_global_rule(f"r{index}", f"G{index}",
                                context=Context.RECENT,
                                coupling=Coupling.IMMEDIATE)
        for _ in range(5):
            sites["s0"].led.raise_event("e1", {"vNo": 1})
            sites["s1"].led.raise_event("e1", {"vNo": 1})
        before = {s: len(v) for s, v in ged.partition_map().items()
                  if s.startswith("s")}
        moves = ged.rebalance(max_ratio=1.2)
        assert moves, f"expected moves off the overloaded site: {before}"
        owners = {ged.owner_of(f"G{i}") for i in range(3)}
        assert len(owners) > 1
        # Firing behaviour is unchanged after the moves.
        sites["s1"].led.raise_event("e1", {"vNo": 9})
        assert any(occ.params.get("vNo") == 9
                   for f in ged.firings
                   for occ in f.occurrence.flatten())

    def test_balanced_ged_is_a_noop(self, pair):
        ged, a, _b, qa, qb = pair
        ged.define_global_event("G", f"({qa} OR {qb})")
        ged.add_global_rule("r", "G", context=Context.RECENT,
                            coupling=Coupling.IMMEDIATE)
        a.led.raise_event("e1", {"vNo": 1})
        assert ged.rebalance() == []


class TestObservability:
    def _real_pair(self):
        """Two real agents with an insert trigger each, joined to a GED
        that shares the first agent's trace (one span store)."""
        agents = {}
        conns = {}
        for site in ("nyc", "tokyo"):
            server = SqlServer(default_database="ops")
            agent = EcaAgent(server, channel="sync")
            conn = agent.connect(user="sre", database="ops")
            conn.execute("create table audit_log (entry varchar(20))")
            conn.execute(
                "create trigger t_audit on audit_log for insert "
                "event auditRow as print 'row'")
            agents[site], conns[site] = agent, conn
        trace = agents["nyc"].trace
        trace.enabled = True
        tokyo = agents["tokyo"]
        tokyo.trace = trace
        tokyo.led.attach_observability(tokyo.metrics, trace, tokyo.journal)
        ged = ShardedGed(trace=trace)
        for site, agent in agents.items():
            ged.add_site(site, agent)
            ged.import_event(site, "ops.sre.auditRow")
        return ged, agents, conns, trace

    def test_trace_context_survives_the_datagram(self):
        """A cross-site detection is ONE connected trace tree: the
        sender's command root, the ``ged:route`` span re-activated from
        the ``;tc=`` trailer, and the ``ged:shard`` delivery under it."""
        ged, agents, conns, trace = self._real_pair()
        try:
            ged.define_global_event(
                "G", "(ops.sre.auditRow::nyc SEQ ops.sre.auditRow::tokyo)")
            ged.add_global_rule("r", "G", context=Context.RECENT,
                                coupling=Coupling.IMMEDIATE)
            conns["nyc"].execute("insert audit_log values ('a')")
            conns["tokyo"].execute("insert audit_log values ('b')")
            assert [f.rule_name for f in ged.firings] == ["r"]
            route_spans = [s for trace_id in trace.trace_ids()
                           for s in trace.spans_for(trace_id)
                           if s.step == SPAN_GED_ROUTE]
            assert {s.detail for s in route_spans} == {"nyc", "tokyo"}
            for span in route_spans:
                siblings = trace.spans_for(span.trace_id)
                # Connected: the route span has a parent inside the
                # same trace (the sending command's span), and the
                # shard delivery hangs beneath it.
                assert span.parent is not None
                assert any(s.seq == span.parent for s in siblings)
                assert any(s.step == SPAN_GED_SHARD
                           and s.parent == span.seq for s in siblings)
        finally:
            ged.close()
            for agent in agents.values():
                agent.close()

    def test_show_agent_sites_through_the_language_filter(self):
        ged, agents, conns, _trace = self._real_pair()
        try:
            conns["nyc"].execute("insert audit_log values ('a')")
            result = conns["tokyo"].execute("show agent sites")
            rows, totals = result.result_sets
            by_site = {row[0]: row for row in rows.rows}
            assert set(by_site) == {"nyc", "tokyo"}
            assert by_site["nyc"][rows.columns.index("status")] == "up"
            assert by_site["nyc"][rows.columns.index("routed")] == 1
            stats = dict(totals.rows)
            assert stats["this_site"] == "tokyo"
            assert stats["journal_entries"] == 1
        finally:
            ged.close()
            for agent in agents.values():
                agent.close()

    def test_show_agent_sites_without_membership_errors(self):
        server = SqlServer(default_database="ops")
        agent = EcaAgent(server, channel="sync")
        conn = agent.connect(user="sre", database="ops")
        try:
            result = conn.execute("show agent sites")
            assert "not part of a sharded GED" in str(
                result.result_sets[0].rows[0])
        finally:
            agent.close()

    def test_site_rows_shape(self, pair):
        ged, a, _b, _qa, _qb = pair
        a.led.raise_event("e1", {"vNo": 1})
        rows = ged.site_rows()
        assert [row[0] for row in rows] == ["alpha", "beta"]
        alpha = rows[0]
        assert alpha[1] == "up"
        assert alpha[5] == 1  # routed

    def test_detection_logs_cover_archived_shards(self, pair):
        ged, a, b, qa, qb = pair
        ged.define_global_event("G", f"({qa} SEQ {qb})")
        ged.add_global_rule("r", "G", context=Context.RECENT,
                            coupling=Coupling.IMMEDIATE)
        ged.start_detection_logs()
        owner = ged.owner_of("G")
        a.led.raise_event("e1", {"vNo": 1})
        ged.fail_site(owner)
        ged.recover_site(owner)
        b.led.raise_event("e2", {"vNo": 1})
        logs = ged.stop_detection_logs()
        sites = [site for site, _log in logs]
        # Archived (pre-failure) log first, then the live shards.
        assert sites.count(owner) >= 2


def test_disabled_trace_by_default(pair):
    ged, a, _b, _qa, _qb = pair
    assert isinstance(ged.trace, PipelineTrace)
    assert not ged.trace.enabled
    a.led.raise_event("e1", {"vNo": 1})  # must not record or raise
    assert ged.trace.trace_count() == 0
