"""The shrinker and the mutation self-check.

A differential harness earns its keep twice: by finding nothing on the
healthy stack, and by provably finding a *planted* bug and minimising
it.  These tests arm one intentional LED semantics mutation, confirm
the oracle catches it, and drive the shrinker end to end — including
the corpus write/replay roundtrip on the restored (healthy) stack.
"""

import pytest

from repro.difftest import (
    MUTATIONS,
    apply_mutation,
    compare_runs,
    generate_scenario,
    load_corpus,
    run_reference,
    run_stack,
    shrink_scenario,
    write_corpus,
)
from repro.difftest.shrink import corpus_filename


def _diverges(scenario) -> bool:
    stack = run_stack(scenario, plan_cache=True)
    return bool(compare_runs(scenario, stack, run_reference(scenario)))


@pytest.fixture
def mutated():
    restore = apply_mutation("seq-chronicle-newest")
    yield
    restore()


def test_unknown_mutation_is_rejected():
    with pytest.raises(KeyError, match="unknown mutation"):
        apply_mutation("nope")


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_every_mutation_is_caught(name):
    """Each planted bug diverges within a tiny seed budget."""
    restore = apply_mutation(name)
    try:
        assert any(_diverges(generate_scenario(seed)) for seed in range(8)), \
            f"mutation {name!r} survived the sweep — the harness is blind"
    finally:
        restore()


def test_shrink_produces_small_clean_replaying_repro(mutated, tmp_path):
    scenario = generate_scenario(0)
    assert _diverges(scenario)
    small = shrink_scenario(scenario, _diverges)
    assert len(small.statements) <= 10
    assert len(small.rules) <= len(scenario.rules)
    assert _diverges(small), "shrunk scenario lost the divergence"

    path = write_corpus(small, tmp_path)
    (reloaded_path, reloaded), = load_corpus(tmp_path)
    assert reloaded_path == path
    assert reloaded == small
    assert path.name == corpus_filename(small)


def test_shrunk_repro_is_clean_on_healthy_stack():
    restore = apply_mutation("seq-chronicle-newest")
    try:
        small = shrink_scenario(generate_scenario(0), _diverges)
        assert _diverges(small)
    finally:
        restore()
    # Corpus entries must pass on the real stack forever, diverging
    # only when the bug they pin returns.
    assert not _diverges(small)


def test_shrinker_returns_original_when_not_reproducible():
    scenario = generate_scenario(1)
    assert shrink_scenario(scenario, lambda s: False) == scenario
