"""Chaos differential runs: match-or-fail-loudly.

Seeded fault schedules over the same scenarios the clean sweep uses.
Preserving schedules must still match the reference oracle; lossy ones
may diverge but only with visible fault evidence, and the plan cache
must stay invisible under every schedule.
"""

import pytest

from repro.difftest import generate_scenario, run_chaos
from repro.difftest.chaos import ChaosSchedule, random_chaos_schedule


@pytest.mark.parametrize("chaos_seed", range(100, 108))
def test_chaos_schedules_are_clean(chaos_seed):
    scenario = generate_scenario(chaos_seed - 100)
    report = run_chaos(scenario, chaos_seed)
    assert report.clean, (
        f"schedule {report.schedule.names}:\n"
        + "\n".join(map(str, report.divergences)))


def test_chaos_runs_actually_inject(rng_seed):
    # A chaos suite whose faults never fire is indistinguishable from
    # the clean sweep; demand evidence across a small schedule sample.
    injected = 0
    for offset in range(4):
        report = run_chaos(
            generate_scenario(offset), 100 + rng_seed + offset)
        injected += report.faults_injected
    assert injected > 0


def test_schedule_is_seed_deterministic():
    assert random_chaos_schedule(42) == random_chaos_schedule(42)


def test_schedule_plans_are_independent_instances():
    schedule = random_chaos_schedule(5)
    assert schedule.build_plan() is not schedule.build_plan()


def test_lossy_flag_tracks_catalogue():
    schedule = ChaosSchedule(seed=1, names=["notifier-drop"], lossy=True)
    plan = schedule.build_plan()
    assert plan.specs, "chosen template must arm at least one fault"
