"""Replay every committed regression corpus entry.

Each ``tests/difftest/corpus/*.json`` file is a minimised scenario the
shrinker produced from a past divergence (or a mutation self-check).
They must replay with zero divergences on the healthy stack, forever —
one failing again means the bug it pins has come back.
"""

from pathlib import Path

import pytest

from repro.difftest import compare_runs, load_corpus, run_scenario

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert ENTRIES, (
        f"no corpus entries under {CORPUS_DIR}; regenerate with "
        "`python tools/check_difftest.py mutate seq-chronicle-newest "
        "--write-corpus`")


@pytest.mark.parametrize(
    "path,scenario", ENTRIES, ids=[path.name for path, _ in ENTRIES])
def test_corpus_entry_replays_clean(path, scenario):
    run = run_scenario(scenario)
    divergences = compare_runs(
        scenario, run.stack, run.reference, run.baseline)
    assert divergences == [], (
        f"{path.name} diverges again:\n" + "\n".join(map(str, divergences)))
