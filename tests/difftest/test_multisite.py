"""The multi-site differential twin: sweep, liveness, shrink, corpus.

Four executions of every seeded multi-site scenario must agree on the
deployment-shape-independent surfaces (global primitive stream,
per-event detections, per-rule firings, audit): the sharded stack, the
single-coordinator stack, and the reference twin — plus the two stack
shapes against each other (sharding invisibility).  A planted semantic
mutation must be *caught* by the same sweep (liveness), and a caught
divergence must shrink to a smaller scenario that round-trips through
the corpus format.
"""

from pathlib import Path

import pytest

from repro.difftest import (
    MultiSiteScenario,
    compare_multisite_runs,
    compare_multisite_stack_runs,
    generate_multisite_scenario,
    load_multisite_corpus,
    run_multisite_reference,
    run_multisite_stack,
    shrink_multisite_scenario,
    write_corpus,
)
from repro.difftest.mutations import apply_mutation
from repro.difftest.scenario import (
    GlobalRuleSpec,
    SitePrimitiveSpec,
    SiteStatement,
    qualified_leaf,
)

CORPUS_DIR = Path(__file__).parent / "corpus" / "multisite"


def assert_clean(scenario):
    sharded = run_multisite_stack(scenario, sharded=True)
    single = run_multisite_stack(scenario, sharded=False)
    reference = run_multisite_reference(scenario)
    for label, run in (("sharded", sharded), ("single-site", single)):
        divergences = compare_multisite_runs(run, reference, label)
        assert not divergences, "\n".join(map(str, divergences))
    divergences = compare_multisite_stack_runs(sharded, single)
    assert not divergences, "\n".join(map(str, divergences))
    return sharded


def hand_scenario():
    """A deterministic 2-site scenario with one cross-site SEQ."""
    p0 = SitePrimitiveSpec(site="s0", event="p0", table="t0",
                           operation="insert")
    p1 = SitePrimitiveSpec(site="s1", event="p1", table="t0",
                           operation="insert")
    rule = GlobalRuleSpec(
        trigger="g_t0", event="g0",
        expression=f"({p0.qualified} SEQ {p1.qualified})",
        context="CHRONICLE", coupling="IMMEDIATE", priority=1)
    statements = [
        SiteStatement(site="s0", table="t0", operation="insert",
                      sql="insert t0 values (1, 10)"),
        SiteStatement(site="s1", table="t0", operation="insert",
                      sql="insert t0 values (2, 20)"),
        SiteStatement(site="s1", table="t0", operation="insert",
                      sql="insert t0 values (3, 30)"),
    ]
    return MultiSiteScenario(seed=0, sites=("s0", "s1"), tables=("t0",),
                             primitives=(p0, p1), rules=(rule,),
                             statements=tuple(statements))


class TestTwin:
    def test_hand_built_cross_site_seq(self):
        scenario = hand_scenario()
        run = assert_clean(scenario)
        # The SEQ fired exactly once: (p0@s0, first p1@s1).
        assert run.audit == {"g_t0": 1}
        [(event, context, coupling, seqs)] = run.firings["g_t0"]
        assert (event, context, coupling) == ("g0", "CHRONICLE", "IMMEDIATE")
        assert seqs == (1, 2)

    def test_qualified_leaf_helper(self):
        assert qualified_leaf("p0", "s0").endswith(".p0::s0")

    @pytest.mark.parametrize("seed", range(3))
    def test_seeded_sweep_is_clean(self, seed):
        assert_clean(generate_multisite_scenario(seed))

    def test_partition_differs_but_semantics_do_not(self):
        scenario = generate_multisite_scenario(1)
        sharded = run_multisite_stack(scenario, sharded=True)
        single = run_multisite_stack(scenario, sharded=False)
        assert not compare_multisite_stack_runs(sharded, single)
        owners_single = {site for site, classes in single.partition.items()
                         if classes}
        assert len(owners_single) == 1  # coordinator owns everything


class TestMutationLiveness:
    def test_planted_mutation_is_caught(self):
        """The sweep must be able to see a real semantic bug."""
        restore = apply_mutation("seq-chronicle-newest")
        try:
            caught = None
            for seed in range(6):
                scenario = generate_multisite_scenario(seed)
                try:
                    reference = run_multisite_reference(scenario)
                    run = run_multisite_stack(scenario, sharded=True)
                except Exception:
                    caught = scenario
                    break
                if compare_multisite_runs(run, reference):
                    caught = scenario
                    break
            assert caught is not None, (
                "mutated operator survived 6 seeds undetected")
        finally:
            restore()
        # With the mutation reverted the same scenario is clean again.
        assert_clean(caught)


def _diverges(scenario) -> bool:
    try:
        run = run_multisite_stack(scenario, sharded=True)
        reference = run_multisite_reference(scenario)
    except Exception:
        return True
    return bool(compare_multisite_runs(run, reference))


class TestShrinkAndCorpus:
    def test_shrinker_minimises_a_caught_divergence(self, tmp_path):
        restore = apply_mutation("seq-chronicle-newest")
        try:
            scenario = next(
                s for s in map(generate_multisite_scenario, range(6))
                if _diverges(s))
            small = shrink_multisite_scenario(scenario, _diverges,
                                              budget=120)
            assert len(small.statements) <= len(scenario.statements)
            assert len(small.rules) <= len(scenario.rules)
            assert _diverges(small)
            path = write_corpus(small, tmp_path)
        finally:
            restore()
        # Round-trip: the persisted reproduction loads identically and
        # replays clean on the unmutated build.
        [(loaded_path, loaded)] = load_multisite_corpus(tmp_path)
        assert loaded_path == path
        assert loaded == small
        assert not _diverges(loaded)

    def test_json_round_trip(self):
        scenario = generate_multisite_scenario(2)
        assert MultiSiteScenario.from_json(scenario.to_json()) == scenario

    def test_committed_corpus_replays_clean(self):
        entries = load_multisite_corpus(CORPUS_DIR)
        assert entries, "multisite corpus is empty"
        for path, scenario in entries:
            assert not _diverges(scenario), f"corpus file {path} diverges"
