"""Seeded differential runs: stack == reference == baselines.

The heavy sweep lives in ``tools/check_difftest.py`` (CI's difftest
job); this suite keeps a small always-on sample in tier-1 so a
semantics regression fails ``pytest`` directly, not just the gate.
"""

import pytest

from repro.difftest import (
    compare_runs,
    compare_stack_runs,
    generate_scenario,
    run_scenario,
    run_stack,
)
from repro.difftest.scenario import Scenario


@pytest.mark.parametrize("seed", range(6))
def test_three_way_agreement(seed):
    scenario = generate_scenario(seed)
    run = run_scenario(scenario)
    divergences = compare_runs(
        scenario, run.stack, run.reference, run.baseline)
    assert divergences == [], "\n".join(map(str, divergences))


@pytest.mark.parametrize("seed", (0, 3))
def test_plan_cache_is_semantically_invisible(seed):
    scenario = generate_scenario(seed)
    on = run_stack(scenario, plan_cache=True)
    off = run_stack(scenario, plan_cache=False)
    divergences = compare_stack_runs(on, off)
    assert divergences == [], "\n".join(map(str, divergences))


def test_scenario_covers_all_four_contexts(rng_seed):
    scenario = generate_scenario(rng_seed)
    assert scenario.contexts_covered() == {
        "RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE"}


def test_scenario_json_roundtrip(rng_seed):
    scenario = generate_scenario(rng_seed)
    clone = Scenario.from_json(scenario.to_json())
    assert clone == scenario


def test_generation_is_seed_deterministic(rng_seed):
    assert generate_scenario(rng_seed) == generate_scenario(rng_seed)


def test_stack_run_observations_are_nonempty(rng_seed):
    # A sweep that compares empty surfaces to empty surfaces proves
    # nothing; the generated workload must exercise the pipeline.
    stack = run_stack(generate_scenario(rng_seed))
    assert stack.primitives
    assert stack.detections
    assert stack.firings
    assert stack.audit
