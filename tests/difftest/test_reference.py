"""The reference interpreter against hand-computed Snoop examples and,
property-style, against the raw LED over seeded random graphs."""

import random

import pytest

from repro.difftest.reference import (
    CONTEXTS,
    ReferenceDetector,
    ReferenceError,
)
from repro.led import LocalEventDetector
from repro.workloads.generators import random_snoop_expression


def _ref(*prims):
    ref = ReferenceDetector()
    for name in prims:
        ref.define_primitive(name)
    return ref


def _detected(ref, name):
    """(context, constituent-seq-tuple) pairs detected for ``name``."""
    return [(d.context, d.occurrence.seqs())
            for d in ref.detections if d.event_name == name]


class TestReferenceByHand:
    """Context semantics spot-checked against the paper's definitions."""

    def test_or_passes_everything_through(self):
        ref = _ref("a", "b")
        ref.define_composite("c", "a OR b")
        ref.add_rule("r", "c", context="RECENT")
        ref.raise_event("a")
        ref.raise_event("b")
        assert _detected(ref, "c") == [("RECENT", (1,)), ("RECENT", (2,))]

    def test_and_recent_keeps_latest_initiator(self):
        # a1 a2 b3 b4 -> RECENT pairs (a2,b3) then (b3? no: a2,b4): the
        # retained latest of each side pairs with each new arrival.
        ref = _ref("a", "b")
        ref.define_composite("c", "a AND b")
        ref.add_rule("r", "c", context="RECENT")
        for name in ("a", "a", "b", "b"):
            ref.raise_event(name)
        assert _detected(ref, "c") == [
            ("RECENT", (2, 3)), ("RECENT", (2, 4))]

    def test_and_chronicle_pairs_fifo(self):
        ref = _ref("a", "b")
        ref.define_composite("c", "a AND b")
        ref.add_rule("r", "c", context="CHRONICLE")
        for name in ("a", "a", "b", "b", "b"):
            ref.raise_event(name)
        # (a1,b3), (a2,b4); b5 waits for a partner.
        assert _detected(ref, "c") == [
            ("CHRONICLE", (1, 3)), ("CHRONICLE", (2, 4))]

    def test_seq_continuous_one_detection_per_open_window(self):
        ref = _ref("a", "b")
        ref.define_composite("c", "a SEQ b")
        ref.add_rule("r", "c", context="CONTINUOUS")
        for name in ("a", "a", "b", "b"):
            ref.raise_event(name)
        # b3 terminates both open windows (consumed); b4 finds none.
        assert _detected(ref, "c") == [
            ("CONTINUOUS", (1, 3)), ("CONTINUOUS", (2, 3))]

    def test_seq_cumulative_accumulates_all_initiators(self):
        ref = _ref("a", "b")
        ref.define_composite("c", "a SEQ b")
        ref.add_rule("r", "c", context="CUMULATIVE")
        for name in ("a", "a", "b", "b"):
            ref.raise_event(name)
        assert _detected(ref, "c") == [("CUMULATIVE", (1, 2, 3))]

    def test_not_middle_cancels_window(self):
        ref = _ref("a", "b", "x")
        ref.define_composite("c", "NOT(a, x, b)")
        ref.add_rule("r", "c", context="CHRONICLE")
        for name in ("a", "x", "b", "a", "b"):
            ref.raise_event(name)
        # The first window dies at x2; the second (a4..b5) survives.
        assert _detected(ref, "c") == [("CHRONICLE", (4, 5))]

    def test_aperiodic_signals_every_middle_without_consuming(self):
        ref = _ref("a", "m", "t")
        ref.define_composite("c", "A(a, m, t)")
        ref.add_rule("r", "c", context="CHRONICLE")
        for name in ("a", "m", "m", "t", "m"):
            ref.raise_event(name)
        # Each m inside the open window signals; t closes it; the last m
        # finds no window.
        assert _detected(ref, "c") == [
            ("CHRONICLE", (1, 2)), ("CHRONICLE", (1, 3))]

    def test_aperiodic_star_fires_once_at_terminator(self):
        ref = _ref("a", "m", "t")
        ref.define_composite("c", "A*(a, m, t)")
        ref.add_rule("r", "c", context="CHRONICLE")
        for name in ("a", "m", "m", "t", "t"):
            ref.raise_event(name)
        assert _detected(ref, "c") == [("CHRONICLE", (1, 2, 3, 4))]

    def test_deferred_rules_fire_in_flush_order(self):
        ref = _ref("a")
        ref.define_composite("c", "a OR a")
        ref.add_rule("r1", "c", context="RECENT", coupling="DEFERRED")
        ref.add_rule("r2", "c", context="RECENT", priority=5)
        ref.raise_event("a")
        assert [f.rule_name for f in ref.firings] == ["r2", "r2"]
        ref.flush_deferred()
        assert [f.rule_name for f in ref.firings] == [
            "r2", "r2", "r1", "r1"]

    def test_temporal_operators_rejected(self):
        ref = _ref("a", "b")
        with pytest.raises(ReferenceError):
            ref.define_composite("c", "P(a, [3 sec], b)")
        with pytest.raises(ReferenceError):
            ref.define_composite("c", "a PLUS [1 sec]")

    def test_detached_rules_rejected(self):
        ref = _ref("a")
        ref.define_composite("c", "a OR a")
        with pytest.raises(ReferenceError):
            ref.add_rule("r", "c", coupling="DETACHED")


def _build_pair(seed):
    """The same random graph + rules installed in a LED and a reference."""
    rng = random.Random(seed)
    prims = [f"e{i}" for i in range(5)]
    led = LocalEventDetector()
    ref = ReferenceDetector()
    for name in prims:
        led.define_primitive(name)
        ref.define_primitive(name)
    leaves = list(prims)
    for index in range(4):
        name = f"c{index}"
        expression = random_snoop_expression(
            rng, leaves, rng.choice([1, 2, 2, 3]))
        if "(" not in expression:
            expression = f"({expression} OR {expression})"
        led.define_composite(name, expression)
        ref.define_composite(name, expression)
        leaves.append(name)   # event reuse: later composites may nest it
        for rule_index in range(rng.choice([1, 1, 2])):
            context = rng.choice(CONTEXTS)
            coupling = rng.choice(["IMMEDIATE", "DEFERRED"])
            priority = rng.choice([1, 1, 1, 2, 3])
            rule = f"r_{name}_{rule_index}"
            led.add_rule(rule, name, action=lambda occ: None,
                         context=context, coupling=coupling,
                         priority=priority)
            ref.add_rule(rule, name, context=context, coupling=coupling,
                         priority=priority)
    statements = []
    for _ in range(rng.randrange(10, 18)):
        statements.append(
            [rng.choice(prims) for _ in range(rng.randrange(1, 4))])
    return led, ref, statements


def _led_surfaces(led, log, named):
    detections = [
        (name, context.value if context is not None else None,
         tuple(occ.seq for occ in occurrence.flatten()))
        for name, context, occurrence in log if name in named
    ]
    firings = [
        (f.rule_name, f.event_name, f.context.value, f.coupling.value,
         tuple(occ.seq for occ in f.occurrence.flatten()))
        for f in led.history
    ]
    return detections, firings


def _ref_surfaces(ref, named):
    detections = [
        (d.event_name, d.context, d.occurrence.seqs())
        for d in ref.detections if d.event_name in named
    ]
    firings = [
        (f.rule_name, f.event_name, f.context, f.coupling,
         f.occurrence.seqs())
        for f in ref.firings
    ]
    return detections, firings


@pytest.mark.parametrize("seed", range(40))
def test_reference_matches_raw_led(seed):
    """Property: on seeded random graphs and streams, the LED and the
    reference produce identical detection and firing histories."""
    led, ref, statements = _build_pair(seed)
    log = led.start_detection_log()
    for batch in statements:
        led.raise_events((name, None) for name in batch)
        led.flush_deferred()
        for name in batch:
            ref.raise_event(name)
        ref.flush_deferred()
    led.stop_detection_log()
    named = set(led.events) - {
        name for name in led.events if name.startswith("_anon")}
    led_detections, led_firings = _led_surfaces(led, log, named)
    ref_detections, ref_firings = _ref_surfaces(ref, named)
    assert led_detections == ref_detections, f"seed={seed}"
    assert led_firings == ref_firings, f"seed={seed}"
