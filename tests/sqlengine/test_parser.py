"""Unit tests for the SQL parser (statement shapes and error paths)."""

import pytest

from repro.sqlengine import parse_batch, parse_expression, parse_statement, split_batches
from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Exists,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    ScalarSubquery,
    Star,
    UnaryOp,
    VariableRef,
)
from repro.sqlengine.statements import (
    AlterTableAddStatement,
    AssignSelect,
    BeginTransactionStatement,
    CommitStatement,
    CreateProcedureStatement,
    CreateTableStatement,
    CreateTriggerStatement,
    DeleteStatement,
    DropTableStatement,
    DropTriggerStatement,
    ExecuteStatement,
    IfStatement,
    InsertSelect,
    InsertValues,
    PrintStatement,
    RollbackStatement,
    SelectStatement,
    TruncateStatement,
    UpdateStatement,
    WhileStatement,
)


class TestSelect:
    def test_star_select(self):
        stmt = parse_statement("select * from stock")
        assert isinstance(stmt, SelectStatement)
        assert isinstance(stmt.items[0].expr, Star)
        assert stmt.tables[0].name.object_name == "stock"

    def test_qualified_star(self):
        stmt = parse_statement("select s.* from stock s")
        assert isinstance(stmt.items[0].expr, Star)
        assert stmt.items[0].expr.qualifier == ("s",)
        assert stmt.tables[0].alias == "s"

    def test_three_part_table_name(self):
        stmt = parse_statement("select * from sentineldb.sharma.stock")
        assert stmt.tables[0].name.parts == ("sentineldb", "sharma", "stock")

    def test_column_aliases(self):
        stmt = parse_statement("select price as p, qty q from stock")
        assert stmt.items[0].alias == "p"
        assert stmt.items[1].alias == "q"

    def test_where_group_having_order(self):
        stmt = parse_statement(
            "select symbol, sum(qty) total from stock where price > 10 "
            "group by symbol having sum(qty) > 5 order by total desc, symbol"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_distinct_and_top(self):
        stmt = parse_statement("select distinct top 3 symbol from stock")
        assert stmt.distinct is True
        assert stmt.top == 3

    def test_select_into(self):
        stmt = parse_statement("select * into copy from stock where 1 = 2")
        assert stmt.into is not None
        assert stmt.into.object_name == "copy"

    def test_select_without_from(self):
        stmt = parse_statement("select 1 + 2")
        assert stmt.tables == ()

    def test_multi_table_from(self):
        stmt = parse_statement(
            "select * from stock, sysContext where stock.vNo = sysContext.vNo")
        assert len(stmt.tables) == 2

    def test_assign_select(self):
        stmt = parse_statement("select @x = max(price) from stock")
        assert isinstance(stmt, AssignSelect)
        assert stmt.assignments[0][0] == "@x"


class TestDml:
    def test_insert_values_without_into(self):
        stmt = parse_statement("insert stock values ('IBM', 10, 1)")
        assert isinstance(stmt, InsertValues)
        assert len(stmt.rows) == 1

    def test_insert_multi_row(self):
        stmt = parse_statement("insert into t values (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_insert_with_column_list(self):
        stmt = parse_statement("insert t (a, b) values (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select(self):
        stmt = parse_statement("insert copy select * from stock")
        assert isinstance(stmt, InsertSelect)

    def test_update(self):
        stmt = parse_statement(
            "update stock set price = price * 1.1, qty = 0 where symbol = 'X'")
        assert isinstance(stmt, UpdateStatement)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete_without_from(self):
        # Sybase allows `delete TableName`.
        stmt = parse_statement("delete Version")
        assert isinstance(stmt, DeleteStatement)
        assert stmt.where is None

    def test_delete_with_from_and_where(self):
        stmt = parse_statement("delete from stock where qty = 0")
        assert stmt.where is not None

    def test_truncate(self):
        assert isinstance(parse_statement("truncate table stock"), TruncateStatement)


class TestDdl:
    def test_create_table(self):
        stmt = parse_statement(
            "create table t (a int not null, b varchar(30) null, c datetime)")
        assert isinstance(stmt, CreateTableStatement)
        assert [c.name for c in stmt.columns] == ["a", "b", "c"]
        assert stmt.columns[0].nullable is False
        assert stmt.columns[1].sql_type.length == 30

    def test_create_table_numeric_scale_swallowed(self):
        stmt = parse_statement("create table t (x numeric(10, 2))")
        assert stmt.columns[0].sql_type.name == "float"

    def test_drop_multiple_tables(self):
        stmt = parse_statement("drop table a, b.c")
        assert isinstance(stmt, DropTableStatement)
        assert len(stmt.tables) == 2

    def test_alter_table_add(self):
        stmt = parse_statement("alter table copy add vNo int null")
        assert isinstance(stmt, AlterTableAddStatement)
        assert stmt.columns[0].name == "vNo"


class TestProceduresAndTriggers:
    def test_create_procedure_with_params(self):
        stmt = parse_statement(
            "create procedure p @a int, @b varchar(20) = 'x' as\n"
            "select @a, @b")
        assert isinstance(stmt, CreateProcedureStatement)
        assert stmt.params[0].name == "@a"
        assert stmt.params[1].default is not None
        assert stmt.source.startswith("create procedure")

    def test_procedure_body_spans_rest_of_batch(self):
        stmt = parse_statement(
            "create proc p as\nprint 'a'\nselect 1\nselect 2")
        assert len(stmt.body) == 3

    def test_procedure_must_start_batch(self):
        with pytest.raises(SqlParseError):
            parse_batch("select 1 create proc p as select 2")

    def test_execute_with_args(self):
        stmt = parse_statement("exec p 1, 'two'")
        assert isinstance(stmt, ExecuteStatement)
        assert len(stmt.args) == 2

    def test_execute_named_args(self):
        stmt = parse_statement("execute p @a = 5")
        assert stmt.named_args[0][0] == "@a"

    def test_create_trigger(self):
        stmt = parse_statement(
            "create trigger tr on stock for insert as\n"
            "insert log select * from inserted")
        assert isinstance(stmt, CreateTriggerStatement)
        assert stmt.operations == ("insert",)

    def test_create_trigger_multiple_operations(self):
        stmt = parse_statement(
            "create trigger tr on stock for insert, delete as print 'x'")
        assert stmt.operations == ("insert", "delete")

    def test_trigger_bad_operation(self):
        with pytest.raises(SqlParseError):
            parse_statement("create trigger tr on stock for merge as print 'x'")

    def test_drop_trigger(self):
        assert isinstance(parse_statement("drop trigger tr"), DropTriggerStatement)


class TestControlFlow:
    def test_if_else(self):
        stmt = parse_statement(
            "if @x > 0 print 'pos' else print 'non-pos'")
        assert isinstance(stmt, IfStatement)
        assert len(stmt.then_branch) == 1
        assert len(stmt.else_branch) == 1

    def test_if_with_begin_end_block(self):
        stmt = parse_statement(
            "if 1 = 1 begin print 'a' print 'b' end")
        assert len(stmt.then_branch) == 2

    def test_while(self):
        stmt = parse_statement("while @i < 10 set @i = @i + 1")
        assert isinstance(stmt, WhileStatement)

    def test_begin_tran_vs_begin_block(self):
        assert isinstance(parse_statement("begin tran"), BeginTransactionStatement)
        batch = parse_batch("begin transaction commit")
        assert isinstance(batch[0], BeginTransactionStatement)
        assert isinstance(batch[1], CommitStatement)

    def test_rollback(self):
        assert isinstance(parse_statement("rollback tran"), RollbackStatement)

    def test_print(self):
        stmt = parse_statement("print 'hello'")
        assert isinstance(stmt, PrintStatement)


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 or b = 2 and c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("not a = 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-price")
        assert isinstance(expr, UnaryOp)

    def test_equality_aliases(self):
        assert parse_expression("a != 1").op == "<>"

    def test_like(self):
        expr = parse_expression("symbol like 'IB%'")
        assert expr.op == "LIKE"

    def test_not_like(self):
        assert parse_expression("symbol not like 'X%'").op == "NOT LIKE"

    def test_between(self):
        expr = parse_expression("price between 1 and 10")
        assert isinstance(expr, Between)
        assert expr.negated is False

    def test_not_between(self):
        assert parse_expression("price not between 1 and 10").negated is True

    def test_in_list(self):
        expr = parse_expression("symbol in ('A', 'B')")
        assert isinstance(expr, InList)

    def test_not_in_subquery(self):
        expr = parse_expression("symbol not in (select symbol from sold)")
        assert isinstance(expr, InSubquery)
        assert expr.negated is True

    def test_is_null(self):
        expr = parse_expression("price is null")
        assert isinstance(expr, IsNull)

    def test_is_not_null(self):
        assert parse_expression("price is not null").negated is True

    def test_exists(self):
        expr = parse_expression("exists (select * from stock)")
        assert isinstance(expr, Exists)

    def test_scalar_subquery(self):
        expr = parse_expression("(select max(price) from stock)")
        assert isinstance(expr, ScalarSubquery)

    def test_function_call(self):
        expr = parse_expression("isnull(price, 0)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "isnull"

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert expr.star is True

    def test_count_distinct(self):
        expr = parse_expression("count(distinct symbol)")
        assert expr.distinct is True

    def test_qualified_column(self):
        expr = parse_expression("sentineldb.sharma.stock.price")
        assert isinstance(expr, ColumnRef)
        assert expr.column_name == "price"
        assert expr.qualifier == ("sentineldb", "sharma", "stock")

    def test_null_literal(self):
        assert parse_expression("null") == Literal(None)

    def test_variable(self):
        assert parse_expression("@x") == VariableRef("@x")

    def test_string_concat(self):
        expr = parse_expression("'a' + 'b'")
        assert expr.op == "+"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse_expression("1 + 2 extra")


class TestBatches:
    def test_adjacent_statements(self):
        # Sybase style: no separator needed between statements.
        batch = parse_batch("delete Version insert Version select vNo from t")
        assert len(batch) == 2
        assert isinstance(batch[0], DeleteStatement)
        assert isinstance(batch[1], InsertSelect)

    def test_semicolons_allowed(self):
        assert len(parse_batch("select 1; select 2;")) == 2

    def test_split_batches_on_go(self):
        script = "select 1\ngo\nselect 2\nGO\nselect 3"
        assert len(split_batches(script)) == 3

    def test_split_batches_ignores_empty(self):
        assert split_batches("go\n\ngo\n") == []

    def test_error_reports_position(self):
        with pytest.raises(SqlParseError) as excinfo:
            parse_statement("select from")
        assert "line" in str(excinfo.value)
