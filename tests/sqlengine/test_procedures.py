"""Integration tests for stored procedures, variables, and control flow."""

import pytest

from repro.sqlengine.errors import CatalogError, ExecutionError


class TestProcedures:
    def test_create_and_execute(self, stock):
        stock.execute("insert stock values ('IBM', 100.0, 10)")
        stock.execute(
            "create procedure list_stock as select symbol from stock")
        result = stock.execute("exec list_stock")
        assert result.last.rows == [["IBM"]]

    def test_positional_parameters(self, stock):
        stock.execute("insert stock values ('IBM', 100.0, 10), ('X', 5.0, 1)")
        stock.execute(
            "create proc above @limit float as "
            "select symbol from stock where price > @limit")
        assert stock.execute("exec above 50").last.rows == [["IBM"]]

    def test_named_parameters(self, stock):
        stock.execute(
            "create proc greet @name varchar(20) as print 'hi ' + @name")
        assert stock.execute("exec greet @name = 'bob'").messages == ["hi bob"]

    def test_default_parameter(self, conn):
        conn.execute("create proc pdef @n int = 7 as select @n")
        assert conn.execute("exec pdef").last.scalar() == 7
        assert conn.execute("exec pdef 3").last.scalar() == 3

    def test_missing_parameter_is_null(self, conn):
        conn.execute("create proc pn @n int as select @n")
        assert conn.execute("exec pn").last.scalar() is None

    def test_too_many_arguments(self, conn):
        conn.execute("create proc p0 as select 1")
        with pytest.raises(ExecutionError):
            conn.execute("exec p0 1")

    def test_unknown_named_parameter(self, conn):
        conn.execute("create proc p1 @a int as select @a")
        with pytest.raises(ExecutionError):
            conn.execute("exec p1 @zz = 1")

    def test_duplicate_procedure_raises(self, conn):
        conn.execute("create proc p as select 1")
        with pytest.raises(CatalogError):
            conn.execute("create proc p as select 2")

    def test_drop_procedure(self, conn):
        conn.execute("create proc p as select 1")
        conn.execute("drop proc p")
        with pytest.raises(CatalogError):
            conn.execute("exec p")

    def test_return_stops_execution(self, conn):
        conn.execute(
            "create proc early as\nprint 'before'\nreturn\nprint 'after'")
        result = conn.execute("exec early")
        assert result.messages == ["before"]

    def test_nested_procedure_calls(self, conn):
        conn.execute("create proc inner_p as print 'inner'")
        conn.execute("create proc outer_p as\nprint 'outer'\nexecute inner_p")
        assert conn.execute("exec outer_p").messages == ["outer", "inner"]

    def test_procedure_source_preserved(self, server, conn):
        text = "create proc keeper as select 42"
        conn.execute(text)
        db = server.catalog.get_database("sentineldb")
        proc = db.find_procedure("keeper", "sharma")
        assert proc.source == text


class TestVariablesAndControlFlow:
    def test_declare_set_select(self, conn):
        result = conn.execute(
            "declare @x int\nset @x = 5\nselect @x + 1")
        assert result.last.scalar() == 6

    def test_assign_select_from_table(self, stock):
        stock.execute("insert stock values ('A', 10.0, 1), ('B', 30.0, 2)")
        result = stock.execute(
            "declare @m float\nselect @m = max(price) from stock\nselect @m")
        assert result.last.scalar() == 30.0

    def test_assign_select_no_rows_keeps_value(self, stock):
        result = stock.execute(
            "declare @p float\nset @p = 99\n"
            "select @p = price from stock where 1 = 2\nselect @p")
        assert result.last.scalar() == 99

    def test_if_true_branch(self, conn):
        assert conn.execute("if 1 = 1 print 'yes' else print 'no'").messages == ["yes"]

    def test_if_false_branch(self, conn):
        assert conn.execute("if 1 = 2 print 'yes' else print 'no'").messages == ["no"]

    def test_if_exists_pattern(self, stock):
        stock.execute("insert stock values ('A', 10.0, 1)")
        result = stock.execute(
            "if exists (select * from stock where price > 5) print 'rich'")
        assert result.messages == ["rich"]

    def test_while_loop(self, conn):
        result = conn.execute(
            "declare @i int\nset @i = 0\n"
            "while @i < 3 begin print convert(varchar, @i) set @i = @i + 1 end")
        assert result.messages == ["0", "1", "2"]

    def test_undeclared_variable_raises(self, conn):
        with pytest.raises(ExecutionError):
            conn.execute("select @ghost")

    def test_trancount_global(self, conn):
        assert conn.execute("select @@trancount").last.scalar() == 0
        conn.execute("begin tran")
        assert conn.execute("select @@trancount").last.scalar() == 1
        conn.execute("rollback")
