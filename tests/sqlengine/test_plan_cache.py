"""The statement/plan cache: LRU behaviour, epoch invalidation, and the
guarantee that DDL — successful or failed — never lets a stale plan run.
"""

import random
import threading

import pytest

from repro.sqlengine import SqlServer, connect
from repro.sqlengine.errors import SqlError
from repro.sqlengine.plancache import PlanCache


class TestPlanCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_miss_then_hit(self):
        cache = PlanCache(enabled=True)
        assert cache.get("select 1", 0) is None
        cache.put("select 1", 0, [("stmt",)])
        assert cache.get("select 1", 0) == (("stmt",),)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_drops_coldest(self):
        cache = PlanCache(capacity=2, enabled=True)
        cache.put("a", 0, [1])
        cache.put("b", 0, [2])
        cache.get("a", 0)              # refresh "a": "b" is now coldest
        cache.put("c", 0, [3])
        assert cache.evictions == 1
        assert cache.get("a", 0) is not None
        assert cache.get("b", 0) is None

    def test_epoch_mismatch_invalidates(self):
        cache = PlanCache(enabled=True)
        cache.put("select 1", 3, [1])
        assert cache.get("select 1", 4) is None
        assert cache.invalidations == 1
        assert len(cache) == 0         # the stale entry is gone for good

    def test_stats_snapshot(self):
        cache = PlanCache(capacity=8, enabled=True)
        cache.put("a", 0, [1])
        cache.get("a", 0)
        cache.get("b", 0)
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["capacity"] == 8
        assert stats["hit_rate"] == 0.5

    def test_clear_resets_counters(self):
        cache = PlanCache(enabled=True)
        cache.put("a", 0, [1])
        cache.get("a", 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0


@pytest.fixture
def cached(stock, server):
    """The stock connection with the plan cache force-enabled and empty
    (independent of the suite-wide on/off parametrization)."""
    server.plan_cache.enabled = True
    server.plan_cache.clear()
    return stock


class TestServerCaching:
    def test_repeated_batch_hits(self, cached, server):
        cached.execute("select * from stock")
        cached.execute("select * from stock")
        assert server.plan_cache.hits == 1
        assert server.plan_cache.misses == 1

    def test_distinct_text_misses(self, cached, server):
        cached.execute("select * from stock")
        cached.execute("select *  from stock")   # whitespace = new text
        assert server.plan_cache.hits == 0
        assert server.plan_cache.misses == 2

    def test_cached_plan_sees_current_rows(self, cached, server):
        cached.execute("select * from stock")
        cached.execute("insert stock values ('IBM', 50, 10)")
        result = cached.execute("select * from stock")
        assert server.plan_cache.hits >= 1
        assert len(result.result_sets[0]) == 1

    def test_disabled_cache_never_populates(self, stock, server):
        server.plan_cache.enabled = False
        server.plan_cache.clear()
        stock.execute("select * from stock")
        stock.execute("select * from stock")
        assert len(server.plan_cache) == 0
        assert server.plan_cache.hits == 0


class TestDdlInvalidation:
    def test_alter_table_bumps_epoch_and_invalidates(self, cached, server):
        cached.execute("select * from stock")
        cached.execute("select * from stock")
        epoch = server.catalog.schema_epoch
        cached.execute("alter table stock add rating int null")
        assert server.catalog.schema_epoch > epoch
        result = cached.execute("select * from stock")
        assert server.plan_cache.invalidations == 1
        # the re-parsed plan sees the widened schema
        assert "rating" in result.result_sets[0].columns

    def test_create_procedure_bumps_epoch(self, cached, server):
        epoch = server.catalog.schema_epoch
        cached.execute("create procedure p_one as select * from stock")
        assert server.catalog.schema_epoch > epoch

    def test_drop_trigger_bumps_epoch(self, cached, server):
        cached.execute("create trigger tr_x on stock for insert as print 'x'")
        epoch = server.catalog.schema_epoch
        cached.execute("drop trigger tr_x")
        assert server.catalog.schema_epoch > epoch

    def test_failed_ddl_still_bumps_epoch(self, cached, server):
        epoch = server.catalog.schema_epoch
        with pytest.raises(SqlError):
            cached.execute("create table stock (symbol varchar(10) null)")
        assert server.catalog.schema_epoch > epoch

    def test_dml_does_not_bump_epoch(self, cached, server):
        epoch = server.catalog.schema_epoch
        cached.execute("insert stock values ('A', 1, 1)")
        cached.execute("update stock set qty = 2")
        cached.execute("delete stock")
        assert server.catalog.schema_epoch == epoch


class TestConcurrentDdlRace:
    def test_epoch_bump_racing_cached_selects_never_serves_stale_plan(
            self, rng_seed):
        """Property test: readers hammering a cached ``select *`` while a
        writer widens the table must only ever observe schema growth.

        A stale plan would replay the pre-ALTER parse and a reader would
        see the column set *shrink* between two of its own selects — the
        schema here only ever grows, so any non-monotonic observation is
        a cache-coherence bug.
        """
        server = SqlServer(default_database="sentineldb")
        server.plan_cache.enabled = True
        server.plan_cache.clear()
        writer_conn = connect(server, user="sharma", database="sentineldb")
        writer_conn.execute("create table t (k int null)")
        writer_conn.execute("insert t values (1)")

        n_alters = 12
        rng = random.Random(rng_seed)
        errors: list[BaseException] = []
        observations: dict[int, list[int]] = {}
        start = threading.Barrier(4)

        def writer():
            start.wait()
            for index in range(n_alters):
                writer_conn.execute(f"alter table t add c{index} int null")

        def reader(slot):
            conn = connect(server, user="sharma", database="sentineldb")
            seen = observations.setdefault(slot, [])
            start.wait()
            for _ in range(40):
                result = conn.execute("select * from t")
                seen.append(len(result.result_sets[0].columns))

        def run(target):
            try:
                target()
            except BaseException as exc:      # surfaced after join
                errors.append(exc)

        threads = ([threading.Thread(target=run, args=(writer,))]
                   + [threading.Thread(target=run,
                                       args=(lambda s=s: reader(s),))
                      for s in range(3)])
        rng.shuffle(threads)
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        for slot, seen in observations.items():
            assert seen == sorted(seen), (
                f"reader {slot} observed the schema shrink — a stale "
                f"cached plan was served: {seen}")
        final = writer_conn.execute("select * from t")
        assert len(final.result_sets[0].columns) == 1 + n_alters


def test_transparency_same_results_both_modes():
    """The same workload, cache on vs cache off, byte-identical output."""
    outputs = []
    for enabled in (True, False):
        server = SqlServer(default_database="sentineldb")
        server.plan_cache.enabled = enabled
        server.plan_cache.clear()
        conn = connect(server, user="sharma", database="sentineldb")
        conn.execute("create table t (k int null, v varchar(10) null)")
        for i in range(5):
            conn.execute(f"insert t values ({i}, 'v{i}')")
        rows = []
        for _ in range(3):
            result = conn.execute("select k, v from t where k >= 1")
            rows.append([list(row) for row in result.result_sets[0].rows])
        outputs.append(rows)
        if enabled:
            assert server.plan_cache.hits >= 2
    assert outputs[0] == outputs[1]
