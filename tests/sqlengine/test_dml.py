"""Integration tests for INSERT / UPDATE / DELETE / TRUNCATE."""

import pytest

from repro.sqlengine.errors import IntegrityError, SchemaError, SqlTypeError


class TestInsert:
    def test_insert_full_row(self, stock):
        stock.execute("insert stock values ('IBM', 100.0, 10)")
        assert stock.execute("select * from stock").last.rows == [
            ["IBM", 100.0, 10]]

    def test_insert_multiple_rows(self, stock):
        result = stock.execute("insert stock values ('A', 1, 1), ('B', 2, 2)")
        assert result.rowcount == 2

    def test_insert_with_column_list_nulls_rest(self, stock):
        stock.execute("insert stock (symbol) values ('X')")
        assert stock.execute("select * from stock").last.rows == [
            ["X", None, None]]

    def test_insert_coerces_types(self, stock):
        stock.execute("insert stock values ('A', 10, 5)")
        row = stock.execute("select price from stock").last.rows[0]
        assert isinstance(row[0], float)

    def test_insert_not_null_violation(self, stock):
        with pytest.raises(IntegrityError):
            stock.execute("insert stock values (null, 1.0, 1)")

    def test_insert_arity_mismatch(self, stock):
        with pytest.raises(SchemaError):
            stock.execute("insert stock values ('A', 1.0)")

    def test_insert_type_mismatch(self, stock):
        with pytest.raises(SqlTypeError):
            stock.execute("insert stock values ('A', 'not a price', 1)")

    def test_insert_select(self, stock, conn):
        stock.execute("insert stock values ('A', 1, 1), ('B', 2, 2)")
        conn.execute("select * into copy from stock where 1 = 2")
        result = conn.execute("insert copy select * from stock")
        assert result.rowcount == 2
        assert len(conn.execute("select * from copy").last.rows) == 2

    def test_insert_select_with_extra_literal_column(self, stock, conn):
        # The codegen pattern: snapshot rows tagged with an extra value.
        stock.execute("insert stock values ('A', 1, 1)")
        conn.execute("select * into snap from stock where 1 = 2")
        conn.execute("alter table snap add vNo int null")
        conn.execute("insert snap select *, 7 from stock")
        assert conn.execute("select vNo from snap").last.rows == [[7]]

    def test_rowcount_global(self, stock, conn):
        stock.execute("insert stock values ('A', 1, 1), ('B', 2, 2)")
        assert conn.execute("select @@rowcount").last.scalar() == 2


class TestUpdate:
    @pytest.fixture
    def filled(self, stock):
        stock.execute("insert stock values ('A', 10.0, 1), ('B', 20.0, 2)")
        return stock

    def test_update_all(self, filled):
        result = filled.execute("update stock set qty = 0")
        assert result.rowcount == 2
        assert filled.execute("select sum(qty) from stock").last.scalar() == 0

    def test_update_where(self, filled):
        filled.execute("update stock set price = price * 2 where symbol = 'A'")
        rows = filled.execute("select symbol, price from stock order by symbol").last
        assert rows.rows == [["A", 20.0], ["B", 20.0]]

    def test_update_sees_old_values(self, filled):
        # Both assignments use pre-update values of the row.
        filled.execute("update stock set price = qty, qty = price where symbol = 'A'")
        rows = filled.execute("select price, qty from stock where symbol = 'A'").last
        assert rows.rows == [[1.0, 10]]

    def test_update_zero_rows(self, filled):
        assert filled.execute(
            "update stock set qty = 9 where symbol = 'Z'").rowcount == 0

    def test_update_not_null_violation(self, filled):
        with pytest.raises(SchemaError):
            filled.execute("update stock set symbol = null where symbol = 'A'")

    def test_update_with_subquery_value(self, filled):
        filled.execute(
            "update stock set price = (select max(price) from stock) "
            "where symbol = 'A'")
        assert filled.execute(
            "select price from stock where symbol = 'A'").last.scalar() == 20.0


class TestDelete:
    @pytest.fixture
    def filled(self, stock):
        stock.execute("insert stock values ('A', 10.0, 1), ('B', 20.0, 2)")
        return stock

    def test_delete_where(self, filled):
        assert filled.execute("delete stock where symbol = 'A'").rowcount == 1
        assert filled.execute("select count(*) from stock").last.scalar() == 1

    def test_delete_all_without_from(self, filled):
        assert filled.execute("delete stock").rowcount == 2

    def test_delete_zero_rows(self, filled):
        assert filled.execute("delete stock where qty > 99").rowcount == 0

    def test_truncate(self, filled):
        result = filled.execute("truncate table stock")
        assert result.rowcount == 2
        assert filled.execute("select count(*) from stock").last.scalar() == 0
