"""Property-based tests of engine invariants (hypothesis)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.sqlengine import SqlServer, connect
from repro.sqlengine.evaluator import _like_match
from repro.sqlengine.types import SqlType, sql_repr

_slow = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

symbols = st.text(
    alphabet=st.characters(whitelist_categories=("Lu",), max_codepoint=127),
    min_size=1, max_size=8,
)
prices = st.floats(min_value=0.01, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
quantities = st.integers(min_value=0, max_value=10**6)
rows = st.lists(st.tuples(symbols, prices, quantities), min_size=0, max_size=25)


def _fresh():
    server = SqlServer(default_database="propdb")
    conn = connect(server, user="p", database="propdb")
    conn.execute(
        "create table t (symbol varchar(10), price float, qty int)")
    return conn


def _load(conn, data):
    for symbol, price, qty in data:
        conn.execute(
            f"insert t values ({sql_repr(symbol)}, {price!r}, {qty})")


class TestRelationalInvariants:
    @_slow
    @given(data=rows)
    def test_count_matches_inserted_rows(self, data):
        conn = _fresh()
        _load(conn, data)
        assert conn.execute("select count(*) from t").last.scalar() == len(data)

    @_slow
    @given(data=rows)
    def test_projection_preserves_cardinality(self, data):
        conn = _fresh()
        _load(conn, data)
        assert len(conn.execute("select symbol from t").last.rows) == len(data)

    @_slow
    @given(data=rows, threshold=prices)
    def test_where_partitions_rows(self, data, threshold):
        conn = _fresh()
        _load(conn, data)
        above = conn.execute(
            f"select count(*) from t where price > {threshold!r}").last.scalar()
        not_above = conn.execute(
            f"select count(*) from t where not (price > {threshold!r})"
        ).last.scalar()
        assert above + not_above == len(data)

    @_slow
    @given(data=rows)
    def test_order_by_sorts(self, data):
        conn = _fresh()
        _load(conn, data)
        values = conn.execute(
            "select price from t order by price").last.column_values("price")
        assert values == sorted(values)

    @_slow
    @given(data=rows)
    def test_sum_matches_python(self, data):
        conn = _fresh()
        _load(conn, data)
        got = conn.execute("select sum(qty) from t").last.scalar()
        expected = sum(q for _s, _p, q in data) if data else None
        assert got == expected

    @_slow
    @given(data=rows)
    def test_delete_then_count_zero(self, data):
        conn = _fresh()
        _load(conn, data)
        conn.execute("delete t")
        assert conn.execute("select count(*) from t").last.scalar() == 0

    @_slow
    @given(data=rows)
    def test_transaction_rollback_is_identity(self, data):
        conn = _fresh()
        _load(conn, data)
        before = conn.execute("select * from t").last.rows
        conn.execute("begin tran")
        conn.execute("update t set qty = qty + 1")
        conn.execute("delete t where price > 10")
        conn.execute("insert t values ('ZZ', 1.0, 1)")
        conn.execute("rollback")
        after = conn.execute("select * from t").last.rows
        assert before == after

    @_slow
    @given(data=rows)
    def test_select_into_copies_exactly(self, data):
        conn = _fresh()
        _load(conn, data)
        conn.execute("select * into c from t")
        assert sorted(map(tuple, conn.execute("select * from c").last.rows)) \
            == sorted(map(tuple, conn.execute("select * from t").last.rows))


class TestScalarInvariants:
    @given(value=st.text(max_size=50))
    def test_sql_repr_string_round_trips(self, value):
        conn = _fresh()
        assert conn.execute(f"select {sql_repr(value)}").last.scalar() == value

    @given(value=st.integers(min_value=-10**9, max_value=10**9))
    def test_int_round_trips(self, value):
        assert SqlType.parse("int").coerce(str(value)) == value

    @given(text=st.text(alphabet="abcXYZ", max_size=12))
    def test_like_percent_matches_everything(self, text):
        assert _like_match(text, "%")

    @given(text=st.text(alphabet="abcXYZ", min_size=1, max_size=12))
    def test_like_exact_self_match(self, text):
        assert _like_match(text, text)

    @given(text=st.text(alphabet="abc", min_size=1, max_size=12))
    def test_like_underscore_arity(self, text):
        assert _like_match(text, "_" * len(text))
        assert not _like_match(text, "_" * (len(text) + 1))
