"""ResultSet / BatchResult behaviour (the TDS analogue)."""

import pytest

from repro.sqlengine.results import BatchResult, ResultSet


class TestResultSet:
    def test_column_access(self):
        result = ResultSet(["a", "b"], [[1, 2], [3, 4]])
        assert result.column_values("b") == [2, 4]
        assert result.column_index("A") == 0  # case-insensitive

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            ResultSet(["a"], []).column_index("zz")

    def test_as_dicts(self):
        result = ResultSet(["x"], [[1]])
        assert result.as_dicts() == [{"x": 1}]

    def test_scalar(self):
        assert ResultSet(["n"], [[5]]).scalar() == 5

    def test_scalar_rejects_non_1x1(self):
        with pytest.raises(ValueError):
            ResultSet(["n"], [[1], [2]]).scalar()

    def test_format_table_alignment(self):
        text = ResultSet(["symbol", "price"], [["IBM", 10.5]]).format_table()
        lines = text.splitlines()
        assert lines[0].startswith("symbol")
        assert "IBM" in lines[2]

    def test_format_renders_null(self):
        text = ResultSet(["x"], [[None]]).format_table()
        assert "NULL" in text

    def test_iteration_and_len(self):
        result = ResultSet(["x"], [[1], [2]])
        assert len(result) == 2
        assert [row[0] for row in result] == [1, 2]


class TestBatchResult:
    def test_last(self):
        batch = BatchResult(result_sets=[ResultSet(["a"], []), ResultSet(["b"], [])])
        assert batch.last.columns == ["b"]

    def test_last_empty(self):
        assert BatchResult().last is None

    def test_merge(self):
        one = BatchResult(messages=["m1"], rowcount=1)
        two = BatchResult(messages=["m2"], rowcount=2,
                          result_sets=[ResultSet(["x"], [])])
        one.merge(two)
        assert one.messages == ["m1", "m2"]
        assert one.rowcount == 2
        assert len(one.result_sets) == 1

    def test_format_includes_messages_and_tables(self):
        batch = BatchResult(messages=["hello"],
                            result_sets=[ResultSet(["x"], [[1]])])
        text = batch.format()
        assert "hello" in text and "x" in text


class TestEngineProducedResults:
    def test_multiple_selects_multiple_result_sets(self, stock):
        stock.execute("insert stock values ('A', 1, 1)")
        result = stock.execute("select symbol from stock select qty from stock")
        assert len(result.result_sets) == 2

    def test_message_ordering(self, conn):
        result = conn.execute("print 'one' print 'two'")
        assert result.messages == ["one", "two"]

    def test_computed_column_names(self, conn):
        result = conn.execute("select 1 + 1, upper('x')").last
        assert result.columns == ["", "upper"]
