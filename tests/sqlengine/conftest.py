"""Run every sqlengine test four ways: plan cache on/off x planner on/off.

The statement/plan cache must be semantically transparent — a cached
batch has to behave exactly like a freshly parsed one — and so must the
cost-based DAG executor: a planned statement has to behave exactly like
the legacy AST walker.  Parametrizing the whole directory over the
cartesian product proves both: any test that passes only in one mode is
a transparency bug.
"""

import pytest

from repro.sqlengine import plancache, planner


@pytest.fixture(autouse=True, params=["plan-cache-on", "plan-cache-off"])
def plan_cache_mode(request, monkeypatch):
    """Force the default plan-cache mode for servers built in this test."""
    monkeypatch.setattr(
        plancache, "DEFAULT_ENABLED", request.param == "plan-cache-on")
    return request.param


@pytest.fixture(autouse=True, params=["planner-on", "planner-off"])
def planner_mode(request, monkeypatch):
    """Force the default execution engine (DAG planner vs legacy walker)
    for servers built in this test."""
    monkeypatch.setattr(
        planner, "DEFAULT_ENABLED", request.param == "planner-on")
    return request.param
