"""Run every sqlengine test twice: plan cache force-on and force-off.

The statement/plan cache must be semantically transparent — a cached
batch has to behave exactly like a freshly parsed one.  Parametrizing
the whole directory over both modes proves it: any test that passes only
in one mode is a transparency bug.
"""

import pytest

from repro.sqlengine import plancache


@pytest.fixture(autouse=True, params=["plan-cache-on", "plan-cache-off"])
def plan_cache_mode(request, monkeypatch):
    """Force the default plan-cache mode for servers built in this test."""
    monkeypatch.setattr(
        plancache, "DEFAULT_ENABLED", request.param == "plan-cache-on")
    return request.param
