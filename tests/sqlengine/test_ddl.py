"""Integration tests for DDL: tables, databases, USE, name resolution."""

import pytest

from repro.sqlengine import SqlServer, connect
from repro.sqlengine.errors import CatalogError, SchemaError


class TestCreateDropTable:
    def test_create_and_query(self, conn):
        conn.execute("create table t (a int, b varchar(5))")
        assert conn.execute("select * from t").last.columns == ["a", "b"]

    def test_duplicate_create_raises(self, conn):
        conn.execute("create table t (a int)")
        with pytest.raises(CatalogError):
            conn.execute("create table t (a int)")

    def test_duplicate_column_raises(self, conn):
        with pytest.raises(SchemaError):
            conn.execute("create table t (a int, A varchar(5))")

    def test_drop_table(self, conn):
        conn.execute("create table t (a int)")
        conn.execute("drop table t")
        with pytest.raises(CatalogError):
            conn.execute("select * from t")

    def test_drop_missing_table_raises(self, conn):
        with pytest.raises(CatalogError):
            conn.execute("drop table ghost")

    def test_drop_multiple(self, server, conn):
        conn.execute("create table a (x int)")
        conn.execute("create table b (x int)")
        conn.execute("drop table a, b")
        assert server.table_names("sentineldb") == []

    def test_drop_table_drops_its_triggers(self, server, conn):
        conn.execute("create table t (a int)")
        conn.execute("create trigger tr on t for insert as print 'x'")
        assert server.trigger_names("sentineldb") == ["sharma.tr"]
        conn.execute("drop table t")
        assert server.trigger_names("sentineldb") == []


class TestAlterTable:
    def test_add_column_null_fills(self, conn):
        conn.execute("create table t (a int)")
        conn.execute("insert t values (1)")
        conn.execute("alter table t add b varchar(5) null")
        assert conn.execute("select * from t").last.rows == [[1, None]]

    def test_added_column_must_be_nullable(self, conn):
        conn.execute("create table t (a int)")
        with pytest.raises(SchemaError):
            conn.execute("alter table t add b int not null")

    def test_add_existing_column_raises(self, conn):
        conn.execute("create table t (a int)")
        with pytest.raises(SchemaError):
            conn.execute("alter table t add a int null")


class TestOwnership:
    def test_tables_are_owned_by_creating_user(self, server, conn):
        conn.execute("create table mine (a int)")
        assert server.table_names("sentineldb") == ["sharma.mine"]

    def test_dbo_fallback(self, server):
        dbo = connect(server, user="dbo", database="sentineldb")
        dbo.execute("create table shared (a int)")
        dbo.execute("insert shared values (5)")
        other = connect(server, user="guest", database="sentineldb")
        assert other.execute("select a from shared").last.scalar() == 5

    def test_own_table_shadows_dbo(self, server):
        dbo = connect(server, user="dbo", database="sentineldb")
        dbo.execute("create table t (a int)")
        dbo.execute("insert t values (1)")
        user = connect(server, user="guest", database="sentineldb")
        user.execute("create table t (a int)")
        user.execute("insert t values (2)")
        assert user.execute("select a from t").last.scalar() == 2
        assert user.execute("select a from dbo.t").last.scalar() == 1

    def test_explicit_owner_creation(self, server, conn):
        conn.execute("create table dbo.official (a int)")
        assert "dbo.official" in server.table_names("sentineldb")

    def test_three_part_name_across_databases(self, server, conn):
        server.catalog.create_database("otherdb")
        conn.execute("create table otherdb.sharma.remote (a int)")
        conn.execute("insert otherdb.sharma.remote values (3)")
        assert conn.execute(
            "select a from otherdb.sharma.remote").last.scalar() == 3


class TestDatabases:
    def test_create_use_drop(self, server):
        conn = connect(server, user="dbo", database="master")
        conn.execute("create database appdb")
        conn.execute("use appdb")
        conn.execute("create table t (a int)")
        assert server.table_names("appdb") == ["dbo.t"]
        conn.execute("use master")
        conn.execute("drop database appdb")
        assert not server.catalog.has_database("appdb")

    def test_use_unknown_database(self, conn):
        with pytest.raises(CatalogError):
            conn.execute("use nowhere")

    def test_duplicate_database(self, conn):
        with pytest.raises(CatalogError):
            conn.execute("create database sentineldb")

    def test_server_creates_master_and_default(self):
        server = SqlServer(default_database="mydb")
        assert server.catalog.has_database("master")
        assert server.catalog.has_database("mydb")
