"""Property-based invariants for UNION, CASE, views, and indexes."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.sqlengine import SqlServer, connect
from repro.sqlengine.types import sql_repr

_slow = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

values = st.integers(min_value=-100, max_value=100)
rows = st.lists(values, min_size=0, max_size=20)


def _fresh():
    server = SqlServer(default_database="p")
    conn = connect(server, user="u", database="p")
    conn.execute("create table t (a int)")
    return conn


def _load(conn, data):
    for value in data:
        conn.execute(f"insert t values ({value})")


class TestUnionAlgebra:
    @_slow
    @given(data=rows)
    def test_union_all_with_self_doubles(self, data):
        conn = _fresh()
        _load(conn, data)
        combined = conn.execute(
            "select a from t union all select a from t").last
        assert len(combined.rows) == 2 * len(data)

    @_slow
    @given(data=rows)
    def test_union_with_self_is_distinct(self, data):
        conn = _fresh()
        _load(conn, data)
        combined = conn.execute("select a from t union select a from t").last
        assert sorted(r[0] for r in combined.rows) == sorted(set(data))

    @_slow
    @given(data=rows, pivot=values)
    def test_union_of_partition_is_whole(self, data, pivot):
        conn = _fresh()
        _load(conn, data)
        combined = conn.execute(
            f"select a from t where a < {pivot} union all "
            f"select a from t where not (a < {pivot})").last
        assert sorted(r[0] for r in combined.rows) == sorted(data)

    @_slow
    @given(data=rows)
    def test_union_order_by_sorts_combined(self, data):
        conn = _fresh()
        _load(conn, data)
        combined = conn.execute(
            "select a from t union all select a from t order by a").last
        got = [r[0] for r in combined.rows]
        assert got == sorted(got)


class TestCaseTotality:
    @_slow
    @given(data=rows, pivot=values)
    def test_case_partition_counts(self, data, pivot):
        conn = _fresh()
        _load(conn, data)
        result = conn.execute(
            "select "
            f"sum(case when a < {pivot} then 1 else 0 end), "
            f"sum(case when a < {pivot} then 0 else 1 end) "
            "from t").last.rows[0]
        low = sum(1 for v in data if v < pivot)
        expected = [low, len(data) - low] if data else [None, None]
        assert result == expected

    @_slow
    @given(value=values)
    def test_simple_case_equivalent_to_searched(self, value):
        conn = _fresh()
        simple = conn.execute(
            f"select case {value} when 0 then 'z' when 1 then 'o' "
            "else 'other' end").last.scalar()
        searched = conn.execute(
            f"select case when {value} = 0 then 'z' "
            f"when {value} = 1 then 'o' else 'other' end").last.scalar()
        assert simple == searched


class TestViewTransparency:
    @_slow
    @given(data=rows, pivot=values)
    def test_view_equals_inline_query(self, data, pivot):
        conn = _fresh()
        _load(conn, data)
        conn.execute(f"create view v as select a from t where a > {pivot}")
        via_view = conn.execute("select a from v order by a").last.rows
        inline = conn.execute(
            f"select a from t where a > {pivot} order by a").last.rows
        assert via_view == inline


class TestIndexEquivalence:
    @_slow
    @given(data=rows, probe=values)
    def test_indexed_equals_scanned(self, data, probe):
        conn = _fresh()
        _load(conn, data)
        scanned = conn.execute(
            f"select a from t where a = {probe}").last.rows
        conn.execute("create index ix on t (a)")
        indexed = conn.execute(
            f"select a from t where a = {probe}").last.rows
        assert indexed == scanned

    @_slow
    @given(data=rows, probe=values, extra=values)
    def test_index_survives_mutation_sequence(self, data, probe, extra):
        conn = _fresh()
        conn.execute("create index ix on t (a)")
        _load(conn, data)
        conn.execute(f"insert t values ({extra})")
        conn.execute(f"delete t where a = {probe}")
        conn.execute(f"update t set a = a + 1 where a = {extra}")
        remaining = [v for v in data + [extra] if v != probe]
        remaining = [
            v + 1 if v == extra and extra != probe else v for v in remaining]
        # Compare against a scan of the same table (ground truth).
        for candidate in set(remaining) | {probe, extra}:
            indexed = conn.execute(
                f"select a from t where a = {candidate}").last.rows
            assert all(row[0] == candidate for row in indexed)
            assert len(indexed) == remaining.count(candidate)
