"""Edge cases of expression evaluation (NULL logic, coercions, LIKE)."""

import pytest

from repro.sqlengine.errors import ExecutionError


class TestThreeValuedLogic:
    """SQL's Kleene logic, observed through WHERE."""

    @pytest.fixture
    def t(self, conn):
        conn.execute("create table t (a int, b int)")
        conn.execute("insert t values (1, null)")
        return conn

    def count(self, conn, predicate):
        return conn.execute(
            f"select count(*) from t where {predicate}").last.scalar()

    def test_null_and_false_is_false(self, t):
        # b = 0 is unknown, 1 = 2 is false: unknown AND false -> false,
        # NOT(false) -> true.
        assert self.count(t, "not (b = 0 and 1 = 2)") == 1

    def test_null_and_true_is_unknown(self, t):
        assert self.count(t, "b = 0 and 1 = 1") == 0
        assert self.count(t, "not (b = 0 and 1 = 1)") == 0

    def test_null_or_true_is_true(self, t):
        assert self.count(t, "b = 0 or 1 = 1") == 1

    def test_null_or_false_is_unknown(self, t):
        assert self.count(t, "b = 0 or 1 = 2") == 0

    def test_null_arithmetic_propagates(self, t):
        assert t.execute("select b + 1 from t").last.scalar() is None
        assert t.execute("select b * 0 from t").last.scalar() is None

    def test_null_equals_null_is_unknown(self, t):
        assert self.count(t, "b = b") == 0
        assert self.count(t, "b <> b") == 0

    def test_not_in_with_null_in_list(self, t):
        assert self.count(t, "a not in (2, null)") == 0


class TestCoercionInComparisons:
    def test_int_vs_string_number(self, conn):
        assert conn.execute("select 1 where 5 = '5'").last.rows == [[True]]

    def test_string_vs_float(self, conn):
        assert conn.execute("select 1 where '2.5' < 3.0").last.rows == [[True]]

    def test_non_numeric_string_falls_back_to_text(self, conn):
        assert conn.execute("select 1 where 'abc' = 'abc'").last.rows == [[True]]

    def test_datetime_vs_string(self, conn):
        rows = conn.execute(
            "select 1 where getdate() > '1999-01-01'").last.rows
        assert rows == [[True]]

    def test_incomparable_types_raise(self, conn):
        with pytest.raises(ExecutionError):
            conn.execute("select 1 where getdate() > 5")


class TestLikePatterns:
    @pytest.mark.parametrize("value, pattern, expected", [
        ("hello", "h%", True),
        ("hello", "%o", True),
        ("hello", "h_llo", True),
        ("hello", "H%", True),        # case-insensitive, like Sybase default
        ("hello", "x%", False),
        ("hello", "h", False),
        ("50%", "50[%]", True),       # bracket escapes the wildcard
        ("5a", "5[ab]", True),
        ("5c", "5[ab]", False),
        ("5c", "5[^ab]", True),
    ])
    def test_match(self, conn, value, pattern, expected):
        rows = conn.execute(
            f"select 1 where '{value}' like '{pattern}'").last.rows
        assert bool(rows) is expected


class TestStringConcat:
    def test_plus_concatenates(self, conn):
        assert conn.execute("select 'a' + 'b'").last.scalar() == "ab"

    def test_number_coerced_in_concat(self, conn):
        assert conn.execute("select 'n=' + convert(varchar, 5)").last.scalar() == "n=5"

    def test_null_concat_is_null(self, conn):
        assert conn.execute("select 'a' + null").last.scalar() is None


class TestDivisionSemantics:
    def test_int_division(self, conn):
        assert conn.execute("select 9 / 2").last.scalar() == 4

    def test_float_division(self, conn):
        assert conn.execute("select 9.0 / 2").last.scalar() == 4.5

    def test_mixed_division(self, conn):
        assert conn.execute("select 9 / 2.0").last.scalar() == 4.5

    def test_negative_int_division_truncates_toward_zero(self, conn):
        assert conn.execute("select -9 / 2").last.scalar() == -4

    def test_modulo_sign(self, conn):
        assert conn.execute("select -7 % 3").last.scalar() == -1
