"""Incremental index maintenance and index-aware scans.

The regression this file pins: a workload of N inserts followed by a
lookup pays ONE full index build, not N rebuilds (the old ``_ensure``
rebuilt on every version bump).
"""

import pytest


@pytest.fixture
def indexed(stock, server):
    """The stock table with an equality index on ``symbol``."""
    stock.execute("create index idx_symbol on stock (symbol)")
    table = server.catalog.get_database("sentineldb").get_table(
        "sharma", "stock")
    index = table.index_on("symbol")
    assert index is not None
    return stock, table, index


class TestIncrementalMaintenance:
    def test_n_inserts_one_lookup_one_build(self, indexed):
        conn, table, index = indexed
        for i in range(50):
            conn.execute(f"insert stock values ('S{i}', {i}, {i})")
        conn.execute("select * from stock where symbol = 'S7'")
        assert index.rebuild_count == 1

    def test_interleaved_inserts_and_lookups_one_build(self, indexed):
        conn, table, index = indexed
        for i in range(20):
            conn.execute(f"insert stock values ('S{i}', {i}, {i})")
            result = conn.execute(
                f"select qty from stock where symbol = 'S{i}'")
            assert result.result_sets[0].rows == [[i]]
        # the first lookup builds once; every later insert folds in
        assert index.rebuild_count == 1

    def test_delete_maintained_without_rebuild(self, indexed):
        conn, table, index = indexed
        for i in range(10):
            conn.execute(f"insert stock values ('S{i}', {i}, {i})")
        conn.execute("select * from stock where symbol = 'S1'")
        builds = index.rebuild_count
        conn.execute("delete stock where symbol = 'S1'")
        result = conn.execute("select * from stock where symbol = 'S1'")
        assert result.result_sets[0].rows == []
        assert index.rebuild_count == builds

    def test_update_marks_dirty_and_rebuilds_once(self, indexed):
        conn, table, index = indexed
        for i in range(10):
            conn.execute(f"insert stock values ('S{i}', {i}, {i})")
        conn.execute("select * from stock where symbol = 'S1'")
        builds = index.rebuild_count
        # in-place UPDATE of the indexed column cannot be tracked cheaply
        conn.execute("update stock set symbol = 'Z1' where symbol = 'S1'")
        result = conn.execute("select qty from stock where symbol = 'Z1'")
        assert result.result_sets[0].rows == [[1]]
        assert index.rebuild_count == builds + 1

    def test_update_of_other_column_keeps_index_clean(self, indexed):
        conn, table, index = indexed
        for i in range(10):
            conn.execute(f"insert stock values ('S{i}', {i}, {i})")
        conn.execute("select * from stock where symbol = 'S1'")
        builds = index.rebuild_count
        # The paper's hottest statement shape: bump a counter column by
        # an indexed key (the generated trigger's vNo update).
        for _ in range(5):
            conn.execute("update stock set qty = qty + 1 where symbol = 'S1'")
        result = conn.execute("select qty from stock where symbol = 'S1'")
        assert result.result_sets[0].rows == [[6]]
        assert index.rebuild_count == builds

    def test_lookup_returns_copy_not_live_bucket(self, indexed):
        conn, table, index = indexed
        conn.execute("insert stock values ('A', 1, 1)")
        bucket = index.lookup(table, "A")
        bucket.append(["bogus", 0, 0])
        assert len(index.lookup(table, "A")) == 1


class TestIndexAwareScans:
    def test_equality_select_counts_index_scan(self, indexed, server):
        conn, table, index = indexed
        conn.execute("insert stock values ('A', 1, 1)")
        before = server.index_scans
        conn.execute("select * from stock where symbol = 'A'")
        assert server.index_scans == before + 1

    def test_in_list_counts_index_scan(self, indexed, server):
        conn, table, index = indexed
        conn.execute("insert stock values ('A', 1, 1)")
        conn.execute("insert stock values ('B', 2, 2)")
        before = server.index_scans
        result = conn.execute(
            "select symbol from stock where symbol in ('A', 'B')")
        assert server.index_scans == before + 1
        assert sorted(row[0] for row in result.result_sets[0].rows) == [
            "A", "B"]

    def test_unindexed_predicate_scans(self, indexed, server):
        conn, table, index = indexed
        conn.execute("insert stock values ('A', 1, 1)")
        before = server.index_scans
        conn.execute("select * from stock where qty = 1")
        assert server.index_scans == before

    def test_indexed_results_match_full_scan(self, stock, server):
        for i in range(25):
            stock.execute(f"insert stock values ('S{i % 5}', {i}, {i})")
        plain = stock.execute(
            "select qty from stock where symbol = 'S3'").result_sets[0].rows
        stock.execute("create index idx_symbol on stock (symbol)")
        indexed_rows = stock.execute(
            "select qty from stock where symbol = 'S3'").result_sets[0].rows
        assert sorted(indexed_rows) == sorted(plain)

    def test_indexed_update_and_delete_match_semantics(self, indexed, server):
        conn, table, index = indexed
        for i in range(10):
            conn.execute(f"insert stock values ('S{i % 2}', {i}, {i})")
        before = server.index_scans
        conn.execute("update stock set price = 99 where symbol = 'S1'")
        conn.execute("delete stock where symbol = 'S0'")
        assert server.index_scans == before + 2
        rows = conn.execute("select symbol, price from stock").result_sets[0]
        assert all(row[0] == "S1" and row[1] == 99.0 for row in rows.rows)
        assert len(rows) == 5

    def test_join_probe_uses_index(self, stock, server):
        stock.execute(
            "create table quotes (symbol varchar(10) null, bid float null)")
        stock.execute("create index idx_q on quotes (symbol)")
        for i in range(5):
            stock.execute(f"insert stock values ('S{i}', {i}, {i})")
            stock.execute(f"insert quotes values ('S{i}', {i * 10})")
        before = server.index_scans
        result = stock.execute(
            "select quotes.bid from stock, quotes "
            "where stock.symbol = quotes.symbol and stock.qty >= 3")
        assert server.index_scans > before
        assert sorted(row[0] for row in result.result_sets[0].rows) == [
            30.0, 40.0]
