"""Unit tests for SQL types, coercion, and literal rendering."""

import datetime as dt

import pytest

from repro.sqlengine import SqlType, format_datetime, parse_datetime, sql_repr
from repro.sqlengine.errors import SqlTypeError


class TestTypeParsing:
    @pytest.mark.parametrize("alias, canonical", [
        ("INT", "int"), ("integer", "int"), ("smallint", "int"),
        ("FLOAT", "float"), ("real", "float"), ("numeric", "float"),
        ("VARCHAR", "varchar"), ("nvarchar", "varchar"),
        ("CHAR", "char"), ("TEXT", "text"), ("DATETIME", "datetime"),
        ("bit", "bit"),
    ])
    def test_aliases(self, alias, canonical):
        assert SqlType.parse(alias).name == canonical

    def test_unknown_type(self):
        with pytest.raises(SqlTypeError):
            SqlType.parse("blob")

    def test_varchar_default_length(self):
        assert SqlType.parse("varchar").length == 30

    def test_char_default_length(self):
        assert SqlType.parse("char").length == 10

    def test_length_ignored_for_numeric(self):
        assert SqlType.parse("numeric", 10).length is None

    def test_describe(self):
        assert SqlType.parse("varchar", 12).describe() == "varchar(12)"
        assert SqlType.parse("int").describe() == "int"

    def test_storage_length_matches_sybase(self):
        # Figure 5 reports datetime as 8 bytes, int as 4.
        assert SqlType.parse("datetime").storage_length == 8
        assert SqlType.parse("int").storage_length == 4
        assert SqlType.parse("varchar", 30).storage_length == 30


class TestCoercion:
    def test_null_passes_every_type(self):
        for name in ("int", "float", "varchar", "datetime", "bit", "text"):
            assert SqlType.parse(name).coerce(None) is None

    def test_int_from_string(self):
        assert SqlType.parse("int").coerce(" 42 ") == 42

    def test_int_from_integral_float(self):
        assert SqlType.parse("int").coerce(3.0) == 3

    def test_int_rejects_fractional(self):
        with pytest.raises(SqlTypeError):
            SqlType.parse("int").coerce(3.5)

    def test_float_from_int(self):
        value = SqlType.parse("float").coerce(2)
        assert value == 2.0 and isinstance(value, float)

    def test_varchar_truncates_silently(self):
        # Sybase truncates character data on insert.
        assert SqlType.parse("varchar", 3).coerce("abcdef") == "abc"

    def test_varchar_from_number(self):
        assert SqlType.parse("varchar", 10).coerce(5) == "5"

    def test_datetime_from_string(self):
        value = SqlType.parse("datetime").coerce("1999-02-01 12:30:00")
        assert value == dt.datetime(1999, 2, 1, 12, 30)

    def test_datetime_rejects_garbage(self):
        with pytest.raises(SqlTypeError):
            SqlType.parse("datetime").coerce("not a date")

    def test_bit_values(self):
        bit = SqlType.parse("bit")
        assert bit.coerce(True) == 1
        assert bit.coerce(0) == 0
        assert bit.coerce("true") == 1
        with pytest.raises(SqlTypeError):
            bit.coerce("maybe")


class TestDatetimeHelpers:
    def test_round_trip(self):
        stamp = dt.datetime(1999, 2, 1, 8, 30, 15)
        assert parse_datetime(format_datetime(stamp)) == stamp

    @pytest.mark.parametrize("text", [
        "1999-02-01", "1999-02-01 08:30", "02/01/1999",
        "Feb 01 1999 08:30AM",
    ])
    def test_accepted_formats(self, text):
        assert parse_datetime(text).year == 1999

    def test_rejects_unknown_format(self):
        with pytest.raises(SqlTypeError):
            parse_datetime("01.02.1999")


class TestSqlRepr:
    def test_null(self):
        assert sql_repr(None) == "NULL"

    def test_string_escaping(self):
        assert sql_repr("it's") == "'it''s'"

    def test_numbers(self):
        assert sql_repr(42) == "42"
        assert sql_repr(1.5) == "1.5"

    def test_datetime(self):
        rendered = sql_repr(dt.datetime(1999, 2, 1))
        assert rendered.startswith("'1999-02-01")

    def test_bool(self):
        assert sql_repr(True) == "1"
