"""CASE, UNION, views, indexes, and system procedures."""

import pytest

from repro.sqlengine.errors import (
    CatalogError,
    ExecutionError,
    IntegrityError,
    SqlParseError,
)


@pytest.fixture
def t(conn):
    conn.execute("create table t (a int, b varchar(10))")
    conn.execute("insert t values (1, 'x'), (2, 'y'), (3, 'x')")
    return conn


class TestCase:
    def test_searched_case(self, t):
        rows = t.execute(
            "select a, case when a > 2 then 'big' else 'small' end k "
            "from t order by a").last
        assert rows.rows == [[1, "small"], [2, "small"], [3, "big"]]

    def test_simple_case(self, t):
        rows = t.execute(
            "select case b when 'x' then 1 when 'y' then 2 end "
            "from t order by a").last
        assert [r[0] for r in rows] == [1, 2, 1]

    def test_no_match_no_else_is_null(self, t):
        assert t.execute(
            "select case 9 when 1 then 'one' end").last.scalar() is None

    def test_first_matching_when_wins(self, conn):
        assert conn.execute(
            "select case when 1 = 1 then 'first' when 1 = 1 then 'second' end"
        ).last.scalar() == "first"

    def test_case_in_where(self, t):
        rows = t.execute(
            "select a from t where case when b = 'x' then 1 else 0 end = 1 "
            "order by a").last
        assert [r[0] for r in rows] == [1, 3]

    def test_case_with_aggregate(self, t):
        assert t.execute(
            "select case when count(*) > 2 then 'many' else 'few' end from t"
        ).last.scalar() == "many"

    def test_nested_case(self, t):
        value = t.execute(
            "select case when 1 = 1 then case when 2 = 2 then 'inner' end end"
        ).last.scalar()
        assert value == "inner"

    def test_case_requires_when(self, conn):
        with pytest.raises(SqlParseError):
            conn.execute("select case else 1 end")


class TestUnion:
    def test_union_dedupes(self, t):
        rows = t.execute("select b from t union select b from t").last
        assert sorted(r[0] for r in rows) == ["x", "y"]

    def test_union_all_keeps_duplicates(self, t):
        rows = t.execute("select b from t union all select b from t").last
        assert len(rows.rows) == 6

    def test_union_different_tables(self, t, conn):
        conn.execute("create table u (a int)")
        conn.execute("insert u values (99)")
        rows = conn.execute(
            "select a from t union select a from u order by a").last
        assert [r[0] for r in rows] == [1, 2, 3, 99]

    def test_order_by_applies_to_whole_union(self, t):
        rows = t.execute(
            "select a from t where a = 1 union "
            "select a from t where a = 3 union "
            "select a from t where a = 2 order by a desc").last
        assert [r[0] for r in rows] == [3, 2, 1]

    def test_order_by_position(self, t):
        rows = t.execute(
            "select a, b from t where a < 3 union "
            "select a, b from t where a = 3 order by 1 desc").last
        assert rows.rows[0][0] == 3

    def test_arity_mismatch(self, t):
        with pytest.raises(ExecutionError):
            t.execute("select a from t union select a, b from t")

    def test_union_into(self, t, conn):
        conn.execute(
            "select a into un from t where a = 1 union "
            "select a from t where a = 3")
        assert conn.execute("select count(*) from un").last.scalar() == 2

    def test_union_in_subquery(self, t):
        rows = t.execute(
            "select a from t where a in "
            "(select a from t where a = 1 union select a from t where a = 3) "
            "order by a").last
        assert [r[0] for r in rows] == [1, 3]

    def test_columns_named_from_first_select(self, t):
        result = t.execute(
            "select a as one from t where a = 1 union select a from t "
            "where a = 2").last
        assert result.columns == ["one"]

    def test_three_way_mixed_all(self, t):
        # UNION (not ALL) anywhere dedupes the whole result, like T-SQL
        # evaluated left to right with our single-pass semantics.
        rows = t.execute(
            "select b from t union all select b from t union select b from t"
        ).last
        assert sorted(r[0] for r in rows) == ["x", "y"]


class TestViews:
    def test_view_reflects_base_table(self, t, conn):
        conn.execute("create view vx as select a from t where b = 'x'")
        assert len(conn.execute("select * from vx").last.rows) == 2
        conn.execute("insert t values (7, 'x')")
        assert len(conn.execute("select * from vx").last.rows) == 3

    def test_view_over_join_and_aggregate(self, t, conn):
        conn.execute(
            "create view counts as "
            "select b, count(*) n from t group by b")
        rows = conn.execute("select * from counts order by b").last
        assert rows.rows == [["x", 2], ["y", 1]]

    def test_view_of_view(self, t, conn):
        conn.execute("create view v1 as select a, b from t where a > 1")
        conn.execute("create view v2 as select a from v1 where b = 'x'")
        assert conn.execute("select * from v2").last.rows == [[3]]

    def test_view_joins_with_table(self, t, conn):
        conn.execute("create view vx as select a from t where b = 'x'")
        rows = conn.execute(
            "select t.b from t, vx where t.a = vx.a order by t.a").last
        assert [r[0] for r in rows] == ["x", "x"]

    def test_views_are_read_only(self, t, conn):
        conn.execute("create view vx as select a from t")
        for sql in ("insert vx values (9)",
                    "update vx set a = 0",
                    "delete vx"):
            with pytest.raises(ExecutionError):
                conn.execute(sql)

    def test_drop_view(self, t, conn):
        conn.execute("create view vx as select a from t")
        conn.execute("drop view vx")
        with pytest.raises(CatalogError):
            conn.execute("select * from vx")

    def test_duplicate_name_with_table_rejected(self, t, conn):
        with pytest.raises(CatalogError):
            conn.execute("create view t as select 1 one")

    def test_view_source_preserved(self, t, conn, server):
        conn.execute("create view vx as select a from t")
        db = server.catalog.get_database("sentineldb")
        view = db.find_view("vx", "sharma")
        assert view.source.startswith("create view vx as")

    def test_view_of_union(self, t, conn):
        conn.execute(
            "create view vu as select a from t where a = 1 "
            "union select a from t where a = 3")
        assert len(conn.execute("select * from vu").last.rows) == 2

    def test_rollback_undoes_create_view(self, t, conn, server):
        conn.execute("begin tran")
        conn.execute("create view vx as select a from t")
        conn.execute("rollback")
        assert server.view_names("sentineldb") == []


class TestIndexes:
    def test_index_returns_same_results(self, t, conn):
        before = conn.execute("select * from t where a = 2").last.rows
        conn.execute("create index ia on t (a)")
        after = conn.execute("select * from t where a = 2").last.rows
        assert before == after

    def test_index_used_after_mutations(self, t, conn):
        conn.execute("create index ia on t (a)")
        conn.execute("insert t values (42, 'z')")
        assert conn.execute("select b from t where a = 42").last.rows == [["z"]]
        conn.execute("update t set a = 43 where a = 42")
        assert conn.execute("select b from t where a = 43").last.rows == [["z"]]
        assert conn.execute("select b from t where a = 42").last.rows == []
        conn.execute("delete t where a = 43")
        assert conn.execute("select b from t where a = 43").last.rows == []

    def test_index_with_join_predicate(self, t, conn):
        conn.execute("create index ia on t (a)")
        rows = conn.execute(
            "select x.b from t x, t y where x.a = 2 and y.a = x.a").last
        assert rows.rows == [["y"]]

    def test_string_index_agrees_with_scan(self, t, conn):
        # '=' on strings is case-sensitive; the index must agree.
        unindexed = conn.execute("select * from t where b = 'x'").last.rows
        miss = conn.execute("select * from t where b = 'X'").last.rows
        conn.execute("create index ib on t (b)")
        assert conn.execute("select * from t where b = 'x'").last.rows == unindexed
        assert conn.execute("select * from t where b = 'X'").last.rows == miss == []

    def test_unique_index_rejects_existing_duplicates(self, t, conn):
        with pytest.raises(IntegrityError):
            conn.execute("create unique index ub on t (b)")

    def test_unique_index_blocks_inserts(self, t, conn):
        conn.execute("create unique index ua on t (a)")
        with pytest.raises(IntegrityError):
            conn.execute("insert t values (2, 'dup')")

    def test_unique_index_blocks_updates(self, t, conn):
        conn.execute("create unique index ua on t (a)")
        with pytest.raises(IntegrityError):
            conn.execute("update t set a = 1 where a = 2")

    def test_drop_index(self, t, conn):
        conn.execute("create index ia on t (a)")
        conn.execute("drop index t.ia")
        assert conn.execute("select b from t where a = 2").last.rows == [["y"]]

    def test_duplicate_index_name(self, t, conn):
        conn.execute("create index ia on t (a)")
        with pytest.raises(IntegrityError):
            conn.execute("create index ia on t (b)")

    def test_index_on_missing_column(self, t, conn):
        from repro.sqlengine.errors import SchemaError

        with pytest.raises(SchemaError):
            conn.execute("create index iz on t (zz)")

    def test_null_values_not_indexed_but_matchable(self, t, conn):
        conn.execute("insert t values (null, 'n')")
        conn.execute("create index ia on t (a)")
        # Equality with NULL yields no rows regardless of the index.
        assert conn.execute("select * from t where a = null").last.rows == []
        assert len(conn.execute("select * from t where a is null").last.rows) == 1


class TestSystemProcedures:
    def test_sp_help_lists_objects(self, t, conn):
        conn.execute("create view vx as select a from t")
        conn.execute("create proc p1 as select 1")
        result = conn.execute("exec sp_help").last
        kinds = {(row[0], row[2]) for row in result.rows}
        assert ("t", "user table") in kinds
        assert ("vx", "view") in kinds
        assert ("p1", "stored procedure") in kinds

    def test_sp_help_table_layout(self, t, conn):
        result = conn.execute("exec sp_help 't'")
        layout = result.result_sets[1]
        assert layout.columns == ["Column_name", "Type", "Length", "Nulls"]
        assert layout.rows[0][0] == "a"

    def test_sp_helptext_procedure(self, conn):
        conn.execute("create proc p_src as select 42")
        result = conn.execute("exec sp_helptext 'p_src'").last
        assert "select 42" in "\n".join(row[0] for row in result.rows)

    def test_sp_helptext_view(self, t, conn):
        conn.execute("create view vx as select a from t")
        result = conn.execute("exec sp_helptext 'vx'").last
        assert result.rows[0][0].startswith("create view")

    def test_sp_tables(self, t, conn):
        conn.execute("create view vx as select a from t")
        result = conn.execute("exec sp_tables").last
        types = {row[2]: row[3] for row in result.rows}
        assert types["t"] == "TABLE"
        assert types["vx"] == "VIEW"

    def test_sp_helpindex(self, t, conn):
        conn.execute("create unique index ua on t (a)")
        result = conn.execute("exec sp_helpindex 't'").last
        assert result.rows == [["ua", "a", "unique"]]

    def test_sp_helpdb(self, conn):
        result = conn.execute("exec sp_helpdb").last
        names = [row[0] for row in result.rows]
        assert "master" in names and "sentineldb" in names

    def test_unknown_object(self, conn):
        with pytest.raises(CatalogError):
            conn.execute("exec sp_help 'ghost'")
