"""Scalar builtin functions, including the syb_sendmsg notification hook."""

import datetime as dt

import pytest

from repro.sqlengine import SqlServer, connect
from repro.sqlengine.errors import ExecutionError


class TestStringFunctions:
    def test_upper_lower(self, conn):
        assert conn.execute("select upper('ab'), lower('CD')").last.rows == [
            ["AB", "cd"]]

    def test_len(self, conn):
        assert conn.execute("select len('hello')").last.scalar() == 5

    def test_substring(self, conn):
        assert conn.execute("select substring('hello', 2, 3)").last.scalar() == "ell"

    def test_charindex(self, conn):
        assert conn.execute("select charindex('ll', 'hello')").last.scalar() == 3
        assert conn.execute("select charindex('zz', 'hello')").last.scalar() == 0

    def test_ltrim_rtrim(self, conn):
        assert conn.execute("select ltrim('  x'), rtrim('x  ')").last.rows == [
            ["x", "x"]]

    def test_null_propagation(self, conn):
        assert conn.execute("select upper(null)").last.scalar() is None


class TestNumericFunctions:
    def test_abs_round_floor_ceiling(self, conn):
        row = conn.execute(
            "select abs(-3), round(2.567, 1), floor(2.9), ceiling(2.1)"
        ).last.rows[0]
        assert row == [3, 2.6, 2, 3]

    def test_isnull(self, conn):
        assert conn.execute("select isnull(null, 7)").last.scalar() == 7
        assert conn.execute("select isnull(5, 7)").last.scalar() == 5

    def test_coalesce(self, conn):
        assert conn.execute("select coalesce(null, null, 3)").last.scalar() == 3

    def test_convert(self, conn):
        assert conn.execute("select convert(varchar, 42)").last.scalar() == "42"
        assert conn.execute("select convert(int, '17')").last.scalar() == 17

    def test_integer_division_truncates(self, conn):
        assert conn.execute("select 7 / 2").last.scalar() == 3
        assert conn.execute("select -7 / 2").last.scalar() == -3

    def test_division_by_zero(self, conn):
        with pytest.raises(ExecutionError):
            conn.execute("select 1 / 0")

    def test_modulo(self, conn):
        assert conn.execute("select 7 % 3").last.scalar() == 1


class TestSessionFunctions:
    def test_user_and_db_name(self, conn):
        assert conn.execute("select user_name(), db_name()").last.rows == [
            ["sharma", "sentineldb"]]

    def test_getdate_uses_server_clock(self):
        frozen = dt.datetime(1999, 2, 1, 12, 0, 0)
        server = SqlServer(default_database="d", clock=lambda: frozen)
        conn = connect(server, database="d")
        assert conn.execute("select getdate()").last.scalar() == frozen

    def test_datediff_and_dateadd(self, conn):
        assert conn.execute(
            "select datediff(minute, '1999-02-01 10:00', '1999-02-01 11:30')"
        ).last.scalar() == 90
        moved = conn.execute(
            "select dateadd(hour, 2, '1999-02-01 10:00')").last.scalar()
        assert moved == dt.datetime(1999, 2, 1, 12, 0)

    def test_datename(self, conn):
        assert conn.execute(
            "select datename(month, '1999-02-01')").last.scalar() == "February"

    def test_object_id(self, stock):
        assert stock.execute("select object_id('stock')").last.scalar() is not None
        assert stock.execute("select object_id('ghost')").last.scalar() is None

    def test_unknown_function_raises(self, conn):
        with pytest.raises(ExecutionError):
            conn.execute("select frobnicate(1)")


class TestSybSendmsg:
    def test_returns_zero(self, server, conn):
        assert conn.execute(
            "select syb_sendmsg('127.0.0.1', 10006, 'hello')").last.scalar() == 0

    def test_datagram_reaches_sink(self, server, conn):
        received = []
        server.set_datagram_sink(lambda host, port, msg: received.append(
            (host, port, msg)))
        conn.execute("select syb_sendmsg('10.0.0.1', 9999, 'payload')")
        assert received == [("10.0.0.1", 9999, "payload")]

    def test_without_sink_messages_are_stashed(self, server, conn):
        conn.execute("select syb_sendmsg('h', 1, 'm')")
        assert server.unsunk_datagrams == [("h", 1, "m")]

    def test_assign_select_form_produces_no_result_set(self, server, conn):
        # The codegen uses `select @r = syb_sendmsg(...)` so that the
        # notification does not leak a result set to the client.
        result = conn.execute(
            "declare @r int select @r = syb_sendmsg('h', 1, 'm')")
        assert result.result_sets == []
        assert server.unsunk_datagrams == [("h", 1, "m")]
