"""Integration tests for the SELECT pipeline on the live engine."""

import pytest

from repro.sqlengine.errors import CatalogError, ExecutionError, SchemaError


@pytest.fixture
def filled(stock):
    stock.execute(
        "insert stock values ('IBM', 100.0, 10), ('MSFT', 50.0, 20), "
        "('ORCL', 25.0, 40), ('SUNW', 50.0, 5)"
    )
    return stock


class TestProjectionAndFilter:
    def test_star(self, filled):
        result = filled.execute("select * from stock").last
        assert result.columns == ["symbol", "price", "qty"]
        assert len(result.rows) == 4

    def test_column_projection(self, filled):
        result = filled.execute("select symbol from stock").last
        assert result.columns == ["symbol"]

    def test_computed_column_with_alias(self, filled):
        result = filled.execute(
            "select symbol, price * qty as notional from stock "
            "where symbol = 'IBM'").last
        assert result.rows == [["IBM", 1000.0]]

    def test_where_comparison(self, filled):
        rows = filled.execute("select symbol from stock where price >= 50").last
        assert sorted(r[0] for r in rows) == ["IBM", "MSFT", "SUNW"]

    def test_where_and_or(self, filled):
        rows = filled.execute(
            "select symbol from stock where price = 50 and qty > 10 "
            "or symbol = 'IBM'").last
        assert sorted(r[0] for r in rows) == ["IBM", "MSFT"]

    def test_where_like(self, filled):
        rows = filled.execute("select symbol from stock where symbol like '%S%'").last
        assert sorted(r[0] for r in rows) == ["MSFT", "SUNW"]

    def test_where_in_list(self, filled):
        rows = filled.execute(
            "select symbol from stock where symbol in ('IBM', 'ORCL')").last
        assert len(rows.rows) == 2

    def test_where_between(self, filled):
        rows = filled.execute(
            "select symbol from stock where price between 25 and 50").last
        assert sorted(r[0] for r in rows) == ["MSFT", "ORCL", "SUNW"]

    def test_false_constant_predicate(self, filled):
        # The `where 1 = 2` idiom of Figure 11's codegen.
        assert filled.execute("select * from stock where 1 = 2").last.rows == []

    def test_unknown_column(self, filled):
        with pytest.raises(SchemaError):
            filled.execute("select nosuch from stock")

    def test_unknown_table(self, filled):
        with pytest.raises(CatalogError):
            filled.execute("select * from nothere")


class TestNullSemantics:
    def test_null_comparison_filters_row(self, stock):
        stock.execute("insert stock values ('X', null, 1)")
        assert stock.execute("select * from stock where price > 0").last.rows == []
        assert stock.execute("select * from stock where price is null").last.rows != []

    def test_not_of_null_is_unknown(self, stock):
        stock.execute("insert stock values ('X', null, 1)")
        assert stock.execute(
            "select * from stock where not (price > 0)").last.rows == []

    def test_in_list_with_null_operand(self, stock):
        stock.execute("insert stock values ('X', null, 1)")
        assert stock.execute(
            "select * from stock where price in (1, 2)").last.rows == []


class TestAggregates:
    def test_count_star(self, filled):
        assert filled.execute("select count(*) from stock").last.scalar() == 4

    def test_count_ignores_nulls(self, filled):
        filled.execute("insert stock values ('X', null, 1)")
        assert filled.execute("select count(price) from stock").last.scalar() == 4

    def test_sum_avg_min_max(self, filled):
        row = filled.execute(
            "select sum(qty), avg(price), min(price), max(price) from stock"
        ).last.rows[0]
        assert row == [75, 56.25, 25.0, 100.0]

    def test_aggregate_over_empty_table(self, stock):
        row = stock.execute("select count(*), sum(qty) from stock").last.rows[0]
        assert row == [0, None]

    def test_group_by(self, filled):
        result = filled.execute(
            "select price, count(*) n from stock group by price order by price"
        ).last
        assert result.rows == [[25.0, 1], [50.0, 2], [100.0, 1]]

    def test_group_by_having(self, filled):
        result = filled.execute(
            "select price, count(*) n from stock group by price "
            "having count(*) > 1").last
        assert result.rows == [[50.0, 2]]

    def test_count_distinct(self, filled):
        assert filled.execute(
            "select count(distinct price) from stock").last.scalar() == 3

    def test_aggregate_arithmetic(self, filled):
        assert filled.execute(
            "select max(price) - min(price) from stock").last.scalar() == 75.0


class TestOrderingAndLimits:
    def test_order_by_asc(self, filled):
        rows = filled.execute("select symbol from stock order by price").last
        assert [r[0] for r in rows] == ["ORCL", "MSFT", "SUNW", "IBM"]

    def test_order_by_desc_then_secondary(self, filled):
        rows = filled.execute(
            "select symbol from stock order by price desc, symbol asc").last
        assert [r[0] for r in rows] == ["IBM", "MSFT", "SUNW", "ORCL"]

    def test_order_by_position(self, filled):
        rows = filled.execute("select symbol, price from stock order by 2").last
        assert rows.rows[0][0] == "ORCL"

    def test_order_by_output_alias(self, filled):
        rows = filled.execute(
            "select symbol, price + qty total from stock "
            "order by total desc").last
        assert rows.rows[0][0] == "IBM"      # 100 + 10
        assert rows.rows[-1][0] == "SUNW"    # 50 + 5

    def test_nulls_sort_first(self, filled):
        filled.execute("insert stock values ('NUL', null, 0)")
        rows = filled.execute("select symbol from stock order by price").last
        assert rows.rows[0][0] == "NUL"

    def test_top(self, filled):
        rows = filled.execute(
            "select top 2 symbol from stock order by price desc").last
        assert [r[0] for r in rows] == ["IBM", "MSFT"]

    def test_distinct(self, filled):
        rows = filled.execute("select distinct price from stock").last
        assert len(rows.rows) == 3


class TestJoinsAndSubqueries:
    def test_cross_join_with_where(self, filled, conn):
        conn.execute("create table ref (symbol varchar(10), sector varchar(20))")
        conn.execute(
            "insert ref values ('IBM', 'hardware'), ('MSFT', 'software')")
        result = conn.execute(
            "select stock.symbol, ref.sector from stock, ref "
            "where stock.symbol = ref.symbol order by stock.symbol").last
        assert result.rows == [["IBM", "hardware"], ["MSFT", "software"]]

    def test_alias_join(self, filled, conn):
        result = conn.execute(
            "select a.symbol from stock a, stock b "
            "where a.price < b.price and b.symbol = 'IBM' order by a.symbol"
        ).last
        assert [r[0] for r in result] == ["MSFT", "ORCL", "SUNW"]

    def test_ambiguous_column_raises(self, filled, conn):
        with pytest.raises(ExecutionError):
            conn.execute("select symbol from stock a, stock b")

    def test_scalar_subquery(self, filled):
        assert filled.execute(
            "select symbol from stock "
            "where price = (select max(price) from stock)").last.rows == [["IBM"]]

    def test_in_subquery(self, filled, conn):
        conn.execute("create table watch (symbol varchar(10))")
        conn.execute("insert watch values ('IBM'), ('ORCL')")
        rows = conn.execute(
            "select symbol from stock where symbol in "
            "(select symbol from watch) order by symbol").last
        assert [r[0] for r in rows] == ["IBM", "ORCL"]

    def test_correlated_exists(self, filled, conn):
        conn.execute("create table watch (symbol varchar(10))")
        conn.execute("insert watch values ('MSFT')")
        rows = conn.execute(
            "select symbol from stock where exists "
            "(select * from watch where watch.symbol = stock.symbol)").last
        assert rows.rows == [["MSFT"]]

    def test_scalar_subquery_multiple_rows_raises(self, filled):
        with pytest.raises(ExecutionError):
            filled.execute(
                "select * from stock where price = (select price from stock)")


class TestSelectInto:
    def test_clone_empty_schema(self, filled, conn):
        conn.execute("select * into stock_copy from stock where 1 = 2")
        result = conn.execute("select * from stock_copy").last
        assert result.columns == ["symbol", "price", "qty"]
        assert result.rows == []

    def test_copies_rows(self, filled, conn):
        conn.execute("select symbol, price into expensive from stock "
                     "where price > 40")
        assert len(conn.execute("select * from expensive").last.rows) == 3

    def test_into_existing_table_raises(self, filled, conn):
        with pytest.raises(CatalogError):
            conn.execute("select * into stock from stock")

    def test_into_requires_column_names(self, filled, conn):
        with pytest.raises(ExecutionError):
            conn.execute("select price * 2 into doubled from stock")

    def test_into_then_alter_add(self, filled, conn):
        # Figure 11's exact sequence.
        conn.execute("select * into snap from stock where 1 = 2")
        conn.execute("alter table snap add vNo int null")
        result = conn.execute("select * from snap").last
        assert result.columns == ["symbol", "price", "qty", "vNo"]


class TestSelectWithoutFrom:
    def test_constant_select(self, conn):
        assert conn.execute("select 40 + 2").last.scalar() == 42

    def test_function_select(self, conn):
        assert conn.execute("select upper('abc')").last.scalar() == "ABC"
