"""Native trigger semantics, including Section 2.2's documented limitations."""

import pytest

from repro.sqlengine import SqlServer, connect
from repro.sqlengine.errors import TriggerRecursionError


@pytest.fixture
def audited(stock, conn):
    conn.execute("create table audit (symbol varchar(10), what varchar(10))")
    return conn


class TestTriggerFiring:
    def test_insert_trigger_sees_inserted(self, audited):
        audited.execute(
            "create trigger tr_i on stock for insert as "
            "insert audit select symbol, 'ins' from inserted")
        audited.execute("insert stock values ('IBM', 1.0, 1)")
        assert audited.execute("select * from audit").last.rows == [["IBM", "ins"]]

    def test_delete_trigger_sees_deleted(self, audited):
        audited.execute("insert stock values ('IBM', 1.0, 1)")
        audited.execute(
            "create trigger tr_d on stock for delete as "
            "insert audit select symbol, 'del' from deleted")
        audited.execute("delete stock")
        assert audited.execute("select * from audit").last.rows == [["IBM", "del"]]

    def test_update_trigger_sees_both(self, audited):
        audited.execute("insert stock values ('IBM', 1.0, 1)")
        audited.execute(
            "create trigger tr_u on stock for update as "
            "insert audit select symbol, 'old' from deleted "
            "insert audit select symbol, 'new' from inserted")
        audited.execute("update stock set price = 2.0")
        assert sorted(r[1] for r in audited.execute(
            "select * from audit").last.rows) == ["new", "old"]

    def test_statement_level_once_per_statement(self, audited):
        audited.execute(
            "create trigger tr on stock for insert as "
            "insert audit values ('batch', 'ins')")
        audited.execute("insert stock values ('A', 1, 1), ('B', 2, 2)")
        assert len(audited.execute("select * from audit").last.rows) == 1

    def test_trigger_fires_even_for_zero_row_update(self, audited):
        # Sybase statement triggers fire regardless of rows affected.
        audited.execute(
            "create trigger tr on stock for update as "
            "insert audit values ('none', 'upd')")
        audited.execute("update stock set qty = 1 where symbol = 'ZZZ'")
        assert len(audited.execute("select * from audit").last.rows) == 1

    def test_trigger_print_reaches_client(self, stock):
        stock.execute(
            "create trigger tr on stock for insert as print 'fired'")
        result = stock.execute("insert stock values ('A', 1, 1)")
        assert "fired" in result.messages

    def test_truncate_skips_triggers(self, audited):
        audited.execute("insert stock values ('A', 1, 1)")
        audited.execute(
            "create trigger tr on stock for delete as "
            "insert audit values ('x', 'del')")
        audited.execute("truncate table stock")
        assert audited.execute("select count(*) from audit").last.scalar() == 0

    def test_cascading_triggers(self, audited):
        audited.execute("create table audit2 (what varchar(10))")
        audited.execute(
            "create trigger tr1 on stock for insert as "
            "insert audit values ('c', 'ins')")
        audited.execute(
            "create trigger tr2 on audit for insert as "
            "insert audit2 values ('cascade')")
        audited.execute("insert stock values ('A', 1, 1)")
        assert audited.execute("select * from audit2").last.rows == [["cascade"]]

    def test_recursion_limit(self, conn):
        conn.execute("create table loopy (n int)")
        conn.execute(
            "create trigger tr on loopy for insert as "
            "insert loopy values (1)")
        with pytest.raises(TriggerRecursionError):
            conn.execute("insert loopy values (0)")

    def test_triggers_can_be_disabled_server_wide(self, audited, server):
        audited.execute(
            "create trigger tr on stock for insert as "
            "insert audit values ('x', 'ins')")
        server.triggers_enabled = False
        audited.execute("insert stock values ('A', 1, 1)")
        server.triggers_enabled = True
        assert audited.execute("select count(*) from audit").last.scalar() == 0


class TestSection22Limitations:
    """Each native restriction the paper lists, demonstrated live."""

    def test_one_trigger_per_operation_silent_overwrite(self, stock, server):
        stock.execute("create trigger first_tr on stock for insert as print 'one'")
        result = stock.execute(
            "create trigger second_tr on stock for insert as print 'two'")
        # No warning message is given before the overwrite occurs.
        assert result.messages == []
        assert server.last_displaced_triggers == ["sharma.first_tr"]
        out = stock.execute("insert stock values ('A', 1, 1)")
        assert out.messages == ["two"]

    def test_trigger_applies_to_exactly_one_table(self, stock, conn):
        # The syntax itself has no way to name two tables.
        from repro.sqlengine.errors import SqlParseError

        with pytest.raises(SqlParseError):
            conn.execute(
                "create trigger tr on stock, audit for insert as print 'x'")

    def test_no_named_or_composite_events(self, stock):
        # `event` is not part of the native dialect at all.
        from repro.sqlengine.errors import SqlParseError

        with pytest.raises(SqlParseError):
            stock.execute(
                "create trigger tr on stock for insert event e1 as print 'x'")

    def test_same_operation_two_triggers_different_tables_ok(self, stock, conn):
        conn.execute("create table other (a int)")
        conn.execute("create trigger tr1 on stock for insert as print 'a'")
        conn.execute("create trigger tr2 on other for insert as print 'b'")
        assert conn.execute("insert other values (1)").messages == ["b"]

    def test_update_trigger_does_not_displace_insert_trigger(self, stock, server):
        stock.execute("create trigger tri on stock for insert as print 'i'")
        stock.execute("create trigger tru on stock for update as print 'u'")
        assert server.last_displaced_triggers == []
        assert stock.execute("insert stock values ('A', 1, 1)").messages == ["i"]
