"""Optimizer-rule tests for the cost-based plan-DAG executor.

Each optimizer rule is pinned through its observable surfaces: the
EXPLAIN rendering of the chosen plan (pushed predicates, index
selection, join order, cardinality estimates), the plan-memo counters
(a cached hit must skip parsing AND planning), and — the transparency
contract — byte-identical results against the legacy AST walker on the
same server.

EXPLAIN always plans fresh, so its assertions hold on every
plan-cache/planner axis combination; tests that exercise the memo or
the DAG executor force the relevant server flags explicitly.
"""

import pytest

from repro.sqlengine import SqlServer, connect

QUOTES_DDL = (
    "create table quotes (symbol varchar(10), bid float, ask float)")
ORDERS_DDL = (
    "create table orders (symbol varchar(10), n int)")


@pytest.fixture
def joined(conn):
    """stock (16 rows), quotes (8 rows), orders (4 rows) — skewed
    cardinalities with a shared ``symbol`` join column."""
    conn.execute(
        "create table stock (symbol varchar(10), price float, qty int)")
    conn.execute(QUOTES_DDL)
    conn.execute(ORDERS_DDL)
    for i in range(16):
        conn.execute(
            f"insert stock values ('S{i % 8}', {100 + i}, {i})")
    for i in range(8):
        conn.execute(
            f"insert quotes values ('S{i}', {50 + i}, {51 + i})")
    for i in range(4):
        conn.execute(f"insert orders values ('S{i}', {10 * i})")
    return conn


def _plan(conn, sql):
    """The EXPLAIN lines of one statement."""
    result = conn.execute(f"explain {sql}")
    assert result.last.columns == ["plan"]
    return [row[0] for row in result.last.rows]


def _rows(conn, sql):
    result = conn.execute(sql)
    return result.last.rows if result.last else []


# ----------------------------------------------------------------------
# predicate pushdown

class TestPredicatePushdown:
    def test_single_table_conjunct_pushed_into_scan(self, joined):
        lines = _plan(joined, (
            "select s.symbol from stock s, quotes q "
            "where s.symbol = q.symbol and s.qty > 3"))
        [scan] = [line for line in lines if "pushed=[s.qty > 3]" in line]
        assert scan.strip().startswith(("Scan stock", "IndexScan stock"))
        assert not any("Filter" in line and "qty" in line for line in lines)

    def test_cross_table_or_stays_residual(self, joined):
        lines = _plan(joined, (
            "select s.symbol from stock s, quotes q "
            "where s.symbol = q.symbol and (s.qty > 3 or q.bid > 55)"))
        [residual] = [line for line in lines if "Filter" in line]
        assert "(s.qty > 3) or (q.bid > 55)" in residual
        assert not any("pushed" in line for line in lines)

    def test_subquery_conjunct_stays_residual(self, joined):
        lines = _plan(joined, (
            "select s.symbol from stock s, quotes q "
            "where s.symbol = q.symbol "
            "and s.qty > (select min(n) from orders)"))
        [residual] = [line for line in lines if "Filter" in line]
        assert "subquery" in residual
        assert not any("pushed" in line for line in lines)

    def test_pushed_predicate_lowers_the_estimate(self, joined):
        lines = _plan(joined, "select * from stock where qty > 3")
        [line] = [l for l in lines if "Scan" in l]
        assert "pushed=[qty > 3]" in line
        assert "of 16 rows" in line
        estimate = float(line.split("(~")[1].split(" of")[0])
        assert estimate < 16

    def test_always_false_where_returns_no_rows(self, joined):
        assert _rows(joined, "select * from stock where 1 = 0") == []

    def test_folded_where_still_filters(self, joined):
        rows = _rows(
            joined, "select * from stock where qty > 3 and 1 = 1")
        assert len(rows) == 12


# ----------------------------------------------------------------------
# join ordering

class TestJoinOrder:
    def test_smallest_table_drives_the_join(self, joined):
        lines = _plan(joined, (
            "select s.symbol from stock s, quotes q, orders o "
            "where s.symbol = q.symbol and q.symbol = o.symbol"))
        assert lines[0].startswith("join order: o -> ")

    def test_connected_tables_preferred_over_cartesian(self, joined):
        # q joins o; s is disconnected — the greedy order keeps the
        # connected pair together even though stock's estimate is larger.
        lines = _plan(joined, (
            "select s.symbol from stock s, quotes q, orders o "
            "where q.symbol = o.symbol"))
        assert lines[0] == "join order: o -> q -> s"

    def test_single_table_has_no_join_order_line(self, joined):
        lines = _plan(joined, "select * from stock")
        assert not any(line.startswith("join order") for line in lines)

    def test_pushdown_skews_the_order(self, joined):
        # An equality pushdown makes stock (16 rows) cheaper than
        # quotes (8 rows): ~1.6 estimated rows drive the join.
        lines = _plan(joined, (
            "select s.symbol from stock s, quotes q "
            "where s.symbol = q.symbol and s.symbol = 'S1'"))
        assert lines[0].startswith("join order: s -> ")


# ----------------------------------------------------------------------
# index selection

class TestIndexSelection:
    def test_eq_predicate_selects_index_scan(self, joined):
        joined.execute("create index ix_sym on stock (symbol)")
        lines = _plan(joined, "select * from stock where symbol = 'S1'")
        [line] = [l.strip() for l in lines if "Scan" in l]
        assert line.startswith("IndexScan stock (index ix_sym: "
                               "symbol = 'S1')")

    def test_in_list_selects_index_scan(self, joined):
        joined.execute("create index ix_sym on stock (symbol)")
        lines = _plan(
            joined, "select * from stock where symbol in ('S1', 'S2')")
        [line] = [l.strip() for l in lines if "Scan" in l]
        assert "symbol in ('S1', 'S2')" in line
        assert line.startswith("IndexScan")

    def test_join_probe_uses_the_inner_index(self, joined):
        # orders (4 rows) drives; quotes is the inner side and has the
        # index, so the planner keeps PR 4's per-outer-row probe.
        joined.execute("create index ix_q on quotes (symbol)")
        lines = _plan(joined, (
            "select o.n, q.bid from orders o, quotes q "
            "where o.symbol = q.symbol"))
        assert any("Join [index probe on symbol" in line for line in lines)

    def test_equi_join_without_index_hashes(self, joined):
        lines = _plan(joined, (
            "select s.symbol from stock s, quotes q "
            "where s.symbol = q.symbol"))
        assert any("Join [hash: " in line for line in lines)

    def test_cross_join_is_nested(self, joined):
        lines = _plan(joined, "select * from quotes q, orders o")
        assert any("Join [nested cross]" in line for line in lines)


# ----------------------------------------------------------------------
# plan memo: cached hits skip parse AND plan; DDL invalidates

class TestPlanMemo:
    @pytest.fixture
    def hot(self, joined):
        """Planner and plan cache force-on (the memo needs both)."""
        server = joined.endpoint.server
        server.planner_enabled = True
        server.plan_cache.enabled = True
        server.plan_cache.clear()
        return joined

    def test_cached_hit_skips_parse_and_plan(self, hot):
        sql = "select * from stock where qty > 3"
        for _ in range(3):
            hot.execute(sql)
        stats = hot.endpoint.server.plan_cache.stats()
        assert stats["misses"] == 1      # parsed once
        assert stats["hits"] >= 2        # text-cache hits after that
        assert stats["plan_misses"] == 1  # planned once
        assert stats["plan_hits"] >= 2   # memoized DAG reused

    def test_ddl_invalidates_cached_plans(self, hot):
        server = hot.endpoint.server
        sql = "select * from stock where symbol = 'S1'"
        hot.execute(sql)
        hot.execute(sql)
        before = server.plan_cache.stats()
        assert before["plan_hits"] >= 1
        # DDL bumps the schema epoch: the memoized full-scan plan must
        # be replanned — and the replan must pick up the new index.
        hot.execute("create index ix_sym on stock (symbol)")
        scans_before = server.index_scans
        hot.execute(sql)
        after = server.plan_cache.stats()
        assert after["plan_misses"] > before["plan_misses"]
        assert server.index_scans > scans_before

    def test_explain_does_not_populate_the_memo(self, hot):
        server = hot.endpoint.server
        hot.execute("explain select * from stock where qty > 3")
        assert server.plan_cache.stats()["plans"] == 0


# ----------------------------------------------------------------------
# transparency: planned results == legacy walker results

BATTERY = [
    "select * from stock",
    "select * from stock where qty > 3",
    "select s.symbol, q.bid from stock s, quotes q "
    "where s.symbol = q.symbol",
    "select s.symbol, q.bid, o.n from stock s, quotes q, orders o "
    "where s.symbol = q.symbol and q.symbol = o.symbol and s.qty > 2",
    "select * from quotes q, orders o",
    "select symbol, count(*), sum(qty) from stock group by symbol "
    "having count(*) > 1",
    "select distinct symbol from stock order by symbol desc",
    "select top 3 * from stock order by qty",
    "select * from stock where symbol in ('S1', 'S3')",
    "select * from stock where qty > (select min(n) from orders)",
    "select s.symbol from stock s where exists "
    "(select * from orders o where o.symbol = s.symbol)",
    "select symbol from stock union select symbol from orders",
]


class TestPlannedMatchesLegacy:
    @pytest.mark.parametrize("sql", BATTERY)
    def test_battery(self, joined, sql):
        server = joined.endpoint.server
        joined.execute("create index ix_q on quotes (symbol)")
        server.planner_enabled = True
        planned = _rows(joined, sql)
        server.planner_enabled = False
        legacy = _rows(joined, sql)
        assert planned == legacy

    def test_update_and_delete_candidates_match(self, joined):
        server = joined.endpoint.server
        joined.execute("create index ix_sym on stock (symbol)")
        server.planner_enabled = True
        joined.execute("update stock set qty = qty + 1 "
                       "where symbol = 'S1'")
        planned = _rows(joined, "select * from stock order by qty")
        joined.execute("delete stock where symbol = 'S1'")
        assert _rows(joined, "select * from stock "
                             "where symbol = 'S1'") == []
        server.planner_enabled = False
        assert _rows(joined, "select * from stock order by qty") != planned


# ----------------------------------------------------------------------
# EXPLAIN over writes

class TestExplainWrites:
    def test_update_plan_shows_index_and_columns(self, joined):
        joined.execute("create index ix_sym on stock (symbol)")
        lines = _plan(
            joined, "update stock set qty = 0 where symbol = 'S1'")
        assert lines[0].startswith("Update stock")
        assert "qty" in lines[0]
        assert any("IndexScan" in line for line in lines)

    def test_delete_plan(self, joined):
        lines = _plan(joined, "delete stock where qty > 3")
        assert lines[0].startswith("Delete stock")

    def test_insert_values_plan(self, joined):
        lines = _plan(joined, "insert stock values ('S9', 1, 1)")
        assert lines[0].startswith("Insert stock")
        assert any("Values [1 rows]" in line for line in lines)

    def test_insert_select_plan(self, joined):
        lines = _plan(joined, (
            "insert orders select symbol, qty from stock where qty > 3"))
        assert lines[0].startswith("Insert orders")
        assert any("Scan stock" in line for line in lines)

    def test_explain_rejects_unplannable_statements(self, joined):
        from repro.sqlengine.errors import SqlError

        with pytest.raises(SqlError):
            joined.execute("explain create table t (a int)")


class TestExplainThroughTheAgent:
    def test_explain_passes_through_the_language_filter(self, astock):
        """EXPLAIN is ordinary SQL to the gateway: the Language Filter
        passes it to the engine and the plan comes back as a result
        set, like any query (the paper's transparency constraint)."""
        result = astock.execute(
            "explain select * from stock where qty > 3")
        assert result.last.columns == ["plan"]
        assert any("Scan stock" in row[0] for row in result.last.rows)
