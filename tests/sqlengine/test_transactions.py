"""Transaction semantics: commit, rollback, nesting, catalog undo."""

import pytest

from repro.sqlengine.errors import TransactionError


class TestBasicTransactions:
    def test_commit_keeps_changes(self, stock):
        stock.execute("begin tran")
        stock.execute("insert stock values ('A', 1, 1)")
        stock.execute("commit")
        assert stock.execute("select count(*) from stock").last.scalar() == 1

    def test_rollback_discards_inserts(self, stock):
        stock.execute("begin tran")
        stock.execute("insert stock values ('A', 1, 1)")
        stock.execute("rollback")
        assert stock.execute("select count(*) from stock").last.scalar() == 0

    def test_rollback_restores_updates(self, stock):
        stock.execute("insert stock values ('A', 10.0, 1)")
        stock.execute("begin tran")
        stock.execute("update stock set price = 99.0")
        stock.execute("rollback")
        assert stock.execute("select price from stock").last.scalar() == 10.0

    def test_rollback_restores_deletes(self, stock):
        stock.execute("insert stock values ('A', 10.0, 1)")
        stock.execute("begin tran")
        stock.execute("delete stock")
        stock.execute("rollback")
        assert stock.execute("select count(*) from stock").last.scalar() == 1

    def test_rollback_within_single_batch(self, stock):
        stock.execute(
            "begin tran insert stock values ('A', 1, 1) rollback")
        assert stock.execute("select count(*) from stock").last.scalar() == 0

    def test_commit_without_begin_raises(self, conn):
        with pytest.raises(TransactionError):
            conn.execute("commit")

    def test_rollback_without_begin_raises(self, conn):
        with pytest.raises(TransactionError):
            conn.execute("rollback")


class TestNestedTransactions:
    def test_nested_commit_counts_down(self, stock):
        stock.execute("begin tran")
        stock.execute("begin tran")
        stock.execute("insert stock values ('A', 1, 1)")
        stock.execute("commit")  # inner: still open
        stock.execute("rollback")  # outer rollback discards everything
        assert stock.execute("select count(*) from stock").last.scalar() == 0

    def test_rollback_closes_all_levels(self, stock):
        stock.execute("begin tran")
        stock.execute("begin tran")
        stock.execute("rollback")
        assert stock.execute("select @@trancount").last.scalar() == 0


class TestCatalogUndo:
    def test_rollback_undoes_create_table(self, conn, server):
        conn.execute("begin tran")
        conn.execute("create table temp_t (a int)")
        conn.execute("rollback")
        assert "sharma.temp_t" not in server.table_names("sentineldb")

    def test_rollback_undoes_drop_table(self, stock, conn, server):
        stock.execute("insert stock values ('A', 1, 1)")
        conn.execute("begin tran")
        conn.execute("drop table stock")
        conn.execute("rollback")
        assert conn.execute("select count(*) from stock").last.scalar() == 1

    def test_rollback_undoes_select_into(self, stock, conn, server):
        conn.execute("begin tran")
        conn.execute("select * into snap from stock where 1 = 2")
        conn.execute("rollback")
        assert "sharma.snap" not in server.table_names("sentineldb")

    def test_rollback_undoes_create_procedure(self, conn, server):
        conn.execute("begin tran")
        conn.execute("create proc ghost_p as select 1")
        conn.execute("rollback")
        assert server.procedure_names("sentineldb") == []

    def test_commit_preserves_catalog_changes(self, conn, server):
        conn.execute("begin tran")
        conn.execute("create table kept (a int)")
        conn.execute("commit")
        assert "sharma.kept" in server.table_names("sentineldb")


class TestSessionIsolationOfTransactionState:
    def test_transactions_are_per_session(self, server):
        from repro.sqlengine import connect

        one = connect(server, user="a", database="sentineldb")
        two = connect(server, user="b", database="sentineldb")
        one.execute("begin tran")
        assert two.execute("select @@trancount").last.scalar() == 0
        one.execute("rollback")


class TestAbandonedTransactionOnClose:
    """Closing a session with an open transaction (a dropped client)
    rolls it back and releases the lock manager's transaction pin."""

    def test_close_rolls_back_open_transaction(self, stock, server):
        from repro.sqlengine import connect

        stock.execute("insert stock values ('A', 10.0, 1)")
        stock.execute("begin tran")
        stock.execute("update stock set price = 99.0")
        stock.session.closed = True
        assert not stock.session.tx_log.active
        probe = connect(server, user="sharma", database="sentineldb")
        assert probe.execute(
            "select price from stock").last.scalar() == 10.0
        probe.close()

    def test_close_releases_exclusive_gate_pin(self, stock, server):
        from repro.sqlengine import connect

        stock.execute("begin tran")
        stock.execute("insert stock values ('A', 1, 1)")
        lock_manager = server.lock_manager
        assert lock_manager.transaction_sessions() == {
            stock.session.session_id}
        stock.close()
        assert lock_manager.transaction_sessions() == set()
        probe = connect(server, user="sharma", database="sentineldb")
        before = lock_manager.shared_batches
        assert probe.execute(
            "select count(*) from stock").last.scalar() == 0
        assert lock_manager.shared_batches == before + 1
        probe.close()

    def test_close_without_transaction_is_plain(self, stock, server):
        stock.execute("insert stock values ('A', 1, 1)")
        stock.close()
        assert server.lock_manager.transaction_sessions() == set()
        assert stock.session.closed

    def test_double_close_is_idempotent(self, stock, server):
        stock.execute("begin tran")
        stock.close()
        stock.session.closed = True
        assert server.lock_manager.transaction_sessions() == set()
        assert not stock.session.tx_log.active
