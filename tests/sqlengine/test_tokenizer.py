"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.tokenizer import (
    EOF,
    IDENT,
    NUMBER,
    OP,
    STRING,
    VARIABLE,
    tokenize,
)


def kinds(text):
    return [token.kind for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_and_identifiers_are_idents(self):
        assert kinds("select foo") == [IDENT, IDENT, EOF]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind == NUMBER
        assert tokens[0].value == 42
        assert isinstance(tokens[0].value, int)

    def test_float_literal(self):
        tokens = tokenize("4.25")
        assert tokens[0].value == 4.25
        assert isinstance(tokens[0].value, float)

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == 0.5

    def test_scientific_notation(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_number_followed_by_keyword_e(self):
        # '1 else' should not eat the e
        tokens = tokenize("1 else")
        assert tokens[0].value == 1
        assert tokens[1].value == "else"

    def test_single_quoted_string(self):
        assert tokenize("'hello'")[0].value == "hello"

    def test_double_quoted_string(self):
        # Sybase treats double quotes as string delimiters by default.
        token = tokenize('"RECENT"')[0]
        assert token.kind == STRING
        assert token.value == "RECENT"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_variable(self):
        token = tokenize("@price")[0]
        assert token.kind == VARIABLE
        assert token.value == "@price"

    def test_global_variable(self):
        assert tokenize("@@rowcount")[0].value == "@@rowcount"

    def test_temp_table_name(self):
        assert tokenize("#tmp")[0].value == "#tmp"

    def test_bracket_quoted_identifier(self):
        token = tokenize("[weird name]")[0]
        assert token.kind == IDENT
        assert token.value == "weird name"


class TestOperators:
    @pytest.mark.parametrize("op", ["<>", "!=", "<=", ">=", "=", "<", ">"])
    def test_comparison_operators(self, op):
        assert tokenize(op)[0].value == op

    def test_arithmetic_and_punctuation(self):
        assert values("a + b * (c) , .") == ["a", "+", "b", "*", "(", "c", ")", ",", "."]

    def test_qualified_name_tokens(self):
        assert values("sentineldb.sharma.stock") == [
            "sentineldb", ".", "sharma", ".", "stock"]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert kinds("select 1 -- trailing comment") == [IDENT, NUMBER, EOF]

    def test_block_comment(self):
        assert kinds("select /* inline */ 1") == [IDENT, NUMBER, EOF]

    def test_multiline_block_comment_tracks_lines(self):
        tokens = tokenize("/* a\nb\nc */ select")
        assert tokens[0].line == 3

    def test_unterminated_comment_raises(self):
        with pytest.raises(SqlParseError):
            tokenize("/* never closed")

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlParseError):
            tokenize("'oops")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("select\n  price")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_offsets_allow_source_slicing(self):
        text = "create proc p as select 1"
        tokens = tokenize(text)
        assert text[tokens[0].offset:].startswith("create")
        assert text[tokens[3].offset:].startswith("as")

    def test_unexpected_character(self):
        with pytest.raises(SqlParseError) as excinfo:
            tokenize("select !")
        assert "unexpected character" in str(excinfo.value)
