"""The ActiveDatabase facade and the declarative rule spec."""

import pytest

from repro.core import ActiveDatabase, Context, Coupling, EcaRuleSpec


class TestEcaRuleSpec:
    def test_primitive_form_sql(self):
        spec = EcaRuleSpec(
            trigger_name="t1", action_sql="print 'x'", event_name="e1",
            on_table="stock", operation="insert")
        text = spec.to_sql()
        assert "create trigger t1" in text
        assert "on stock" in text
        assert "for insert" in text
        assert "event e1" in text
        assert text.endswith("as print 'x'")

    def test_composite_form_sql(self):
        spec = EcaRuleSpec(
            trigger_name="t", action_sql="select 1", event_name="c",
            expression="a AND b", context=Context.CHRONICLE,
            coupling=Coupling.DEFERRED, priority=3)
        text = spec.to_sql()
        assert "event c = a AND b" in text
        assert "DEFERRED CHRONICLE 3" in text

    def test_on_table_requires_operation(self):
        spec = EcaRuleSpec(
            trigger_name="t", action_sql="x", event_name="e", on_table="s")
        with pytest.raises(ValueError):
            spec.to_sql()


class TestActiveDatabase:
    def test_quickstart_shape(self, adb):
        adb.execute("create table stock (symbol varchar(10), price float)")
        adb.define_rule(
            "t1", event="addStk", on_table="stock", operation="insert",
            action='print "stock added"')
        result = adb.execute("insert stock values ('IBM', 101.5)")
        assert "stock added" in result.messages

    def test_composite_rule_via_facade(self, adb):
        adb.execute("create table stock (symbol varchar(10), price float)")
        adb.define_rule("t1", event="e1", on_table="stock",
                        operation="insert", action="print '1'")
        adb.define_rule("t2", event="e2", on_table="stock",
                        operation="delete", action="print '2'")
        adb.define_rule("tc", event="c", expression="e1 AND e2",
                        context="RECENT", action="print 'both'")
        adb.execute("insert stock values ('A', 1)")
        result = adb.execute("delete stock")
        assert "both" in result.messages

    def test_rule_on_existing_event(self, adb):
        adb.execute("create table t (a int)")
        adb.define_rule("t1", event="e1", on_table="t",
                        operation="insert", action="print '1'")
        adb.define_rule("t2", event="e1", action="print '2'")
        result = adb.execute("insert t values (1)")
        assert {"1", "2"} <= set(result.messages)

    def test_drop_rule_and_event(self, adb):
        adb.execute("create table t (a int)")
        adb.define_rule("t1", event="e1", on_table="t",
                        operation="insert", action="print '1'")
        adb.drop_rule("t1")
        adb.drop_event("e1")
        assert adb.execute("insert t values (1)").messages == []

    def test_string_enums_accepted(self, adb):
        adb.execute("create table t (a int)")
        adb.define_rule(
            "t1", event="e1", on_table="t", operation="insert",
            action="print 'x'", coupling="detached", context="cumulative")
        trigger = adb.agent.eca_triggers["sentineldb.sharma.t1"]
        assert trigger.coupling is Coupling.DETACHED
        assert trigger.context is Context.CUMULATIVE

    def test_direct_connection_bypasses_agent(self, adb):
        adb.execute("create table t (a int)")
        adb.define_rule("t1", event="e1", on_table="t",
                        operation="insert", action="print 'active'")
        direct = adb.connect_direct()
        # Direct inserts still fire the generated *native* trigger (it
        # lives in the engine), proving actions run inside the server.
        result = direct.execute("insert t values (1)")
        assert "active" in result.messages

    def test_context_manager(self):
        with ActiveDatabase(database="cm", user="u") as adb:
            adb.execute("create table t (a int)")
        # closed without error

    def test_advance_time_reaches_led(self, adb):
        adb.execute("create table t (a int)")
        adb.define_rule("t1", event="e1", on_table="t",
                        operation="insert", action="print '1'")
        hits = []
        adb.agent.led.define_composite(
            "late", "sentineldb.sharma.e1 PLUS [10 sec]")
        adb.agent.led.add_rule("probe", "late",
                               action=lambda occ: hits.append(occ))
        adb.execute("insert t values (1)")
        adb.advance_time(11)
        assert len(hits) == 1

    def test_package_level_exports(self):
        import repro

        assert repro.ActiveDatabase is ActiveDatabase
        assert repro.Context is Context
        assert repro.Coupling is Coupling
