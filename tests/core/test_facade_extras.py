"""Facade coverage for the extension surface (conditions, introspection)."""

import pytest

from repro.core import ActiveDatabase


class TestFacadeExtensions:
    def test_trace_accessible_through_facade(self, adb):
        adb.agent.trace.enabled = True
        adb.execute("create table t (a int)")
        adb.define_rule("t1", event="e1", on_table="t",
                        operation="insert", action="print 'x'")
        adb.execute("insert t values (1)")
        steps = adb.agent.trace.steps()
        assert any(step.startswith("fig4") for step in steps)

    def test_sp_help_through_facade(self, adb):
        adb.execute("create table t (a int)")
        result = adb.execute("exec sp_help 't'")
        assert result.result_sets[1].rows[0][0] == "a"

    def test_views_through_mediated_connection(self, adb):
        adb.execute("create table t (a int)")
        adb.execute("insert t values (1), (2)")
        adb.execute("create view big as select a from t where a > 1")
        assert adb.execute("select * from big").last.rows == [[2]]

    def test_rule_action_may_query_view(self, adb):
        adb.execute("create table t (a int)")
        adb.execute("create view all_t as select a from t")
        adb.define_rule(
            "t1", event="e1", on_table="t", operation="insert",
            action="select count(*) n from all_t")
        result = adb.execute("insert t values (1)")
        assert any(rs.columns == ["n"] for rs in result.result_sets)

    def test_two_active_databases_are_independent(self):
        one = ActiveDatabase(database="db_one", user="u")
        two = ActiveDatabase(database="db_two", user="u")
        try:
            one.execute("create table t (a int)")
            two.execute("create table t (a int)")
            one.define_rule("t1", event="e1", on_table="t",
                            operation="insert", action="print 'one'")
            assert two.execute("insert t values (1)").messages == []
            assert one.execute("insert t values (1)").messages == ["one"]
        finally:
            one.close()
            two.close()

    def test_facade_survives_many_define_drop_cycles(self, adb):
        adb.execute("create table t (a int)")
        for index in range(15):
            adb.define_rule(f"t{index}", event=f"e{index}", on_table="t",
                            operation="insert", action=f"print '{index}'")
            adb.drop_rule(f"t{index}")
            adb.drop_event(f"e{index}")
        assert adb.agent.eca_triggers == {}
        assert adb.execute("insert t values (1)").messages == []
