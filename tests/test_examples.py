"""Smoke tests: the shipped examples must run green end to end.

Each example is an executable document — if it raises, the docs are
wrong.  The scripts print their narration to stdout; here each ``main``
is imported and run with stdout captured, and a few load-bearing lines
of the narration are asserted so a silently-degraded demo (e.g. a rule
that stops firing) fails the suite rather than just printing less.
"""

from __future__ import annotations

import contextlib
import io
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        yield
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
        for name in list(sys.modules):
            if name in {module.stem for module in
                        EXAMPLES_DIR.glob("*.py")}:
                del sys.modules[name]


def _run(module_name: str) -> str:
    module = __import__(module_name)
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        module.main()
    return out.getvalue()


def test_distributed_sites_example():
    out = _run("distributed_sites")
    # The cross-site SEQ fires exactly once for the well-ordered pair...
    assert out.count("GLOBAL ALERT: follow-on trading pattern") == 2
    # ...the action's SQL landed at the NYC site...
    assert "nycdb.dbo.alerts" in out
    # ...the operator command rendered the partition map...
    assert "this_site" in out
    # ...and crash recovery discarded the IMMEDIATE-only half-detection
    # instead of firing it late (the recovery contract).
    assert "discarded ['followOn']" in out
    assert "alerts unchanged (no late firing): 1" in out
    assert "alerts: 2" in out


def test_quickstart_example():
    _run("quickstart")
