"""Worker-thread hygiene (no cross-session attribution).

A pool worker is recycled across sessions.  If a task leaks ambient
per-thread observability state — an unclosed span, an inherited trace
context, a provenance stack, an accounting frame — the NEXT session's
command on that thread would be silently attributed to the previous
one.  The pool's ``cleanup`` hook (``GatewayOpenServer.
_clear_thread_state``) must clear all of it after every serviced task,
and a replacement pool installed by ``set agent workers`` must carry
the same hook.
"""

import pytest

from repro.agent import EcaAgent
from repro.obs.tracing import TraceContext

STOCK_DDL = (
    "create table stock (symbol varchar(10) not null, "
    "price float null, qty int null)")


@pytest.fixture
def pooled(server):
    """A single-worker agent: every session's commands share one thread,
    so any leak WILL hit the next session."""
    agent = EcaAgent(server, workers=1)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    agent.trace.enabled = True
    yield agent
    agent.close()


def _submit(agent, session, fn):
    """Queue a raw callable as one of ``session``'s commands (the same
    path ``submit_for`` uses, minus the gateway routing)."""
    return agent.gateway.pool.submit(session, fn)


class TestCleanupBetweenTasks:
    def test_leaked_thread_state_does_not_cross_sessions(self, pooled):
        agent = pooled
        gateway = agent.gateway
        session_a = gateway.open_session("sharma", "sentineldb")
        session_b = gateway.open_session("sharma", "sentineldb")

        def leaky():
            # A buggy task leaves every ambient surface dirty: an open
            # span, an activated foreign context, a provenance parent,
            # and an accounting frame that is never finished.
            agent.trace._open("leaked-span", "")
            agent.trace._local.ctx = TraceContext(
                trace_id="t-session-a", parent_span=1, depth=1)
            agent.journal.push(999)
            agent.accounting.begin(session_a)
            return "leaked"

        assert _submit(agent, session_a, leaky).result() == "leaked"

        seen = {}

        def probe():
            seen["parent"] = agent.trace.current()
            seen["trace_id"] = agent.trace.active_trace_id()
            seen["journal_parents"] = tuple(agent.journal.ambient_parents())
            seen["frame"] = agent.accounting.command_frame()
            return "probed"

        assert _submit(agent, session_b, probe).result() == "probed"
        assert seen["parent"] is None
        assert seen["trace_id"] is None
        assert seen["journal_parents"] == ()
        assert seen["frame"] is None

    def test_two_sessions_commands_get_distinct_roots(self, pooled):
        agent = pooled
        gateway = agent.gateway
        session_a = gateway.open_session("sharma", "sentineldb")
        session_b = gateway.open_session("sharma", "sentineldb")
        gateway.submit_for(
            session_a, "insert stock values ('A', 1.0, 1)").result()
        gateway.submit_for(
            session_b, "insert stock values ('B', 2.0, 2)").result()
        trace_a, trace_b = agent.trace.trace_ids()[-2:]
        assert trace_a != trace_b
        for trace_id, session in ((trace_a, session_a),
                                  (trace_b, session_b)):
            spans = agent.trace.spans_for(trace_id)
            (root,) = [s for s in spans if s.parent is None]
            assert root.trace_id == trace_id
        # the root's detail names session A's statement, not B's
        root_a = agent.trace.spans_for(trace_a)[0]
        assert root_a.detail.startswith("insert stock values ('A'")


class TestReplacementPoolKeepsTheHook:
    def test_resized_pool_carries_cleanup(self, pooled):
        agent = pooled
        gateway = agent.gateway
        old_pool = gateway.pool
        conn = agent.connect(user="sharma", database="sentineldb")
        conn.execute("set agent workers 2")
        assert gateway.pool is not old_pool
        assert gateway.pool.cleanup == old_pool.cleanup \
            == gateway._clear_thread_state

    def test_leak_cleared_across_a_resize(self, pooled):
        agent = pooled
        gateway = agent.gateway
        session = gateway.open_session("sharma", "sentineldb")

        def leaky():
            agent.trace._open("leaked-span", "")
            return "leaked"

        _submit(agent, session, leaky).result()
        conn = agent.connect(user="sharma", database="sentineldb")
        conn.execute("set agent workers 3")

        seen = {}

        def probe():
            seen["parent"] = agent.trace.current()
            return "probed"

        gateway.pool.submit(session, probe).result()
        assert seen["parent"] is None
