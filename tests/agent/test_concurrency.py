"""Concurrency: the agent is 'a multithread program' (paper Section 3).

Multiple client threads drive mediated connections simultaneously while
rules fire; the engine's scheduler lock plus the agent's internal locks
must keep every counter and snapshot consistent.
"""

import threading

import pytest


class TestConcurrentClients:
    def test_parallel_inserts_all_counted(self, agent, astock):
        astock.execute(
            "create trigger t on stock for insert event ev as print 'x'")
        errors: list[BaseException] = []

        def worker(worker_id: int) -> None:
            try:
                conn = agent.connect(user="sharma", database="sentineldb")
                for index in range(20):
                    conn.execute(
                        f"insert stock values ('W{worker_id}_{index}', 1.0, 1)")
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        total = astock.execute("select count(*) from stock").last.scalar()
        assert total == 100
        assert agent.persistent_manager.current_v_no(
            "sentineldb", "sentineldb.sharma.ev") == 100
        assert agent.notifier.received == 100

    def test_parallel_rule_creation(self, agent, astock):
        errors: list[BaseException] = []
        created: list[str] = []
        lock = threading.Lock()

        def worker(worker_id: int) -> None:
            try:
                conn = agent.connect(user="sharma", database="sentineldb")
                for index in range(5):
                    name = f"t_{worker_id}_{index}"
                    conn.execute(
                        f"create trigger {name} on stock for insert "
                        f"event e_{worker_id}_{index} as print '{name}'")
                    with lock:
                        created.append(name)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert len(agent.eca_triggers) == 20
        # Every rule is live: one insert prints all 20 messages.
        result = astock.execute("insert stock values ('GO', 1.0, 1)")
        assert len([m for m in result.messages if m.startswith("t_")]) == 20

    def test_parallel_detached_actions_with_queries(self, agent, astock):
        astock.execute("create table hits (n int)")
        astock.execute(
            "create trigger t on stock for insert event ev as print 'p'")
        astock.execute(
            "create trigger tr event ev DETACHED as insert hits values (1)")

        def writer() -> None:
            conn = agent.connect(user="sharma", database="sentineldb")
            for index in range(10):
                conn.execute(f"insert stock values ('X{index}', 1.0, 1)")

        def reader(results: list) -> None:
            conn = agent.connect(user="sharma", database="sentineldb")
            for _ in range(20):
                results.append(
                    conn.execute("select count(*) from stock").last.scalar())

        counts: list[int] = []
        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=writer),
            threading.Thread(target=reader, args=(counts,)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        agent.action_handler.join_detached()
        final = agent.persistent_manager.execute(
            "sentineldb", "select count(*) from sharma.hits").last.scalar()
        assert final == 20
        # Reader snapshots are monotone (no torn reads through the lock).
        assert counts == sorted(counts)


class TestThreadedChannelUnderLoad:
    def test_no_lost_notifications(self, server):
        from repro.agent import EcaAgent

        agent = EcaAgent(server, channel="threaded")
        try:
            conn = agent.connect(user="sharma", database="sentineldb")
            conn.execute("create table t (a int)")
            conn.execute(
                "create trigger tr on t for insert event ev DETACHED as "
                "print 'async'")
            for index in range(50):
                conn.execute(f"insert t values ({index})")
            assert agent.drain(timeout=10.0)
            agent.action_handler.join_detached(timeout=10.0)
            assert agent.notifier.received == 50
            done = [r for r in agent.action_handler.action_log
                    if r.error is None]
            assert len(done) == 50
        finally:
            agent.close()
