"""Pipeline tracing: the Figure 3/4 steps become observable records."""

import pytest

from repro.agent import trace as trace_mod


@pytest.fixture
def traced(agent, astock):
    agent.trace.enabled = True
    agent.trace.clear()
    return astock


class TestFig3Trace:
    def test_eca_definition_walks_the_steps_in_order(self, traced, agent):
        traced.execute(
            "create trigger t on stock for insert event ev as print 'x'")
        steps = agent.trace.steps()
        expected_order = [
            trace_mod.FIG3_COMMAND_RECEIVED,
            trace_mod.FIG3_CLASSIFIED_ECA,
            trace_mod.FIG3_GRAPH_CREATED,
            trace_mod.FIG3_SQL_INSTALLED,
            trace_mod.FIG3_PERSISTED,
        ]
        positions = [steps.index(step) for step in expected_order]
        assert positions == sorted(positions)

    def test_plain_sql_only_passes_through(self, traced, agent):
        traced.execute("select * from stock")
        steps = agent.trace.steps()
        assert trace_mod.FIG3_PASSED_THROUGH in steps
        assert trace_mod.FIG3_CLASSIFIED_ECA not in steps

    def test_detail_carries_object_names(self, traced, agent):
        traced.execute(
            "create trigger t on stock for insert event ev as print 'x'")
        persisted = agent.trace.matching("fig3.7")
        details = [record.detail for record in persisted]
        assert "sentineldb.sharma.ev" in details
        assert "sentineldb.sharma.t" in details


class TestFig4Trace:
    def test_notification_to_action_chain(self, traced, agent):
        traced.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        traced.execute(
            "create trigger t2 on stock for delete event e2 as print '2'")
        traced.execute(
            "create trigger tc event c = e1 AND e2 as print 'c'")
        agent.trace.clear()
        traced.execute("insert stock values ('A', 1, 1)")
        traced.execute("delete stock")
        steps = agent.trace.steps()
        notify = steps.index(trace_mod.FIG4_NOTIFIED)
        action = steps.index(trace_mod.FIG4_ACTION_RUN)
        routed = steps.index(trace_mod.FIG4_RESULTS_ROUTED)
        assert notify < action < routed

    def test_notification_payload_recorded(self, traced, agent):
        traced.execute(
            "create trigger t on stock for insert event ev as print 'x'")
        agent.trace.clear()
        traced.execute("insert stock values ('A', 1, 1)")
        notified = agent.trace.matching("fig4.2")
        assert len(notified) == 1
        assert "sentineldb.sharma.ev" in notified[0].detail


class TestTraceMachinery:
    def test_disabled_by_default_and_free(self, agent, astock):
        astock.execute(
            "create trigger t on stock for insert event ev as print 'x'")
        assert agent.trace.records == []

    def test_bounded_buffer(self):
        buffer = trace_mod.PipelineTrace(enabled=True, max_records=100)
        for index in range(250):
            buffer.emit("step", str(index))
        assert len(buffer.records) <= 100
        # Oldest records were evicted, newest kept.
        assert buffer.records[-1].detail == "249"

    def test_format_renders_rows(self):
        buffer = trace_mod.PipelineTrace(enabled=True)
        buffer.emit("stepA", "detail1")
        text = buffer.format()
        assert "stepA" in text and "detail1" in text

    def test_clear(self):
        buffer = trace_mod.PipelineTrace(enabled=True)
        buffer.emit("x")
        buffer.clear()
        assert buffer.records == []
