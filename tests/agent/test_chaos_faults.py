"""Chaos suite: injected crashes, transient faults, retries, recovery.

Acceptance tests for the fault-injection hardening layer (see
docs/OPERATORS.md).  The headline contract: a crash injected around the
two ``persist_trigger`` inserts must leave the rule base all-or-nothing
after :meth:`EcaAgent.recover` — the rule either fully exists (fires on
its event) or fully does not (no orphan system-table rows, no orphan
action procedure, no LED rule).  Transient faults must be retried and
observable through ``repro.obs`` metrics, and injected failures that
survive the retry policy must degrade into a client-visible error
instead of killing the agent.

Seeds are fixed for CI; set ``CHAOS_SEED`` to replay a single seed.
"""

from __future__ import annotations

import os

import pytest

from repro.agent import EcaAgent
from repro.agent.persistence import PersistentManager
from repro.faults import (
    FaultPlan,
    POINT_ACTION_RUN,
    POINT_GATEWAY_PROCESS,
    POINT_NOTIFIER_DECODE,
    POINT_PERSISTENCE_EXECUTE,
    SimulatedCrash,
)
from repro.obs import MetricsRegistry
from repro.sqlengine import SqlServer

STOCK_DDL = (
    "create table stock (symbol varchar(10) not null, price float null, "
    "qty int null)")

#: Fixed seeds for the CI chaos job; CHAOS_SEED overrides for a repro run.
SEEDS = ([int(os.environ["CHAOS_SEED"])] if os.environ.get("CHAOS_SEED")
         else [7, 101, 2026])

T2 = "sentineldb.sharma.t2"


def seeded_server() -> SqlServer:
    """A server holding the stock table and one healthy rule (t1 on the
    primitive event addStk), prepared by a clean agent that then closes."""
    server = SqlServer(default_database="sentineldb")
    agent = EcaAgent(server)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    conn.execute(
        "create trigger t1 on stock for insert event addStk as print 'one'")
    agent.close()
    return server


def composite_server() -> SqlServer:
    """A server with primitive events addStk/delStk and the composite
    rule t_and (delStk ^ addStk), plus one seed row to delete."""
    server = SqlServer(default_database="sentineldb")
    agent = EcaAgent(server)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    conn.execute(
        "create trigger t_add on stock for insert event addStk as "
        "print 'add'")
    conn.execute(
        "create trigger t_del on stock for delete event delStk as "
        "print 'del'")
    conn.execute(
        "create trigger t_and event addDel = delStk ^ addStk RECENT as "
        "print 'and!'")
    conn.execute("insert stock values ('SEED', 1, 1)")
    agent.close()
    return server


def syscount(server: SqlServer, table: str) -> int:
    """Row count of one agent system table, read through a bare
    persistent manager (no recovery side effects)."""
    pm = PersistentManager(server)
    return pm.execute(
        "sentineldb", f"select count(*) from {table}").last.scalar()


def crash_create_t2(server: SqlServer, seed: int, match: str) -> SqlServer:
    """Open a chaos agent whose next persistence statement containing
    ``match`` crashes, attempt to create trigger t2 on addStk, and
    return the surviving server (the crashed agent runs no cleanup)."""
    plan = FaultPlan(seed=seed)
    plan.inject(POINT_PERSISTENCE_EXECUTE, kind="crash", match=match)
    agent = EcaAgent(server, faults=plan)
    conn = agent.connect(user="sharma", database="sentineldb")
    with pytest.raises(SimulatedCrash):
        conn.execute("create trigger t2 event addStk as print 'two'")
    return server


@pytest.mark.parametrize("seed", SEEDS)
class TestCrashMidCreateTrigger:
    """Crash around the persist step: the rule is all-or-nothing."""

    def _assert_t2_fully_absent(self, restarted: EcaAgent) -> None:
        assert T2 not in restarted.eca_triggers
        assert restarted.runtime_for_rule(T2) is None
        assert T2 not in restarted.led.rules
        assert syscount(restarted.server, "SysEcaTrigger") == 1
        assert syscount(restarted.server, "SysEcaAction") == 1
        db = restarted.server.catalog.get_database("sentineldb")
        assert db.get_procedure("sharma", "t2__Proc") is None
        conn = restarted.connect(user="sharma", database="sentineldb")
        result = conn.execute("insert stock values ('A', 1, 1)")
        assert "one" in result.messages
        assert "two" not in result.messages

    def test_crash_before_trigger_row_rule_fully_absent(self, seed):
        server = crash_create_t2(
            seeded_server(), seed, match="insert SysEcaTrigger")
        # Torn state: no rows were written, but the action procedure was
        # already created (it precedes both inserts).
        assert syscount(server, "SysEcaTrigger") == 1
        db = server.catalog.get_database("sentineldb")
        assert db.get_procedure("sharma", "t2__Proc") is not None

        restarted = EcaAgent(server)       # recovery repairs on attach
        assert restarted.recover() == {    # and a second pass finds nothing
            "primitive": 0, "composite": 0, "trigger": 0, "repaired": 0}
        self._assert_t2_fully_absent(restarted)
        restarted.close()

    def test_crash_between_inserts_rule_fully_absent(self, seed):
        server = crash_create_t2(
            seeded_server(), seed, match="insert SysEcaAction")
        # Torn state: the SysEcaTrigger row exists with no action row.
        assert syscount(server, "SysEcaTrigger") == 2
        assert syscount(server, "SysEcaAction") == 1

        restarted = EcaAgent(server)
        self._assert_t2_fully_absent(restarted)
        restarted.close()

    def test_crash_after_create_completed_rule_fully_present(self, seed):
        server = seeded_server()
        plan = FaultPlan(seed=seed)
        plan.inject(POINT_GATEWAY_PROCESS, kind="crash", after=1)
        agent = EcaAgent(server, faults=plan)
        conn = agent.connect(user="sharma", database="sentineldb")
        conn.execute("create trigger t2 event addStk as print 'two'")
        with pytest.raises(SimulatedCrash):
            conn.execute("insert stock values ('A', 1, 1)")

        restarted = EcaAgent(server)
        assert restarted.recover()["repaired"] == 0
        assert T2 in restarted.eca_triggers
        assert syscount(server, "SysEcaTrigger") == 2
        assert syscount(server, "SysEcaAction") == 2
        conn = restarted.connect(user="sharma", database="sentineldb")
        result = conn.execute("insert stock values ('B', 2, 2)")
        assert "one" in result.messages and "two" in result.messages
        restarted.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_mid_rule_firing_recovers_intact(seed):
    """An agent dying inside a rule action loses nothing persistent."""
    server = composite_server()
    plan = FaultPlan(seed=seed)
    plan.inject(POINT_ACTION_RUN, kind="crash", match="t_and")
    agent = EcaAgent(server, faults=plan)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute("delete stock")                    # delStk
    with pytest.raises(SimulatedCrash):
        conn.execute("insert stock values ('A', 1, 1)")   # completes t_and

    restarted = EcaAgent(server)
    assert restarted.recover()["repaired"] == 0
    assert len(restarted.eca_triggers) == 3
    assert syscount(server, "SysEcaTrigger") == 3
    assert syscount(server, "SysEcaAction") == 3
    conn = restarted.connect(user="sharma", database="sentineldb")
    conn.execute("insert stock values ('B', 2, 2)")
    conn.execute("delete stock")
    result = conn.execute("insert stock values ('C', 3, 3)")
    assert "and!" in result.messages
    restarted.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_transient_persistence_fault_retried_to_success(seed):
    """Two injected write failures, three allowed attempts: the command
    succeeds and the whole episode is visible in the metrics."""
    server = SqlServer(default_database="sentineldb")
    metrics = MetricsRegistry(enabled=True)
    plan = FaultPlan(seed=seed)
    plan.inject(POINT_PERSISTENCE_EXECUTE, kind="raise", times=2,
                match="insert SysEcaTrigger")
    agent = EcaAgent(server, faults=plan, metrics=metrics)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    result = conn.execute(
        "create trigger t1 on stock for insert event addStk as print 'one'")
    assert any("created" in message for message in result.messages)

    injected = metrics.get("faults_injected")
    assert injected.labels(POINT_PERSISTENCE_EXECUTE, "raise").value() == 2
    assert metrics.get("retries_attempted").labels("persistence").value() == 2
    assert metrics.get("retry_exhausted") is None  # never exhausted

    result = conn.execute("insert stock values ('A', 1, 1)")
    assert "one" in result.messages
    assert syscount(server, "SysEcaTrigger") == 1
    agent.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_retry_exhaustion_degrades_and_compensates(seed):
    """A persistent write failure exhausts the retry budget: the client
    sees one failed command, the agent compensates and keeps serving."""
    server = SqlServer(default_database="sentineldb")
    metrics = MetricsRegistry(enabled=True)
    plan = FaultPlan(seed=seed)
    plan.inject(POINT_PERSISTENCE_EXECUTE, kind="raise", times=0,
                match="insert SysEcaTrigger")
    agent = EcaAgent(server, faults=plan, metrics=metrics)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    result = conn.execute(
        "create trigger t1 on stock for insert event addStk as print 'one'")
    assert any("command not applied" in m for m in result.messages)
    assert metrics.get("retry_exhausted").labels("persistence").value() == 1

    # Compensation: the half-created rule and its event are fully undone.
    assert agent.eca_triggers == {}
    assert agent.primitive_events == {}
    assert syscount(server, "SysPrimitiveEvent") == 0
    assert syscount(server, "SysEcaTrigger") == 0
    db = server.catalog.get_database("sentineldb")
    assert db.get_procedure("sharma", "t1__Proc") is None

    # The agent survived; with the plan disarmed the same command works.
    conn.execute("set agent faults off")
    result = conn.execute(
        "create trigger t1 on stock for insert event addStk as print 'one'")
    assert any("created" in message for message in result.messages)
    result = conn.execute("insert stock values ('A', 1, 1)")
    assert "one" in result.messages
    agent.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_dropped_notification_loses_one_firing_only(seed):
    """A dropped payload suppresses exactly one detection; the next
    occurrence flows normally and the rule base is untouched."""
    server = composite_server()
    plan = FaultPlan(seed=seed)
    plan.inject(POINT_NOTIFIER_DECODE, kind="drop", times=1)
    agent = EcaAgent(server, faults=plan)
    conn = agent.connect(user="sharma", database="sentineldb")

    conn.execute("delete stock")                        # delStk dropped
    result = conn.execute("insert stock values ('A', 1, 1)")
    assert "and!" not in result.messages                # pair incomplete
    assert agent.notifier.dropped == 1

    conn.execute("delete stock")                        # delivered now
    result = conn.execute("insert stock values ('B', 2, 2)")
    assert "and!" in result.messages
    assert len(agent.eca_triggers) == 3
    agent.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_gateway_fault_degrades_single_command(seed):
    """A fault at the gateway costs the client one command, not the
    session: the follow-up retry of the same statement succeeds."""
    server = SqlServer(default_database="sentineldb")
    plan = FaultPlan(seed=seed)
    plan.inject(POINT_GATEWAY_PROCESS, kind="raise", times=1)
    agent = EcaAgent(server, faults=plan)
    conn = agent.connect(user="sharma", database="sentineldb")
    result = conn.execute(STOCK_DDL)
    assert any("command not applied" in m for m in result.messages)
    result = conn.execute(STOCK_DDL)                    # client retries
    assert not any("command not applied" in m for m in result.messages)
    agent.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_probability_storm_is_deterministic_and_consistent(seed):
    """A seeded random drop storm replays identically and never corrupts
    the rule base (paper claim: reliability via persisted rules)."""

    def run() -> tuple[int, int]:
        server = composite_server()
        plan = FaultPlan(seed=seed)
        plan.inject(POINT_NOTIFIER_DECODE, kind="drop",
                    probability=0.4, times=0)
        agent = EcaAgent(server, faults=plan)
        conn = agent.connect(user="sharma", database="sentineldb")
        fired = 0
        for i in range(12):
            conn.execute("delete stock")
            result = conn.execute(f"insert stock values ('S{i}', 1, 1)")
            fired += "and!" in result.messages
        dropped = agent.notifier.dropped
        assert len(agent.eca_triggers) == 3
        assert syscount(server, "SysEcaTrigger") == 3
        agent.close()
        return fired, dropped

    first, second = run(), run()
    assert first == second
    assert first[1] > 0           # the storm actually dropped payloads
    assert first[0] < 12          # and suppressed at least one firing


def test_admin_surface_reports_fired_faults():
    """``show agent faults`` exposes the armed plan and its counters."""
    server = SqlServer(default_database="sentineldb")
    plan = FaultPlan(seed=7)
    plan.inject(POINT_GATEWAY_PROCESS, kind="raise", times=1)
    agent = EcaAgent(server, faults=plan)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)                             # consumed the fault
    result = conn.execute("show agent faults")
    specs = result.result_sets[0].rows
    assert any("gateway.process" in str(row) for row in specs)
    (fired,) = [row for row in specs if "gateway.process" in str(row)]
    assert fired[-1] == 1                               # fired column
    agent.close()
