"""Run every agent test twice: plan cache force-on and force-off.

The agent's hot path (generated triggers, context processing, system
table writes) leans hardest on the server's statement/plan cache, so the
whole agent suite runs in both modes to prove the cache never changes
observable behaviour (see tests/sqlengine/conftest.py for the engine
half of the same guarantee).
"""

import pytest

from repro.sqlengine import plancache


@pytest.fixture(autouse=True, params=["plan-cache-on", "plan-cache-off"])
def plan_cache_mode(request, monkeypatch):
    """Force the default plan-cache mode for servers built in this test."""
    monkeypatch.setattr(
        plancache, "DEFAULT_ENABLED", request.param == "plan-cache-on")
    return request.param
