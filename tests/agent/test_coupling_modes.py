"""E-EXT1: IMMEDIATE / DEFERRED / DETACHED coupling through the full stack.

The paper implements IMMEDIATE and names deferred/detached as future work
(Section 6); this reproduction implements all three.
"""

import pytest


class TestImmediate:
    def test_primitive_immediate_runs_inside_statement(self, astock):
        astock.execute(
            "create trigger t on stock for insert event e as print 'now'")
        result = astock.execute("insert stock values ('A', 1, 1)")
        assert "now" in result.messages

    def test_composite_immediate_runs_inside_statement(self, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger t2 on stock for update event e2 as print '2'")
        astock.execute(
            "create trigger tc event c = e1 SEQ e2 as print 'seq fired'")
        astock.execute("insert stock values ('A', 1, 1)")
        result = astock.execute("update stock set price = 2")
        assert "seq fired" in result.messages


class TestDeferred:
    @pytest.fixture
    def deferred_rule(self, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger td event e1 DEFERRED as "
            "print 'deferred fired'")
        return astock

    def test_runs_at_commit(self, deferred_rule, agent):
        deferred_rule.execute("begin tran")
        result = deferred_rule.execute("insert stock values ('A', 1, 1)")
        assert "deferred fired" not in result.messages
        assert agent.led.deferred_count == 1
        deferred_rule.execute("commit")
        log = [r for r in agent.action_handler.action_log
               if "td" in r.trigger_internal]
        assert len(log) == 1

    def test_discarded_on_rollback(self, deferred_rule, agent):
        deferred_rule.execute("begin tran")
        deferred_rule.execute("insert stock values ('A', 1, 1)")
        deferred_rule.execute("rollback")
        log = [r for r in agent.action_handler.action_log
               if "td" in r.trigger_internal]
        assert log == []
        assert agent.led.deferred_count == 0

    def test_autocommit_statement_flushes_at_end(self, deferred_rule, agent):
        # Outside a transaction each statement is its own transaction.
        deferred_rule.execute("insert stock values ('A', 1, 1)")
        log = [r for r in agent.action_handler.action_log
               if "td" in r.trigger_internal]
        assert len(log) == 1

    def test_multiple_deferred_fire_in_order(self, astock, agent):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger ta event e1 DEFERRED 5 as print 'a'")
        astock.execute(
            "create trigger tb event e1 DEFERRED 1 as print 'b'")
        astock.execute("begin tran")
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("commit")
        names = [r.trigger_internal.split(".")[-1]
                 for r in agent.action_handler.action_log]
        assert names == ["ta", "tb"]


class TestDetached:
    def test_runs_on_worker_thread(self, astock, agent):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger tx event e1 DETACHED as "
            "print 'detached fired'")
        result = astock.execute("insert stock values ('A', 1, 1)")
        agent.action_handler.join_detached()
        log = [r for r in agent.action_handler.action_log
               if r.trigger_internal.endswith("tx")]
        assert len(log) == 1
        assert log[0].messages == ["detached fired"]
        # Detached output does NOT go to the triggering client.
        assert "detached fired" not in result.messages

    def test_detached_firing_recorded_in_led_history(self, astock, agent):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger tx event e1 DETACHED as print 'd'")
        astock.execute("insert stock values ('A', 1, 1)")
        agent.action_handler.join_detached()
        detached = [f for f in agent.led.history
                    if f.coupling.value == "DETACHED"]
        assert len(detached) == 1
        assert detached[0].error is None

    def test_primitive_detached_not_inlined_in_native_trigger(
            self, astock, agent, server):
        astock.execute(
            "create trigger t1 on stock for insert event e1 DETACHED as "
            "print 'async primitive'")
        db = server.catalog.get_database("sentineldb")
        trigger = db.get_trigger("sharma", "ECA_stock_insert")
        assert "execute" not in trigger.source.lower().replace(
            "executed", "")  # no inline proc call
        astock.execute("insert stock values ('A', 1, 1)")
        agent.action_handler.join_detached()
        log = [r for r in agent.action_handler.action_log
               if r.trigger_internal.endswith("t1")]
        assert len(log) == 1


class TestDefaults:
    def test_default_coupling_is_immediate(self, astock, agent):
        astock.execute(
            "create trigger t on stock for insert event e as print 'x'")
        trigger = agent.eca_triggers["sentineldb.sharma.t"]
        assert trigger.coupling.value == "IMMEDIATE"

    def test_default_context_is_recent(self, astock, agent):
        astock.execute(
            "create trigger t on stock for insert event e as print 'x'")
        trigger = agent.eca_triggers["sentineldb.sharma.t"]
        assert trigger.context.value == "RECENT"

    def test_composite_event_defaults_flow_to_triggers(self, astock, agent):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger tc event c = e1 OR e1 DEFERRED CHRONICLE 4 as "
            "print 'c'")
        astock.execute("create trigger tc2 event c as print 'c2'")
        second = agent.eca_triggers["sentineldb.sharma.tc2"]
        assert second.coupling.value == "DEFERRED"
        assert second.context.value == "CHRONICLE"
        assert second.priority == 4
