"""Long-running mixed-workload integration: the full stack stays sane.

Drives the paper's stock workload through an agent with several rules in
different contexts and couplings, then checks global invariants that
would catch drift anywhere in the pipeline (lost notifications, stale
sysContext rows, snapshot corruption, occurrence-number skew).
"""

import pytest

from repro.workloads import StockWorkload


@pytest.fixture
def loaded(astock, agent):
    astock.execute(
        "create trigger t_add on stock for insert event addStk as print 'a'")
    astock.execute(
        "create trigger t_del on stock for delete event delStk as print 'd'")
    astock.execute(
        "create trigger t_upd on stock for update event updStk as print 'u'")
    astock.execute(
        "create trigger tc1 event c1 = addStk AND delStk RECENT as "
        "select symbol from stock.inserted")
    astock.execute(
        "create trigger tc2 event c2 = addStk SEQ updStk CHRONICLE as "
        "select symbol from stock.inserted")
    astock.execute(
        "create trigger tc3 event c3 = updStk OR delStk CUMULATIVE as "
        "print 'volatility'")
    return astock


def run_workload(conn, count=250, seed=7):
    workload = StockWorkload(seed=seed)
    counts = {"insert": 0, "update": 0, "delete": 0}
    for sql in workload.operations(count):
        kind = sql.split()[0]
        result = conn.execute(sql)
        if result.rowcount > 0:
            counts[kind] += 1
    return counts


class TestWorkloadInvariants:
    def test_every_statement_notifies_once_per_event(self, loaded, agent):
        counts = run_workload(loaded)
        # update statements with 0 rows still fire (Sybase semantics) but
        # the workload only updates held rows; every op notifies once.
        assert agent.notifier.received == agent.channel.sent_count
        assert agent.notifier.rejected == 0

    def test_v_no_matches_statement_count(self, loaded, agent):
        workload = StockWorkload(seed=11)
        inserts = 0
        for sql in workload.operations(200):
            loaded.execute(sql)
            if sql.startswith("insert"):
                inserts += 1
        assert agent.persistent_manager.current_v_no(
            "sentineldb", "sentineldb.sharma.addStk") == inserts

    def test_snapshot_vno_values_are_dense(self, loaded, agent):
        run_workload(loaded, count=150)
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select distinct vNo from sentineldb.sharma.stock_inserted "
            "order by vNo").last.rows
        values = [row[0] for row in rows]
        assert values == list(range(1, len(values) + 1))

    def test_no_failed_actions(self, loaded, agent):
        run_workload(loaded)
        assert [r for r in agent.action_handler.action_log if r.error] == []

    def test_chronicle_seq_fires_bounded_by_initiators(self, loaded, agent):
        counts = run_workload(loaded)
        seq_firings = len([
            r for r in agent.action_handler.action_log
            if r.trigger_internal.endswith("tc2")])
        assert seq_firings <= counts["insert"]
        assert seq_firings > 0

    def test_sys_context_only_holds_active_contexts(self, loaded, agent):
        run_workload(loaded)
        contexts = agent.persistent_manager.execute(
            "sentineldb",
            "select distinct context from sysContext").last.rows
        # Exactly the contexts of the three composite rules, nothing else.
        assert set(row[0] for row in contexts) <= {
            "RECENT", "CHRONICLE", "CUMULATIVE"}

    def test_stack_survives_and_rules_remain_live(self, loaded, agent):
        run_workload(loaded, count=100)
        result = loaded.execute("insert stock values ('FINAL', 1.0, 1)")
        assert "a" in result.messages

    def test_deterministic_rerun(self, server):
        """Two identical stacks given identical workloads agree exactly."""
        from repro.agent import EcaAgent
        from repro.sqlengine import SqlServer

        outcomes = []
        for _ in range(2):
            srv = SqlServer(default_database="sentineldb")
            agent = EcaAgent(srv)
            conn = agent.connect(user="sharma", database="sentineldb")
            conn.execute(
                "create table stock (symbol varchar(10) not null, "
                "price float null, qty int null)")
            conn.execute("create trigger t_add on stock for insert "
                         "event addStk as print 'a'")
            conn.execute("create trigger t_del on stock for delete "
                         "event delStk as print 'd'")
            conn.execute("create trigger tc event c = addStk AND delStk "
                         "CHRONICLE as select symbol from stock.inserted")
            for sql in StockWorkload(seed=3).operations(150):
                conn.execute(sql)
            outcomes.append((
                len(agent.action_handler.action_log),
                agent.persistent_manager.current_v_no(
                    "sentineldb", "sentineldb.sharma.addStk"),
                sorted(map(tuple, conn.execute(
                    "select * from stock").last.rows)),
            ))
            agent.close()
        assert outcomes[0] == outcomes[1]
