"""Section 5.1: internal naming scheme."""

import pytest

from repro.agent import expand_name, internal_name, split_internal
from repro.agent.errors import EcaSyntaxError
from repro.agent.naming import expand_snoop_expression, short_name


class TestExpandName:
    def test_unqualified(self):
        assert expand_name("addStk", "sentineldb", "sharma") == \
            "sentineldb.sharma.addStk"

    def test_owner_qualified(self):
        assert expand_name("sharma.addStk", "sentineldb", "other") == \
            "sentineldb.sharma.addStk"

    def test_fully_qualified_passes_through(self):
        assert expand_name("db.u.e", "x", "y") == "db.u.e"

    def test_too_many_parts(self):
        with pytest.raises(EcaSyntaxError):
            expand_name("a.b.c.d", "db", "u")

    def test_empty_part(self):
        with pytest.raises(EcaSyntaxError):
            expand_name("a..b", "db", "u")


class TestInternalNames:
    def test_compose_and_split_round_trip(self):
        name = internal_name("db", "user", "obj")
        assert split_internal(name) == ("db", "user", "obj")

    def test_split_rejects_short_names(self):
        with pytest.raises(EcaSyntaxError):
            split_internal("justone")

    def test_short_name(self):
        assert short_name("db.u.event") == "event"


class TestSnoopExpansion:
    def test_expands_every_leaf(self):
        expanded = expand_snoop_expression("delStk ^ addStk", "sentineldb", "sharma")
        assert expanded == \
            "(sentineldb.sharma.delStk AND sentineldb.sharma.addStk)"

    def test_preserves_qualified_leaves(self):
        expanded = expand_snoop_expression("other.u.e1 SEQ e2", "db", "me")
        assert "other.u.e1" in expanded
        assert "db.me.e2" in expanded

    def test_expands_inside_ternary_and_temporal(self):
        expanded = expand_snoop_expression(
            "A*(s, m, t) OR (x PLUS [5 sec])", "db", "u")
        assert expanded == \
            "(A*(db.u.s, db.u.m, db.u.t) OR (db.u.x PLUS [5 sec]))"

    def test_periodic_parameter_preserved(self):
        expanded = expand_snoop_expression("P(s, [1 min]:px, t)", "db", "u")
        assert ":px" in expanded
