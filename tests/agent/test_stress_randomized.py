"""Seeded randomized stress: rule churn interleaved with DML.

A deterministic pseudo-random driver creates/drops/toggles ECA rules
while running DML, then checks global invariants — the kind of long-haul
consistency a mediator must keep (registry == persistence == LED == server
catalog).
"""

import random

import pytest

from repro.agent.errors import NameError_


def run_session(agent, conn, seed: int, steps: int = 120) -> dict:
    rng = random.Random(seed)
    next_id = 0
    live_events: list[str] = []          # short names of primitive events
    live_triggers: list[str] = []        # short names of eca triggers
    stats = {"creates": 0, "drops": 0, "dml": 0, "toggles": 0}

    for _step in range(steps):
        roll = rng.random()
        if roll < 0.25 or not live_events:
            # new primitive event + trigger
            next_id += 1
            event = f"ev{next_id}"
            trigger = f"tr{next_id}"
            operation = rng.choice(["insert", "update", "delete"])
            conn.execute(
                f"create trigger {trigger} on stock for {operation} "
                f"event {event} as print '{trigger}'")
            live_events.append(event)
            live_triggers.append(trigger)
            stats["creates"] += 1
        elif roll < 0.35 and len(live_events) >= 2:
            # composite over two random live events
            next_id += 1
            left, right = rng.sample(live_events, 2)
            operator = rng.choice(["AND", "OR", "SEQ"])
            context = rng.choice(
                ["RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE"])
            conn.execute(
                f"create trigger trc{next_id} event evc{next_id} = "
                f"{left} {operator} {right} {context} as print 'c{next_id}'")
            live_triggers.append(f"trc{next_id}")
            stats["creates"] += 1
        elif roll < 0.45 and live_triggers:
            victim = rng.choice(live_triggers)
            conn.execute(f"drop trigger {victim}")
            live_triggers.remove(victim)
            stats["drops"] += 1
        elif roll < 0.55 and live_triggers:
            victim = rng.choice(live_triggers)
            conn.execute(f"alter trigger {victim} "
                         f"{rng.choice(['enable', 'disable'])}")
            stats["toggles"] += 1
        else:
            kind = rng.random()
            if kind < 0.6:
                conn.execute(
                    f"insert stock values ('S{next_id}_{_step}', "
                    f"{rng.randint(1, 100)}.0, {rng.randint(1, 50)})")
            elif kind < 0.8:
                conn.execute(
                    f"update stock set price = price + 1 "
                    f"where qty > {rng.randint(0, 50)}")
            else:
                conn.execute(
                    f"delete stock where qty = {rng.randint(1, 50)}")
            stats["dml"] += 1
    return stats


@pytest.mark.parametrize("seed", [1, 7, 42])
class TestRandomizedChurn:
    def test_registries_stay_consistent(self, agent, astock, seed):
        stats = run_session(agent, astock, seed)
        assert stats["dml"] > 0 and stats["creates"] > 0

        # Invariant: agent registry == persisted SysEcaTrigger rows.
        persisted = agent.persistent_manager.execute(
            "sentineldb", "select count(*) from SysEcaTrigger").last.scalar()
        assert persisted == len(agent.eca_triggers)

        # Invariant: every registered trigger has its procedure and its
        # runtime; every LED rule maps back to a registered trigger.
        for internal, trigger in agent.eca_triggers.items():
            assert internal in agent.trigger_runtime
            db = agent.server.catalog.get_database(trigger.db_name)
            from repro.agent.naming import split_internal

            _db, owner, proc = split_internal(trigger.proc_name)
            assert db.get_procedure(owner, proc) is not None
        for rule_name in agent.led.rules:
            assert rule_name.lower() in agent.trigger_runtime

        # Invariant: no failed actions, no rejected notifications.
        assert [r for r in agent.action_handler.action_log if r.error] == []
        assert agent.notifier.rejected == 0

    def test_recovery_reproduces_churned_state(self, server, agent, astock, seed):
        from repro.agent import EcaAgent

        run_session(agent, astock, seed, steps=80)
        before = {
            "triggers": sorted(agent.eca_triggers),
            "primitives": sorted(agent.primitive_events),
            "composites": sorted(agent.composite_events),
        }
        agent.close()
        restarted = EcaAgent(server)
        after = {
            "triggers": sorted(restarted.eca_triggers),
            "primitives": sorted(restarted.primitive_events),
            "composites": sorted(restarted.composite_events),
        }
        assert before == after
        restarted.close()

    def test_dropping_everything_leaves_clean_state(self, agent, astock, seed):
        run_session(agent, astock, seed, steps=60)
        for internal in list(agent.eca_triggers.values()):
            astock.execute(f"drop trigger {internal.trigger_name}")
        # Events without triggers can all be dropped (composites first,
        # until a fixpoint, since they may reference each other).
        remaining = list(agent.composite_events.values()) + \
            list(agent.primitive_events.values())
        progress = True
        while remaining and progress:
            progress = False
            for definition in list(remaining):
                try:
                    astock.execute(f"drop event {definition.event_name}")
                except NameError_:
                    continue
                remaining.remove(definition)
                progress = True
        assert remaining == []
        assert agent.eca_triggers == {}
        assert agent.led.rules == {}
        count = agent.persistent_manager.execute(
            "sentineldb",
            "select count(*) from SysEcaTrigger").last.scalar()
        assert count == 0
