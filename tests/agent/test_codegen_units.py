"""Unit tests for the code generator helpers (Figures 11/14 building blocks)."""

import pytest

from repro.agent import codegen
from repro.agent.model import EcaTriggerDef, PrimitiveEventDef, TableOpRegistration
from repro.led.rules import Context


@pytest.fixture
def event():
    return PrimitiveEventDef(
        db_name="sentineldb", user_name="sharma", event_name="addStk",
        table_owner="sharma", table_name="stock", operation="insert")


@pytest.fixture
def trigger():
    return EcaTriggerDef(
        db_name="sentineldb", user_name="sharma", trigger_name="t_and",
        event_internal="sentineldb.sharma.addDel",
        action_sql="select symbol from stock.inserted",
        context=Context.RECENT)


class TestModelDerivedNames:
    def test_internal_name(self, event):
        assert event.internal == "sentineldb.sharma.addStk"

    def test_snapshot_table(self, event):
        assert event.snapshot_table() == "sentineldb.sharma.stock_inserted"

    def test_delete_event_snapshot_direction(self):
        delete_event = PrimitiveEventDef(
            db_name="d", user_name="u", event_name="e",
            table_owner="u", table_name="t", operation="delete")
        assert delete_event.snapshot_direction == "deleted"
        assert delete_event.snapshot_directions == ("deleted",)

    def test_update_event_snapshots_both(self):
        update_event = PrimitiveEventDef(
            db_name="d", user_name="u", event_name="e",
            table_owner="u", table_name="t", operation="update")
        assert update_event.snapshot_directions == ("deleted", "inserted")

    def test_version_table(self, event):
        assert event.version_table == "sentineldb.sharma.addStk_Version"

    def test_native_trigger_name(self, event):
        assert event.native_trigger_name == "ECA_stock_insert"

    def test_proc_name_matches_paper(self, trigger):
        # Example 1 stores "sentineldb.sharma.t_addStk__Proc".
        assert trigger.proc_name == "sentineldb.sharma.t_and__Proc"


class TestSnapshotSql:
    def test_uses_select_into_where_1_2(self, event):
        sql = codegen.snapshot_table_sql(
            event, "inserted", "sentineldb.sharma.stock")
        assert "select * into sentineldb.sharma.stock_inserted" in sql
        assert "where 1 = 2" in sql
        assert "add vNo int null" in sql

    def test_version_table_seeded(self, event):
        sql = codegen.version_table_sql(event)
        assert "create table sentineldb.sharma.addStk_Version" in sql
        assert "values (0)" in sql


class TestNativeTriggerSql:
    def test_one_block_per_event(self, event):
        second = PrimitiveEventDef(
            db_name="sentineldb", user_name="sharma", event_name="other",
            table_owner="sharma", table_name="stock", operation="insert")
        registration = TableOpRegistration(
            db_name="sentineldb", table_owner="sharma",
            table_name="stock", operation="insert")
        sql = codegen.native_trigger_sql(
            registration, [event, second], [], "sentineldb.dbo",
            "127.0.0.1", 10006)
        assert sql.count("/* event ") == 2
        # Both events' segments travel in ONE coalesced datagram.
        assert sql.count("syb_sendmsg") == 1
        assert 'select @msg = @msg + ";"' in sql

    def test_inline_procs_appended_in_order(self, event):
        registration = TableOpRegistration(
            db_name="sentineldb", table_owner="sharma",
            table_name="stock", operation="insert")
        sql = codegen.native_trigger_sql(
            registration, [event], ["p.first", "p.second"],
            "sentineldb.dbo", "h", 1)
        assert sql.index("execute p.first") < sql.index("execute p.second")

    def test_notification_address_baked_in(self, event):
        registration = TableOpRegistration(
            db_name="sentineldb", table_owner="sharma",
            table_name="stock", operation="insert")
        sql = codegen.native_trigger_sql(
            registration, [event], [], "sentineldb.dbo",
            "128.227.205.215", 10006)
        # The paper's Figure 11 hard-codes exactly this form.
        assert '"128.227.205.215", 10006' in sql


class TestActionRewriting:
    def resolve(self, text):
        if text.split(".")[-1].lower() == "stock":
            return "sentineldb.sharma.stock"
        return None

    def test_tmp_mode(self):
        rewritten = codegen.rewrite_action_sql(
            "select * from stock.inserted where x in "
            "(select y from stock.deleted)", self.resolve, "tmp")
        assert "sentineldb.sharma.stock_inserted_tmp" in rewritten
        assert "sentineldb.sharma.stock_deleted_tmp" in rewritten

    def test_pseudo_mode(self):
        rewritten = codegen.rewrite_action_sql(
            "select * from stock.inserted", self.resolve, "pseudo")
        assert rewritten == "select * from inserted"

    def test_unknown_table_left_alone(self):
        text = "select * from other.inserted"
        assert codegen.rewrite_action_sql(text, self.resolve, "tmp") == text

    def test_owner_qualified_reference(self):
        rewritten = codegen.rewrite_action_sql(
            "select * from sharma.stock.inserted", self.resolve, "tmp")
        assert "stock_inserted_tmp" in rewritten

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            codegen.rewrite_action_sql("x", self.resolve, "nope")

    def test_plain_table_reference_untouched(self):
        text = "select inserted_total from stock"
        assert codegen.rewrite_action_sql(text, self.resolve, "tmp") == text


class TestContextProcessingSql:
    def test_figure_14_join_shape(self):
        statements = codegen.context_processing_sql(
            ["sentineldb.sharma.stock_inserted"], Context.RECENT,
            "sentineldb.dbo")
        assert statements[0] == "delete sentineldb.sharma.stock_inserted_tmp"
        join = statements[1]
        assert 'sysContext.context = "RECENT"' in join
        assert 'tableName = "sentineldb.sharma.stock_inserted"' in join
        assert "stock_inserted.vNo = sentineldb.dbo.sysContext.vNo" in join

    def test_one_block_per_snapshot(self):
        statements = codegen.context_processing_sql(
            ["a.b.t1_inserted", "a.b.t2_deleted"], Context.CHRONICLE, "a.dbo")
        assert len(statements) == 4


class TestSysContextRefreshSql:
    def test_clears_all_then_inserts_participants(self):
        statements, params = codegen.sys_context_refresh_sql(
            entries=[("a.b.t1_inserted", 3)],
            all_tables=["a.b.t1_inserted", "a.b.t2_deleted"],
            context=Context.RECENT,
            system_db_prefix="a.dbo",
        )
        deletes = [s for s in statements if s.startswith("delete")]
        inserts = [s for s in statements if s.startswith("insert")]
        assert len(deletes) == 2          # stale rows cleared everywhere
        assert len(inserts) == 1
        # occurrence numbers travel as parameter slots, not literals, so
        # the batch text repeats across firings (plan-cache friendly)
        assert '"a.b.t1_inserted", "RECENT", @eca_vno0' in inserts[0]
        assert params == {"@eca_vno0": 3}

    def test_refresh_text_is_constant_across_firings(self):
        kwargs = dict(
            all_tables=["a.b.t1_inserted"],
            context=Context.RECENT,
            system_db_prefix="a.dbo",
        )
        first, params1 = codegen.sys_context_refresh_sql(
            entries=[("a.b.t1_inserted", 3)], **kwargs)
        second, params2 = codegen.sys_context_refresh_sql(
            entries=[("a.b.t1_inserted", 99)], **kwargs)
        assert first == second
        assert params1 != params2
