"""Section 5.6 end-to-end: parameter contexts through the whole stack.

The four-step context handling: snapshot on primitive occurrence, derive
the parameter list from the LED occurrence, insert into ``sysContext``,
and join ``sysContext`` with the snapshot table inside the generated
procedure.  Each context must deliver its documented parameter rows to
the action's ``<table>.inserted`` view.
"""

import pytest


def setup_events(conn):
    conn.execute(
        "create trigger t_add on stock for insert event addStk as print 'a'")
    conn.execute(
        "create trigger t_del on stock for delete event delStk as print 'd'")


def tmp_rows(agent):
    return agent.persistent_manager.execute(
        "sentineldb",
        "select symbol from sentineldb.sharma.stock_inserted_tmp "
        "order by symbol").last.rows


class TestContextsEndToEnd:
    def test_recent_delivers_latest_insert(self, astock, agent):
        setup_events(astock)
        astock.execute(
            "create trigger tc event c = addStk AND delStk RECENT as "
            "select symbol from stock.inserted")
        astock.execute("insert stock values ('OLD', 1, 1)")
        astock.execute("insert stock values ('NEW', 2, 2)")
        astock.execute("delete stock where symbol = 'OLD'")
        assert tmp_rows(agent) == [["NEW"]]

    def test_chronicle_delivers_oldest_insert(self, astock, agent):
        setup_events(astock)
        astock.execute(
            "create trigger tc event c = addStk AND delStk CHRONICLE as "
            "select symbol from stock.inserted")
        astock.execute("insert stock values ('OLD', 1, 1)")
        astock.execute("insert stock values ('NEW', 2, 2)")
        astock.execute("delete stock where symbol = 'NEW'")
        assert tmp_rows(agent) == [["OLD"]]

    def test_cumulative_delivers_all_inserts(self, astock, agent):
        setup_events(astock)
        astock.execute(
            "create trigger tc event c = addStk AND delStk CUMULATIVE as "
            "select symbol from stock.inserted")
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("insert stock values ('B', 2, 2)")
        astock.execute("delete stock where symbol = 'A'")
        assert tmp_rows(agent) == [["A"], ["B"]]

    def test_continuous_fires_per_initiator(self, astock, agent):
        setup_events(astock)
        astock.execute(
            "create trigger tc event c = addStk AND delStk CONTINUOUS as "
            "select symbol from stock.inserted")
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("insert stock values ('B', 2, 2)")
        astock.execute("delete stock where symbol = 'A'")
        records = [r for r in agent.action_handler.action_log
                   if r.trigger_internal.endswith("tc")]
        assert len(records) == 2

    def test_deleted_side_parameters(self, astock, agent):
        setup_events(astock)
        astock.execute(
            "create trigger tc event c = addStk AND delStk RECENT as "
            "select symbol from stock.deleted")
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("insert stock values ('B', 2, 2)")
        astock.execute("delete stock where symbol = 'A'")
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select symbol from sentineldb.sharma.stock_deleted_tmp"
        ).last.rows
        assert rows == [["A"]]

    def test_multi_row_statement_binds_whole_statement(self, astock, agent):
        setup_events(astock)
        astock.execute(
            "create trigger tc event c = addStk AND delStk RECENT as "
            "select symbol from stock.inserted")
        astock.execute("insert stock values ('X', 1, 1), ('Y', 2, 2)")
        astock.execute("delete stock where symbol = 'X'")
        # Both rows of the single insert statement share one vNo.
        assert tmp_rows(agent) == [["X"], ["Y"]]

    def test_stale_context_rows_cleared_between_firings(self, astock, agent):
        setup_events(astock)
        astock.execute(
            "create trigger tc event c = addStk AND delStk RECENT as "
            "select symbol from stock.inserted")
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("insert stock values ('B', 1, 1)")
        astock.execute("delete stock where symbol = 'A'")
        astock.execute("insert stock values ('C', 1, 1)")
        astock.execute("delete stock where symbol = 'B'")
        assert tmp_rows(agent) == [["C"]]

    def test_two_rules_different_contexts_coexist(self, astock, agent):
        setup_events(astock)
        astock.execute(
            "create trigger t_recent event c1 = addStk AND delStk RECENT as "
            "select symbol from stock.inserted")
        astock.execute(
            "create trigger t_cumulative event c2 = addStk AND delStk "
            "CUMULATIVE as select symbol from stock.inserted")
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("insert stock values ('B', 2, 2)")
        astock.execute("delete stock where symbol = 'A'")
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select context, vNo from sysContext "
            "where tableName = 'sentineldb.sharma.stock_inserted' "
            "order by context, vNo").last.rows
        assert ["CUMULATIVE", 1] in rows
        assert ["CUMULATIVE", 2] in rows
        assert ["RECENT", 2] in rows
        assert ["RECENT", 1] not in rows
