"""E2E: the operator introspection commands through the gateway.

``show agent stats`` / ``show agent trace`` / ``reset agent stats`` are
ordinary commands a client sends over its existing connection — the
Language Filter intercepts them (the agent's ``sp_monitor`` analogue),
so the DBMS engine never sees them.
"""

import pytest

from repro.agent import AgentError

EX_ADD = (
    "create trigger t_add on stock for insert event addStk as print 'add'")
EX_DEL = (
    "create trigger t_del on stock for delete event delStk as print 'del'")
EX_AND = (
    "create trigger t_and event addDel = delStk ^ addStk RECENT\n"
    "as print 'composite'")


def _counter(result, metric, labels):
    """Value of one counter row in a ``show agent stats`` result."""
    for row in result.result_sets[0].as_dicts():
        if row["metric"] == metric and row["labels"] == labels:
            return row["value"]
    raise AssertionError(
        f"no counter row {metric}{{{labels}}} in:\n"
        + result.result_sets[0].format_table())


def _latency(result, metric, labels=""):
    """The latency-summary row for one histogram child."""
    for row in result.result_sets[1].as_dicts():
        if row["metric"] == metric and row["labels"] == labels:
            return row
    raise AssertionError(
        f"no latency row {metric}{{{labels}}} in:\n"
        + result.result_sets[1].format_table())


@pytest.fixture
def active(astock):
    """A mediated connection with stats+trace on and a workload executed:
    two primitive events, one RECENT composite, inserts and a delete."""
    astock.execute("set agent stats on")
    astock.execute("set agent trace on")
    astock.execute(EX_ADD)
    astock.execute(EX_DEL)
    astock.execute(EX_AND)
    astock.execute("insert stock values ('IBM', 101.5, 10)")
    astock.execute("delete stock where symbol = 'IBM'")
    return astock


class TestShowAgentStats:
    def test_commands_classified_eca_vs_passthrough(self, active):
        result = active.execute("show agent stats")
        assert _counter(result, "agent_commands_total", "kind=eca") == 3
        # stock DDL happened before stats were enabled; the two DML
        # statements and this very command's predecessors passed through.
        assert _counter(
            result, "agent_commands_total", "kind=passthrough") == 2
        assert _counter(result, "agent_commands_total", "kind=admin") >= 1

    def test_eca_commands_by_kind(self, active):
        result = active.execute("show agent stats")
        assert _counter(
            result, "agent_eca_commands_total", "kind=create_primitive") == 2
        assert _counter(
            result, "agent_eca_commands_total", "kind=create_composite") == 1

    def test_events_detected_by_kind_and_context(self, active):
        result = active.execute("show agent stats")
        assert _counter(
            result, "led_events_detected_total",
            "kind=primitive,context=-") == 2
        assert _counter(
            result, "led_events_detected_total",
            "kind=composite,context=RECENT") == 1

    def test_rules_fired_and_actions_executed(self, active):
        result = active.execute("show agent stats")
        assert _counter(
            result, "led_rules_fired_total", "coupling=IMMEDIATE") == 1
        assert _counter(result, "agent_actions_total", "status=ok") == 1

    def test_sql_statements_by_type(self, active):
        result = active.execute("show agent stats")
        assert _counter(result, "sql_statements_total", "type=insert") >= 1
        assert _counter(result, "sql_statements_total", "type=delete") >= 1

    def test_latency_summaries_present(self, active):
        result = active.execute("show agent stats")
        row = _latency(result, "agent_command_seconds", "kind=eca")
        assert row["count"] == 3
        assert 0 <= row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        assert row["max_ms"] >= row["p99_ms"]
        assert _latency(result, "agent_notification_seconds")["count"] == 2

    def test_stats_off_returns_data_with_warning(self, astock):
        result = astock.execute("show agent stats")
        assert any("set agent stats on" in m for m in result.messages)


class TestShowAgentTrace:
    def test_trace_shows_span_tree(self, active):
        result = active.execute("show agent trace 200")
        steps = result.result_sets[0].column_values("step")
        stripped = [step.strip() for step in steps]
        assert "fig3.3:classified-eca" in stripped
        assert "eca:parse" in stripped
        assert "eca:codegen" in stripped
        assert "fig4.2-3:notification-received" in stripped
        assert "fig4.4:led-detected" in stripped
        assert "rule:action" in stripped
        # nesting is visible as indentation
        assert any(step.startswith("  ") for step in steps)

    def test_trace_row_limit(self, active):
        result = active.execute("show agent trace 3")
        assert len(result.result_sets[0]) == 3

    def test_trace_off_warns(self, astock):
        result = astock.execute("show agent trace")
        assert any("set agent trace on" in m for m in result.messages)


class TestResetAndToggle:
    def test_reset_agent_stats_zeroes_counters(self, active):
        active.execute("reset agent stats")
        result = active.execute("show agent stats")
        # only the reset itself and this show have been counted since
        assert _counter(result, "agent_commands_total", "kind=admin") == 1

    def test_reset_agent_trace_clears_buffer(self, active):
        active.execute("reset agent trace")
        result = active.execute("show agent trace")
        steps = result.result_sets[0].column_values("step")
        assert all("fig3.3" not in step for step in steps)

    def test_set_agent_stats_off_stops_counting(self, active):
        active.execute("set agent stats off")
        before = active.endpoint.commands_total
        active.execute("select * from stock")
        result = active.execute("show agent stats")
        assert active.endpoint.commands_total == before + 2
        assert _counter(
            result, "agent_commands_total", "kind=passthrough") == 2

    def test_show_agent_status(self, active):
        result = active.execute("show agent status")
        status = dict(result.result_sets[0].rows)
        assert status["stats"] == "on"
        assert status["trace"] == "on"
        assert status["trace_records"] > 0


class TestShowAgentCache:
    def test_counters_and_index_listing(self, active):
        server = active.endpoint.agent.server
        server.plan_cache.enabled = True
        active.execute("select * from stock")
        active.execute("select * from stock")
        result = active.execute("show agent cache")
        summary = dict(result.result_sets[0].rows)
        assert summary["plan_cache"] == "on"
        assert summary["plan_cache_hits"] >= 1
        assert summary["plan_cache_size"] >= 1
        assert summary["schema_epoch"] == server.catalog.schema_epoch
        # system-table auto-indexes appear in the listing
        indexes = result.result_sets[2]
        assert indexes.columns == [
            "table", "index", "column", "unique", "rebuilds"]
        names = [row[1] for row in indexes.rows]
        assert any(name.startswith("ECA_") for name in names)

    def test_cached_entries_show_kind_and_hits(self, active):
        server = active.endpoint.agent.server
        server.plan_cache.enabled = True
        for _ in range(3):
            active.execute("select * from stock")
        result = active.execute("show agent cache")
        entries = result.result_sets[1]
        assert entries.columns == ["statement", "kind", "hits"]
        by_text = {row[0]: (row[1], row[2]) for row in entries.rows}
        kind, hits = by_text["select * from stock"]
        # executed 3x: first populates, later runs hit the text entry;
        # the planner memoizes the optimized DAG, so the entry is a plan
        kind_expected = ("plan" if server.planner_enabled else "parse")
        assert kind == kind_expected
        assert hits >= 2
        assert all(row[1] in ("plan", "parse") for row in entries.rows)

    def test_cached_entry_text_is_clipped(self, active):
        server = active.endpoint.agent.server
        server.plan_cache.enabled = True
        padding = " or symbol = 'X'" * 20
        active.execute(f"select * from stock where symbol = 'A'{padding}")
        result = active.execute("show agent cache")
        entries = result.result_sets[1]
        assert all(len(row[0]) <= 80 for row in entries.rows)
        assert any(row[0].endswith("...") for row in entries.rows)

    def test_row_limit_and_truncation_notice(self, active):
        server = active.endpoint.agent.server
        server.plan_cache.enabled = True
        active.execute("select * from stock")
        active.execute("select 1")
        result = active.execute("show agent cache 1")
        assert len(result.result_sets[1]) == 1
        assert len(result.result_sets[2]) == 1
        assert any("cached batches" in m for m in result.messages)
        assert any("indexes" in m for m in result.messages)

    def test_count_clamped_to_one(self, active):
        result = active.execute("show agent cache -5")
        assert len(result.result_sets[2]) == 1

    def test_bad_count_answered_not_raised(self, active):
        result = active.execute("show agent cache nope")
        assert result.result_sets[0].columns == ["error"]
        assert "row count" in result.result_sets[0].rows[0][0]

    def test_reset_agent_cache(self, active):
        server = active.endpoint.agent.server
        server.plan_cache.enabled = True
        active.execute("select * from stock")
        active.execute("select * from stock")
        active.execute("reset agent cache")
        stats = server.plan_cache.stats()
        assert stats["size"] == 0
        assert stats["hits"] == 0
        assert server.index_scans == 0

    def test_coalescing_counters_surface(self, active):
        # EX_ADD and EX_DEL watch different operations, so this insert
        # notifies one event per datagram: no coalescing yet, but the
        # counters exist and read zero.
        result = active.execute("show agent cache")
        summary = dict(result.result_sets[0].rows)
        assert summary["coalesced_payloads"] == 0
        assert summary["coalesced_events"] == 0


class TestErrors:
    def test_unknown_agent_command_raises_usage(self, astock):
        with pytest.raises(AgentError, match="show agent stats"):
            astock.execute("show agent blimey")

    def test_admin_commands_do_not_reach_the_engine(self, astock):
        before = astock.endpoint.commands_passed_through
        astock.execute("show agent status")
        assert astock.endpoint.commands_passed_through == before
