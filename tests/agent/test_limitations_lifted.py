"""E-SEC2.2 (lifted): every native restriction the agent removes.

The companion file ``tests/sqlengine/test_native_triggers.py`` shows the
restrictions holding on the raw engine; here each one is shown lifted
when the same client speaks to the ECA Agent instead.
"""

import pytest


@pytest.fixture
def base(astock):
    return astock


class TestRestrictionsLifted:
    def test_events_can_be_named_and_reused(self, base, agent):
        base.execute(
            "create trigger t1 on stock for insert event namedEvent as print '1'")
        base.execute("create trigger t2 event namedEvent as print '2'")
        result = base.execute("insert stock values ('A', 1, 1)")
        assert "1" in result.messages and "2" in result.messages

    def test_multiple_triggers_per_operation_no_overwrite(self, base, agent):
        # Native: a second insert-trigger silently displaces the first.
        # Agent: both coexist as ECA triggers on named events.
        base.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        base.execute(
            "create trigger t2 on stock for insert event e2 as print '2'")
        assert len(agent.eca_triggers) == 2
        result = base.execute("insert stock values ('A', 1, 1)")
        assert "1" in result.messages and "2" in result.messages

    def test_rules_spanning_multiple_tables(self, base, agent):
        # Native: "A trigger cannot be applied to more than one table."
        base.execute("create table orders (id int)")
        base.execute(
            "create trigger ts on stock for insert event sIns as print 's'")
        base.execute(
            "create trigger to1 on orders for insert event oIns as print 'o'")
        base.execute(
            "create trigger tboth event both = sIns AND oIns as "
            "print 'spans two tables'")
        base.execute("insert stock values ('A', 1, 1)")
        result = base.execute("insert orders values (1)")
        assert "spans two tables" in result.messages

    def test_composite_events_specifiable(self, base, agent):
        base.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        base.execute(
            "create trigger t2 on stock for delete event e2 as print '2'")
        base.execute(
            "create trigger tc event c = NOT(e1, e2, e1) as print 'not!'")
        base.execute("insert stock values ('A', 1, 1)")
        result = base.execute("insert stock values ('B', 2, 2)")
        assert "not!" in result.messages

    def test_dropping_specific_eca_trigger_leaves_others(self, base, agent):
        base.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        base.execute("create trigger t2 event e1 as print '2'")
        base.execute("drop trigger t1")
        result = base.execute("insert stock values ('A', 1, 1)")
        assert "1" not in result.messages
        assert "2" in result.messages

    def test_native_trigger_slot_reused_transparently(self, base, agent, server):
        # The agent occupies the single native slot per (table, op) with
        # its generated trigger, multiplexing all named events over it.
        base.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        base.execute(
            "create trigger t2 on stock for insert event e2 as print '2'")
        triggers = server.trigger_names("sentineldb")
        generated = [name for name in triggers if "ECA_stock_insert" in name]
        assert len(generated) == 1


class TestLimitationStillVisibleWithoutAgent:
    def test_direct_connection_keeps_native_semantics(self, agent, server):
        # A client bypassing the agent still gets the passive engine.
        from repro.sqlengine import connect

        direct = connect(server, user="x", database="sentineldb")
        direct.execute("create table t (a int)")
        direct.execute("create trigger tr1 on t for insert as print 'one'")
        direct.execute("create trigger tr2 on t for insert as print 'two'")
        assert direct.execute("insert t values (1)").messages == ["two"]
