"""End-to-end trace-context propagation (the PR's acceptance scenario).

One client command submitted through the pooled gateway queues, runs on
a worker, raises a primitive event, completes a composite, and fires two
DETACHED rule actions on their own threads — and every span of that
journey must land in ONE connected tree under the command's trace id,
with the same id correlated across telemetry JSONL, the flight
recorder, histogram exemplars, ``show agent trace <id>``, and
``explain trigger``.
"""

import json

import pytest

from repro.agent import EcaAgent
from repro.obs import TelemetryExporter
from repro.obs.tracing import FIG4_ACTION_RUN, SPAN_QUEUE_WAIT

STOCK_DDL = (
    "create table stock (symbol varchar(10) not null, "
    "price float null, qty int null)")

INSERT = "insert stock values ('IBM', 1.0, 1)"

RULES = (
    "create trigger t_add on stock for insert event e_add as print 'add'",
    "create trigger t_del on stock for delete event e_del as print 'del'",
    "create trigger t_and event e_both = e_del ^ e_add RECENT as "
    "print 'and fired'",
    "create trigger t_det1 event e_add DETACHED as print 'det one'",
    "create trigger t_det2 event e_add DETACHED as print 'det two'",
)


@pytest.fixture
def traced_stack(server, tmp_path):
    """A 4-worker agent with the composite + two DETACHED rules, every
    correlation surface armed, and a telemetry exporter attached."""
    path = str(tmp_path / "telemetry.jsonl")
    agent = EcaAgent(server, workers=4,
                     exporter=TelemetryExporter(path, max_bytes=0))
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    for rule in RULES:
        conn.execute(rule)
    agent.metrics.enabled = True
    agent.trace.enabled = True
    conn.execute("set agent provenance on")
    conn.execute("set agent slowlog 0")
    yield agent, conn, path
    agent.close()


def run_client_command(agent):
    """Submit delete-then-insert through one pooled gateway session and
    wait for every downstream thread; returns the insert's trace id and
    its pinned spans."""
    gateway = agent.gateway
    session = gateway.open_session("sharma", "sentineldb")
    gateway.submit_for(session, "delete stock").result()
    gateway.submit_for(session, INSERT).result()
    agent.action_handler.join_detached()
    agent.drain()
    session.closed = True
    for trace_id in agent.trace.trace_ids():
        spans = agent.trace.spans_for(trace_id)
        if spans and spans[0].parent is None \
                and spans[0].detail.startswith("insert stock"):
            return trace_id, spans
    raise AssertionError("no trace rooted at the insert command")


class TestOneConnectedTree:
    def test_single_root_no_orphans(self, traced_stack):
        agent, _conn, _path = traced_stack
        trace_id, spans = run_client_command(agent)
        roots = [s for s in spans if s.parent is None]
        assert len(roots) == 1
        seqs = {s.seq for s in spans}
        orphans = [s for s in spans
                   if s.parent is not None and s.parent not in seqs]
        assert orphans == []
        assert all(s.trace_id == trace_id for s in spans)

    def test_tree_has_queue_wait_and_two_action_spans(self, traced_stack):
        agent, _conn, _path = traced_stack
        _trace_id, spans = run_client_command(agent)
        steps = [s.step for s in spans]
        assert SPAN_QUEUE_WAIT in steps
        # the two DETACHED actions (plus any IMMEDIATE ones) ran on
        # other threads yet still belong to this command's tree
        assert steps.count(FIG4_ACTION_RUN) >= 2

    def test_queue_wait_span_is_child_of_root(self, traced_stack):
        agent, _conn, _path = traced_stack
        _trace_id, spans = run_client_command(agent)
        root = spans[0]
        wait = next(s for s in spans if s.step == SPAN_QUEUE_WAIT)
        assert wait.parent == root.seq
        assert wait.duration is not None and wait.duration >= 0


class TestCorrelationSurfaces:
    def test_telemetry_lines_carry_the_trace_id(self, traced_stack):
        agent, _conn, path = traced_stack
        trace_id, _spans = run_client_command(agent)
        agent.export_telemetry(label="test")
        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        span_lines = [line for line in lines
                      if line["type"] == "span"
                      and line.get("trace_id") == trace_id]
        assert span_lines
        provenance_lines = [line for line in lines
                            if line["type"] == "provenance"
                            and line.get("trace_id") == trace_id]
        assert provenance_lines

    def test_flight_recorder_entry_carries_the_trace_id(self,
                                                        traced_stack):
        agent, conn, _path = traced_stack
        trace_id, _spans = run_client_command(agent)
        captured = [op.trace_id for op in agent.flightrec.tail(50)]
        assert trace_id in captured
        result = conn.execute("show agent slow 50")
        [rows] = result.result_sets
        column = rows.columns.index("trace_id")
        assert trace_id in [row[column] for row in rows.rows]

    def test_histogram_exemplar_carries_the_trace_id(self, traced_stack):
        agent, _conn, _path = traced_stack
        trace_id, _spans = run_client_command(agent)
        family = agent.metrics.get("agent_command_seconds")
        pinned = [exemplar_id
                  for items in family.labels("passthrough")
                  .exemplars().values()
                  for exemplar_id, _value in items]
        assert trace_id in pinned
        assert f'trace_id="{trace_id}"' in agent.metrics.render_text()


class TestAdminLookup:
    def test_show_agent_trace_renders_the_tree(self, traced_stack):
        agent, conn, _path = traced_stack
        trace_id, spans = run_client_command(agent)
        result = conn.execute(f"show agent trace {trace_id}")
        [rows] = result.result_sets
        assert len(rows.rows) == len(spans)
        step_col = rows.columns.index("step")
        steps = [row[step_col] for row in rows.rows]
        assert any(s.strip() == SPAN_QUEUE_WAIT for s in steps)
        # children are indented below the root
        assert steps[0] == steps[0].lstrip()
        assert any(s != s.lstrip() for s in steps[1:])
        assert any(str(len(spans)) in m for m in result.messages)

    def test_unknown_trace_id_is_an_error_row(self, astock):
        result = astock.execute("show agent trace t999999")
        [rows] = result.result_sets
        assert rows.columns == ["error"]
        assert "t999999" in rows.rows[0][0]

    def test_numeric_argument_still_tails_the_buffer(self, astock):
        astock.execute("set agent trace on")
        astock.execute(INSERT)
        result = astock.execute("show agent trace 3")
        assert result.result_sets[0].columns != ["error"]

    def test_status_reports_store_and_sampling(self, traced_stack):
        agent, conn, _path = traced_stack
        run_client_command(agent)
        status = dict(conn.execute(
            "show agent status").result_sets[0].rows)
        assert status["traces_stored"] >= 1
        assert status["trace_sampling"] == 0


class TestTraceNextSampling:
    def test_window_arms_samples_and_restores(self, astock, agent):
        assert not agent.trace.enabled
        result = astock.execute("trace next 2")
        assert any("next 2" in m for m in result.messages)
        # slot 1: the status command itself is sampled
        status = dict(astock.execute(
            "show agent status").result_sets[0].rows)
        assert status["trace_sampling"] == 1
        astock.execute(INSERT)        # slot 2: last sampled command
        assert agent.trace.enabled    # restore is deferred one command
        astock.execute(INSERT)        # window spent: restores disabled
        assert not agent.trace.enabled
        assert agent.trace.trace_count() >= 2

    def test_validation(self, astock):
        for bad in ("trace next", "trace next 0", "trace next abc"):
            result = astock.execute(bad)
            assert result.result_sets[0].columns == ["error"]


class TestExplainTriggerLineage:
    def test_detached_action_links_back_to_client_command(self,
                                                          traced_stack):
        agent, conn, _path = traced_stack
        trace_id, _spans = run_client_command(agent)
        summary = dict(conn.execute(
            "explain trigger t_det1").result_sets[0].rows)
        assert summary["last_trace"] == trace_id
        # the composite's IMMEDIATE action ran inside the same command
        summary = dict(conn.execute(
            "explain trigger t_and").result_sets[0].rows)
        assert summary["last_trace"] == trace_id
