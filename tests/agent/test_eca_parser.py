"""Figures 9, 10, 12: the extended trigger syntax, and the Language Filter."""

import pytest

from repro.agent import LanguageFilter, parse_eca_command
from repro.agent.eca_parser import (
    CREATE_COMPOSITE,
    CREATE_ON_EVENT,
    CREATE_PRIMITIVE,
    DROP_EVENT,
    DROP_TRIGGER,
)
from repro.agent.errors import EcaSyntaxError
from repro.led.rules import Context, Coupling

EXAMPLE_1 = """create trigger t_addStk on stock for insert
event addStk
as print " trigger t_addStk on primitive event addStk occurs"
select * from stock"""

EXAMPLE_2 = """create trigger t_and
event addDel = delStk ^ addStk
RECENT
as
print "trigger t_and on composite event addDel = delStk ^ addStk"
select symbol, price from stock.inserted"""


class TestPrimitiveForm:
    """Figure 9."""

    def test_example_1(self):
        command = parse_eca_command(EXAMPLE_1)
        assert command.kind == CREATE_PRIMITIVE
        assert command.trigger_name == "t_addStk"
        assert command.table_name == "stock"
        assert command.operation == "insert"
        assert command.event_name == "addStk"
        assert command.action_sql.startswith('print')

    def test_owner_qualified_names(self):
        command = parse_eca_command(
            "create trigger sharma.t1 on dbo.stock for delete "
            "event sharma.ev as select 1")
        assert command.trigger_name == "sharma.t1"
        assert command.table_name == "dbo.stock"

    @pytest.mark.parametrize("operation", ["insert", "update", "delete"])
    def test_all_operations(self, operation):
        command = parse_eca_command(
            f"create trigger t on tbl for {operation} event e as select 1")
        assert command.operation == operation

    def test_bad_operation(self):
        with pytest.raises(EcaSyntaxError):
            parse_eca_command(
                "create trigger t on tbl for merge event e as select 1")

    def test_modifiers(self):
        command = parse_eca_command(
            "create trigger t on tbl for insert event e "
            "DETACHED CUMULATIVE 5 as select 1")
        assert command.coupling is Coupling.DETACHED
        assert command.context is Context.CUMULATIVE
        assert command.priority == 5

    def test_paper_defered_spelling(self):
        command = parse_eca_command(
            "create trigger t on tbl for insert event e DEFERED as select 1")
        assert command.coupling is Coupling.DEFERRED


class TestOnEventForm:
    """Figure 10: trigger on a previously defined event."""

    def test_minimal(self):
        command = parse_eca_command("create trigger t2 event addStk as select 1")
        assert command.kind == CREATE_ON_EVENT
        assert command.event_name == "addStk"
        assert command.table_name is None

    def test_with_modifiers(self):
        command = parse_eca_command(
            "create trigger t2 event addStk IMMEDIATE CHRONICLE 3 as select 1")
        assert command.context is Context.CHRONICLE
        assert command.priority == 3


class TestCompositeForm:
    """Figure 12."""

    def test_example_2(self):
        command = parse_eca_command(EXAMPLE_2)
        assert command.kind == CREATE_COMPOSITE
        assert command.event_name == "addDel"
        assert command.snoop_text == "delStk ^ addStk"
        assert command.context is Context.RECENT
        assert "stock.inserted" in command.action_sql

    def test_complex_expression_with_time_string(self):
        command = parse_eca_command(
            "create trigger t event big = A*(s, m, t) PLUS [10 sec] "
            "CHRONICLE as select 1")
        assert command.snoop_text == "A*(s, m, t) PLUS [10 sec]"
        assert command.context is Context.CHRONICLE

    def test_expression_keeps_parenthesized_form(self):
        command = parse_eca_command(
            "create trigger t event e = (a SEQ b) OR c as select 1")
        assert command.snoop_text == "(a SEQ b) OR c"

    def test_composite_with_on_clause_rejected(self):
        with pytest.raises(EcaSyntaxError):
            parse_eca_command(
                "create trigger t on tbl for insert event e = a ^ b as select 1")

    def test_empty_expression_rejected(self):
        with pytest.raises(EcaSyntaxError):
            parse_eca_command("create trigger t event e = RECENT as select 1")


class TestDropForms:
    def test_drop_trigger(self):
        command = parse_eca_command("drop trigger t_addStk")
        assert command.kind == DROP_TRIGGER
        assert command.trigger_name == "t_addStk"

    def test_drop_event(self):
        command = parse_eca_command("drop event sharma.addStk")
        assert command.kind == DROP_EVENT
        assert command.event_name == "sharma.addStk"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "create trigger t on tbl for insert event e",        # no AS
        "create trigger t event e as ",                      # empty action
        "create trigger t event e = a ^ b RECENT RECENT as select 1",
        "create trigger t event e IMMEDIATE DETACHED as select 1",
        "create trigger t event e 0 as select 1",            # bad priority
        "select * from stock",                               # not ECA at all
    ])
    def test_rejected(self, bad):
        with pytest.raises(EcaSyntaxError):
            parse_eca_command(bad)

    def test_action_containing_word_as_in_string(self):
        command = parse_eca_command(
            "create trigger t event e as print 'save as draft'")
        assert command.action_sql == "print 'save as draft'"


class TestLanguageFilter:
    def setup_method(self):
        self.filter = LanguageFilter()

    def test_eca_create_trigger(self):
        assert self.filter.classify(EXAMPLE_1) == LanguageFilter.ECA
        assert self.filter.classify(EXAMPLE_2) == LanguageFilter.ECA

    def test_native_create_trigger_is_sql(self):
        assert self.filter.classify(
            "create trigger tr on stock for insert as select * from inserted"
        ) == LanguageFilter.SQL

    def test_plain_sql(self):
        for sql in ("select * from stock", "insert stock values (1)",
                    "create table t (a int)", "exec someproc"):
            assert self.filter.classify(sql) == LanguageFilter.SQL

    def test_drop_trigger_needs_registry(self):
        assert self.filter.classify("drop trigger anything") == \
            LanguageFilter.MAYBE_DROP_TRIGGER

    def test_drop_event_is_eca(self):
        assert self.filter.classify("drop event ev") == LanguageFilter.ECA

    def test_event_word_inside_action_does_not_confuse(self):
        # 'event' after AS belongs to the action, not the header.
        assert self.filter.classify(
            "create trigger tr on t for insert as insert log values ('event')"
        ) == LanguageFilter.SQL

    def test_create_trigger_without_as_falls_back_to_sql(self):
        assert self.filter.classify("create trigger broken") == \
            LanguageFilter.SQL
