"""E-SEC1: one test per claimed contribution (paper Section 1).

1. A client can create composite events and triggers on them.
2. Reuse of previously defined events (both primitive & composite).
3. Drop triggers associated with primitive or composite events.
4. A client can create multiple triggers on the same event.
5. Once events are created, they become persistent in the database system.
6. All primitive and composite events can be detected, and actions are
   invoked within SQL Server.
"""

import pytest


@pytest.fixture
def base(astock):
    astock.execute(
        "create trigger t_add on stock for insert event addStk as print 'a'")
    astock.execute(
        "create trigger t_del on stock for delete event delStk as print 'd'")
    return astock


class TestContribution1CompositeEvents:
    def test_client_creates_composite_and_trigger(self, base):
        base.execute(
            "create trigger t_and event both = addStk AND delStk as "
            "print 'composite!'")
        base.execute("insert stock values ('A', 1, 1)")
        result = base.execute("delete stock")
        assert "composite!" in result.messages

    def test_every_snoop_operator_accepted(self, base, agent):
        operators = {
            "c_or": "addStk OR delStk",
            "c_and": "addStk AND delStk",
            "c_seq": "addStk SEQ delStk",
            "c_not": "NOT(addStk, delStk, addStk)",
            "c_a": "A(addStk, delStk, addStk)",
            "c_astar": "A*(addStk, delStk, addStk)",
            "c_p": "P(addStk, [10 sec], delStk)",
            "c_pstar": "P*(addStk, [10 sec], delStk)",
            "c_plus": "addStk PLUS [5 sec]",
        }
        for index, (name, expr) in enumerate(operators.items()):
            base.execute(
                f"create trigger tr_{name} event {name} = {expr} as print 'x'")
        assert len(agent.composite_events) == len(operators)


class TestContribution2EventReuse:
    def test_primitive_event_reused_by_two_composites(self, base, agent):
        base.execute("create trigger c1 event x1 = addStk AND delStk as print '1'")
        base.execute("create trigger c2 event x2 = addStk SEQ delStk as print '2'")
        assert len(agent.composite_events) == 2

    def test_composite_event_reused_as_constituent(self, base):
        base.execute("create trigger c1 event x1 = addStk AND delStk as print '1'")
        base.execute("create trigger c2 event x2 = x1 SEQ addStk CHRONICLE as print '2'")
        base.execute("insert stock values ('A', 1, 1)")
        base.execute("delete stock")
        result = base.execute("insert stock values ('B', 2, 2)")
        assert "2" in result.messages

    def test_trigger_on_existing_event_without_redefining(self, base):
        base.execute("create trigger extra event addStk as print 'extra'")
        result = base.execute("insert stock values ('A', 1, 1)")
        assert "extra" in result.messages


class TestContribution3DropTriggers:
    def test_drop_trigger_on_primitive_event(self, base):
        base.execute("drop trigger t_add")
        result = base.execute("insert stock values ('A', 1, 1)")
        assert "a" not in result.messages

    def test_drop_trigger_on_composite_event(self, base, agent):
        base.execute("create trigger tc event c = addStk AND delStk as print 'c'")
        base.execute("drop trigger tc")
        base.execute("insert stock values ('A', 1, 1)")
        result = base.execute("delete stock")
        assert "c" not in result.messages
        assert agent.led.rules_for("sentineldb.sharma.c") == []

    def test_event_survives_trigger_drop(self, base, agent):
        base.execute("drop trigger t_add")
        assert agent.led.has_event("sentineldb.sharma.addStk")
        # ...and can immediately get a new trigger.
        base.execute("create trigger t_new event addStk as print 'new'")
        result = base.execute("insert stock values ('A', 1, 1)")
        assert "new" in result.messages


class TestContribution4MultipleTriggers:
    def test_multiple_triggers_same_primitive_event(self, base):
        base.execute("create trigger t_add2 event addStk as print 'a2'")
        base.execute("create trigger t_add3 event addStk as print 'a3'")
        result = base.execute("insert stock values ('A', 1, 1)")
        assert {"a", "a2", "a3"} <= set(result.messages)

    def test_multiple_triggers_same_composite_event(self, base, agent):
        base.execute("create trigger tc1 event c = addStk AND delStk as print 'c1'")
        base.execute("create trigger tc2 event c as print 'c2'")
        base.execute("insert stock values ('A', 1, 1)")
        result = base.execute("delete stock")
        assert "c1" in result.messages and "c2" in result.messages

    def test_priorities_order_execution(self, base):
        base.execute("create trigger p1 event addStk 1 as print 'low'")
        base.execute("create trigger p9 event addStk 9 as print 'high'")
        result = base.execute("insert stock values ('A', 1, 1)")
        low, high = result.messages.index("low"), result.messages.index("high")
        assert high < low


class TestContribution5Persistence:
    def test_events_stored_in_native_tables(self, base, agent):
        pm = agent.persistent_manager
        primitives = pm.execute(
            "sentineldb", "select eventName from SysPrimitiveEvent").last
        assert sorted(r[0] for r in primitives.rows) == ["addStk", "delStk"]

    def test_composites_stored_in_native_tables(self, base, agent):
        base.execute("create trigger tc event c = addStk AND delStk as print 'c'")
        rows = agent.persistent_manager.execute(
            "sentineldb", "select eventName from SysCompositeEvent").last.rows
        assert rows == [["c"]]

    def test_persistence_is_plain_sql_queryable(self, base):
        # Persistence uses the native DBMS: an ordinary client can read it.
        result = base.execute(
            "select eventName, tableName, operation from dbo.SysPrimitiveEvent "
            "order by eventName")
        assert result.last.rows == [
            ["addStk", "stock", "insert"], ["delStk", "stock", "delete"]]


class TestContribution6DetectionAndInvocation:
    def test_primitive_detection_and_action_in_server(self, base, server):
        # The action is a stored procedure executed inside the engine.
        assert "sharma.t_add__Proc" in server.procedure_names("sentineldb")
        result = base.execute("insert stock values ('A', 1, 1)")
        assert "a" in result.messages

    def test_composite_detection_in_agent_action_in_server(self, base, agent,
                                                           server):
        base.execute(
            "create trigger tc event c = addStk AND delStk as "
            "insert stock values ('ACT_ROW', 0, 0)")
        base.execute("insert stock values ('A', 1, 1)")
        base.execute("delete stock where symbol = 'A'")
        # The action ran inside the server: its effect is in the table.
        rows = base.execute(
            "select symbol from stock where symbol = 'ACT_ROW'").last.rows
        assert rows == [["ACT_ROW"]]
