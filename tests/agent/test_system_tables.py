"""E-FIG5/6/7/17: the ECA system tables match the paper's layouts."""

import pytest

from repro.agent.persistence import (
    SYS_COMPOSITE_EVENT_LAYOUT,
    SYS_CONTEXT_LAYOUT,
    SYS_ECA_TRIGGER_LAYOUT,
    SYS_PRIMITIVE_EVENT_LAYOUT,
)


@pytest.fixture
def provisioned(agent):
    agent.persistent_manager.ensure_system_tables("sentineldb")
    return agent


def layout_of(server, table_name):
    db = server.catalog.get_database("sentineldb")
    table = db.get_table("dbo", table_name)
    assert table is not None, f"{table_name} missing"
    return [
        (col.name, col.sql_type.name, col.sql_type.length, col.nullable)
        for col in table.schema
    ]


class TestFigure5SysPrimitiveEvent:
    def test_exact_layout(self, provisioned, server):
        assert layout_of(server, "SysPrimitiveEvent") == [
            ("dbName", "varchar", 30, True),
            ("userName", "varchar", 30, True),
            ("eventName", "varchar", 30, True),
            ("tableName", "varchar", 30, True),
            ("operation", "varchar", 20, True),
            ("timeStamp", "datetime", None, True),
            ("vNo", "int", None, True),
        ]

    def test_storage_lengths_match_figure(self, provisioned, server):
        db = server.catalog.get_database("sentineldb")
        table = db.get_table("dbo", "SysPrimitiveEvent")
        by_name = {col.name: col.sql_type.storage_length for col in table.schema}
        # Figure 5 reports datetime length 8 and int length 4.
        assert by_name["timeStamp"] == 8
        assert by_name["vNo"] == 4


class TestFigure6SysCompositeEvent:
    def test_exact_layout(self, provisioned, server):
        assert layout_of(server, "SysCompositeEvent") == [
            ("dbName", "varchar", 30, True),
            ("userName", "varchar", 30, True),
            ("eventName", "varchar", 30, True),
            ("eventDescribe", "text", None, True),
            ("timeStamp", "datetime", None, True),
            ("coupling", "char", 10, True),
            ("context", "char", 10, True),
            ("priority", "char", 10, True),
        ]


class TestFigure7SysEcaTrigger:
    def test_figure_7_columns_are_a_prefix(self, provisioned, server):
        layout = layout_of(server, "SysEcaTrigger")
        paper_prefix = [
            ("dbName", "varchar", 30, True),
            ("userName", "varchar", 30, True),
            ("triggerName", "varchar", 30, True),
            ("triggerProc", "text", None, True),
            ("timeStamp", "datetime", None, True),
        ]
        assert layout[:5] == paper_prefix
        assert layout[5][0] == "eventName"

    def test_recovery_extension_columns_documented(self, provisioned, server):
        # DESIGN.md §2: coupling/context/priority appended for recovery.
        layout = layout_of(server, "SysEcaTrigger")
        extra = [entry[0] for entry in layout[6:]]
        assert extra == ["coupling", "context", "priority"]


class TestFigure17SysContext:
    def test_exact_layout(self, provisioned, server):
        assert layout_of(server, "sysContext") == [
            ("tableName", "varchar", 50, False),
            ("context", "varchar", 12, False),
            ("vNo", "int", None, False),
        ]

    def test_not_null_columns(self, provisioned, server):
        layout = layout_of(server, "sysContext")
        assert all(nullable is False for _n, _t, _l, nullable in layout)

    def test_table_name_fits_internal_snapshot_names(self, provisioned):
        # varchar(50) accommodates db.user.table_inserted names.
        example = "sentineldb.sharma.stock_inserted"
        assert len(example) <= 50


class TestLayoutConstantsMatchLiveTables:
    @pytest.mark.parametrize("table_name, layout", [
        ("SysPrimitiveEvent", SYS_PRIMITIVE_EVENT_LAYOUT),
        ("SysCompositeEvent", SYS_COMPOSITE_EVENT_LAYOUT),
        ("SysEcaTrigger", SYS_ECA_TRIGGER_LAYOUT),
        ("sysContext", SYS_CONTEXT_LAYOUT),
    ])
    def test_constant_matches_table(self, provisioned, server, table_name, layout):
        live = layout_of(server, table_name)
        declared = [
            (name, type_name if type_name != "char" else "char", length, nullable)
            for name, type_name, length, nullable in layout
        ]
        normalized = [
            (name,
             {"varchar": "varchar", "char": "char", "text": "text",
              "datetime": "datetime", "int": "int"}[type_name],
             length if type_name in ("varchar", "char") else None,
             nullable)
            for name, type_name, length, nullable in declared
        ]
        assert live == normalized

    def test_idempotent_provisioning(self, agent):
        pm = agent.persistent_manager
        pm.ensure_system_tables("sentineldb")
        pm.ensure_system_tables("sentineldb")  # second call is a no-op
        assert pm.has_system_tables("sentineldb")

    def test_tables_per_database(self, agent, server):
        server.catalog.create_database("otherdb")
        agent.persistent_manager.ensure_system_tables("otherdb")
        db = server.catalog.get_database("otherdb")
        assert db.get_table("dbo", "SysPrimitiveEvent") is not None
