"""E-FIG13/14 / Example 2: composite event triggers and context processing."""

import pytest

from repro.agent.messages import NotiStr

EXAMPLE_2_SETUP = [
    "create trigger t_addStk on stock for insert event addStk "
    "as print 'addStk occurred'",
    "create trigger t_delStk on stock for delete event delStk "
    "as print 'delStk occurred'",
]

EXAMPLE_2 = """create trigger t_and
event addDel = delStk ^ addStk
RECENT
as
print "trigger t_and on composite event addDel = delStk ^ addStk"
select symbol, price from stock.inserted"""


@pytest.fixture
def installed(astock):
    for sql in EXAMPLE_2_SETUP:
        astock.execute(sql)
    astock.execute(EXAMPLE_2)
    return astock


class TestGeneratedObjects:
    def test_composite_event_in_led(self, installed, agent):
        assert agent.led.has_event("sentineldb.sharma.addDel")

    def test_rule_registered_with_recent_context(self, installed, agent):
        rules = agent.led.rules_for("sentineldb.sharma.addDel")
        assert len(rules) == 1
        assert rules[0].context.value == "RECENT"

    def test_tmp_tables_created(self, installed, server):
        db = server.catalog.get_database("sentineldb")
        assert db.get_table("sharma", "stock_inserted_tmp") is not None
        assert db.get_table("sharma", "stock_deleted_tmp") is not None

    def test_action_proc_contains_context_processing(self, installed, server):
        db = server.catalog.get_database("sentineldb")
        proc = db.get_procedure("sharma", "t_and__Proc")
        source = proc.source
        # Figure 14's structure.
        assert "/* context processing */" in source
        assert "delete sentineldb.sharma.stock_inserted_tmp" in source
        assert 'sysContext.context = "RECENT"' in source
        assert "stock_inserted.vNo = sentineldb.dbo.sysContext.vNo" in source
        assert "/* action function */" in source

    def test_action_rewritten_to_tmp_table(self, installed, server):
        db = server.catalog.get_database("sentineldb")
        proc = db.get_procedure("sharma", "t_and__Proc")
        assert "from sentineldb.sharma.stock_inserted_tmp" in proc.source
        assert "stock.inserted" not in proc.source

    def test_persistence_row(self, installed, agent):
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select userName, eventName, eventDescribe, context "
            "from SysCompositeEvent").last.rows
        assert len(rows) == 1
        user, name, describe, context = rows[0]
        assert (user, name) == ("sharma", "addDel")
        assert describe == ("(sentineldb.sharma.delStk AND "
                            "sentineldb.sharma.addStk)")
        assert context.strip() == "RECENT"

    def test_notistr_shape(self):
        # Figure 13's structure carried by the action handler.
        noti = NotiStr(
            store_proc="sentineldb.sharma.t_and__Proc",
            event_name="sentineldb.sharma.addDel",
            context="RECENT",
        )
        assert noti.store_proc.endswith("__Proc")


class TestRuntimeBehaviour:
    def test_example_2_functional_run(self, installed):
        installed.execute("insert stock values ('IBM', 101.5, 10)")
        installed.execute("delete stock where symbol = 'IBM'")
        result = installed.execute("insert stock values ('MSFT', 60.0, 5)")
        assert ("trigger t_and on composite event addDel = delStk ^ addStk"
                in result.messages)
        # The action's parameter query returns the inserted row.
        assert any(rs.columns == ["symbol", "price"]
                   and rs.rows == [["MSFT", 60.0]]
                   for rs in result.result_sets)

    def test_no_fire_on_single_constituent(self, installed, agent):
        installed.execute("insert stock values ('A', 1, 1)")
        log = agent.action_handler.action_log
        assert not any("t_and" in record.trigger_internal for record in log)

    def test_sys_context_rows_written(self, installed, agent):
        installed.execute("insert stock values ('A', 1, 1)")
        installed.execute("delete stock")
        installed.execute("insert stock values ('B', 2, 2)")
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select tableName, context, vNo from sysContext "
            "order by tableName").last.rows
        assert ["sentineldb.sharma.stock_deleted", "RECENT", 1] in rows
        assert ["sentineldb.sharma.stock_inserted", "RECENT", 2] in rows

    def test_recent_context_uses_latest_occurrence(self, installed, agent):
        installed.execute("insert stock values ('OLD', 1, 1)")
        installed.execute("insert stock values ('NEW', 2, 2)")
        installed.execute("delete stock where symbol = 'OLD'")
        # AND fires when the second constituent (delete) arrives; RECENT
        # pairs it with the most recent insert (NEW).
        records = [r for r in agent.action_handler.action_log
                   if "t_and" in r.trigger_internal]
        assert len(records) == 1
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select symbol from sentineldb.sharma.stock_inserted_tmp"
        ).last.rows
        assert rows == [["NEW"]]

    def test_composite_over_two_tables(self, agent, astock):
        astock.execute("create table orders (id int, symbol varchar(10))")
        astock.execute(
            "create trigger to1 on orders for insert event newOrder "
            "as print 'order'")
        astock.execute(
            "create trigger ts1 on stock for insert event newStock "
            "as print 'stock'")
        astock.execute(
            "create trigger tboth event both = newOrder AND newStock "
            "as print 'both happened'")
        astock.execute("insert orders values (1, 'IBM')")
        result = astock.execute("insert stock values ('IBM', 1, 1)")
        assert "both happened" in result.messages


class TestCompositeOfComposite:
    def test_event_reuse_through_full_stack(self, installed, astock):
        astock.execute(
            "create trigger t_chain event chained = addDel SEQ addStk "
            "CHRONICLE as print 'chained fired'")
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("delete stock")          # addDel completes
        result = astock.execute("insert stock values ('B', 2, 2)")
        assert "chained fired" in result.messages
