"""E2E: the runtime health plane through the gateway admin surface.

``show agent top`` (who is expensive), ``show agent slow`` (what was
slow), and ``show agent health`` (is the agent ok) are ordinary
commands over the client's existing connection, like the rest of the
``show agent ...`` family.
"""

import pytest

EX_ADD = (
    "create trigger t_add on stock for insert event addStk as print 'add'")
EX_DEL = (
    "create trigger t_del on stock for delete event delStk as print 'del'")
EX_AND = (
    "create trigger t_and event addDel = delStk ^ addStk RECENT\n"
    "as print 'composite'")


@pytest.fixture
def active(astock):
    """A mediated connection with the Example 2 rules loaded and a
    workload that fires the composite (so a rule action has run)."""
    astock.execute(EX_ADD)
    astock.execute(EX_DEL)
    astock.execute(EX_AND)
    astock.execute("insert stock values ('IBM', 100, 10)")
    astock.execute("delete stock where symbol = 'IBM'")
    return astock


def _rows(result, index=0):
    return result.result_sets[index].rows


def _error_of(result):
    [result_set] = result.result_sets
    assert result_set.columns == ["error"]
    [[message]] = result_set.rows
    return message


# ----------------------------------------------------------------------
# show agent top

def test_top_rules_charges_the_composite_action(active):
    result = active.execute("show agent top rules 5")
    [result_set] = result.result_sets
    assert result_set.columns[0] == "rule"
    by_rule = {row[0]: row for row in result_set.rows}
    row = by_rule["sentineldb.sharma.t_and"]
    assert row[result_set.columns.index("actions")] == 1
    assert row[result_set.columns.index("errors")] == 0
    assert row[result_set.columns.index("action_ms")] > 0


def test_top_sessions_accounts_the_client_connection(active):
    result = active.execute("show agent top sessions 5")
    [result_set] = result.result_sets
    [row] = result_set.rows
    columns = result_set.columns
    assert row[columns.index("user")] == "sharma"
    assert row[columns.index("commands")] >= 5
    assert row[columns.index("sql_statements")] >= 5
    # The session pays for the composite action it triggered.
    assert row[columns.index("actions")] == 1


def test_top_without_scope_shows_both_result_sets(active):
    result = active.execute("show agent top")
    assert len(result.result_sets) == 2
    assert result.result_sets[0].columns[0] == "rule"
    assert result.result_sets[1].columns[0] == "session"


def test_top_count_is_clamped_and_validated(active):
    assert _rows(active.execute("show agent top sessions 9999"))
    message = _error_of(active.execute("show agent top rules abc"))
    assert "row count" in message
    message = _error_of(active.execute("show agent top bogus"))
    assert "row count" in message


def test_top_reports_when_accounting_is_off(active):
    active.execute("set agent accounting off")
    result = active.execute("show agent top")
    assert any("accounting is off" in m for m in result.messages)
    active.execute("set agent accounting on")


def test_reset_accounting_clears_totals(active):
    active.execute("reset agent accounting")
    result = active.execute("show agent top rules 5")
    # The reset command itself opens a fresh frame, so sessions may
    # reappear immediately — rules only return with new firings.
    assert _rows(result) == []


# ----------------------------------------------------------------------
# show agent slow / set agent slowlog

def test_slowlog_captures_and_disarms(active):
    active.execute("set agent slowlog 0")
    active.execute("insert stock values ('T', 1, 1)")
    result = active.execute("show agent slow 5")
    [result_set] = result.result_sets
    columns = result_set.columns
    statements = [row[columns.index("statement")] for row in result_set.rows]
    assert "insert stock values ('T', 1, 1)" in statements
    row = result_set.rows[
        statements.index("insert stock values ('T', 1, 1)")]
    assert row[columns.index("kind")] == "passthrough"
    assert row[columns.index("duration_ms")] >= 0
    assert row[columns.index("user")] == "sharma"

    off = active.execute("set agent slowlog off")
    assert any("disarmed" in m for m in off.messages)
    result = active.execute("show agent slow")
    assert any("disarmed" in m for m in result.messages)


def test_slowlog_captures_the_statements_plan(active):
    active.execute("set agent slowlog 0")
    active.execute("select * from stock where symbol = 'T'")
    active.execute("show agent status")
    result = active.execute("show agent slow 10")
    active.execute("set agent slowlog off")
    [result_set] = result.result_sets
    columns = result_set.columns
    assert "plan" in columns
    by_statement = {row[columns.index("statement")]: row
                    for row in result_set.rows}
    plan = by_statement["select * from stock where symbol = 'T'"][
        columns.index("plan")]
    assert plan is not None and "Scan stock" in plan
    # admin commands have no plannable SQL: the column stays NULL
    admin_plan = by_statement["show agent status"][columns.index("plan")]
    assert admin_plan is None


def test_slowlog_validation(active):
    message = _error_of(active.execute("set agent slowlog -5"))
    assert ">= 0" in message
    message = _error_of(active.execute("set agent slowlog nope"))
    assert "threshold" in message


def test_reset_slow_clears_the_ring(active):
    active.execute("set agent slowlog 0")
    active.execute("insert stock values ('T', 1, 1)")
    active.execute("reset agent slow")
    active.execute("set agent slowlog off")
    result = active.execute("show agent slow 5")
    assert any("disarmed" in m for m in result.messages)


def test_slow_count_is_validated(active):
    active.execute("set agent slowlog 0")
    message = _error_of(active.execute("show agent slow abc"))
    assert "row count" in message
    active.execute("set agent slowlog off")


# ----------------------------------------------------------------------
# show agent health

def test_health_is_ok_on_a_clean_workload(active):
    result = active.execute("show agent health")
    status_set, findings_set, sample_set = result.result_sets
    assert status_set.rows == [["ok"]]
    rules = {row[0] for row in findings_set.rows}
    assert "plan-cache-hit-rate" in rules
    assert "notification-backlog" in rules
    statuses = {row[2] for row in findings_set.rows}
    assert statuses <= {"ok", "skipped"}
    samples = {row[0] for row in sample_set.rows}
    assert "actions_total" in samples
    assert "notification_backlog" in samples


def test_health_is_deterministic(active):
    first = active.execute("show agent health")
    second = active.execute("show agent health")
    assert (first.result_sets[0].rows == second.result_sets[0].rows)
    assert ([row[:3] for row in first.result_sets[1].rows]
            == [row[:3] for row in second.result_sets[1].rows])


# ----------------------------------------------------------------------
# status / cache / stats surfaces

def test_status_reports_health_plane_state(active):
    rows = dict((row[0], row[1])
                for row in _rows(active.execute("show agent status")))
    assert rows["accounting"] == "on"
    assert int(rows["accounted_sessions"]) >= 1
    assert rows["slowlog_ms"] == "off"
    active.execute("set agent slowlog 2.5")
    rows = dict((row[0], row[1])
                for row in _rows(active.execute("show agent status")))
    assert rows["slowlog_ms"] == 2.5
    active.execute("set agent slowlog off")


def test_cache_splices_origin_rows(active):
    rows = dict((row[0], row[1])
                for row in _rows(active.execute("show agent cache")))
    if rows["plan_cache"] == "on":
        assert "plan_cache_client_hits" in rows
        assert "plan_cache_client_hit_rate" in rows
        total = rows["plan_cache_hits"] + rows["plan_cache_misses"]
        by_origin = sum(
            rows.get(f"plan_cache_{origin}_{outcome}", 0)
            for origin in ("client", "rule", "system")
            for outcome in ("hits", "misses"))
        assert by_origin == total
    else:
        assert "plan_cache_client_hits" not in rows


def test_stats_top_truncates_to_n(active):
    active.execute("set agent stats on")
    active.execute("insert stock values ('T', 2, 1)")
    result = active.execute("show agent stats top 2")
    counters, latencies = result.result_sets
    assert len(counters.rows) <= 2
    assert len(latencies.rows) <= 2
    # Rows come ordered by count, so the top row dominates.
    if len(counters.rows) == 2:
        assert counters.rows[0][2] >= counters.rows[1][2]
    message = _error_of(active.execute("show agent stats top zero"))
    assert "row count" in message
