"""E-FIG16: the Action Handler (SybaseAction analogue)."""

import pytest

from repro.agent.action_handler import context_entries
from repro.led.occurrences import compose, primitive


class TestContextEntries:
    def test_collects_snapshot_vno_pairs(self):
        occ1 = primitive("e1", 1.0, 1, {
            "vNo": 3, "snapshot_tables": {"inserted": "db.u.t_inserted"}})
        occ2 = primitive("e2", 2.0, 2, {
            "vNo": 5, "snapshot_tables": {"deleted": "db.u.t_deleted"}})
        combined = compose("c", [occ1, occ2])
        assert context_entries(combined) == [
            ("db.u.t_inserted", 3), ("db.u.t_deleted", 5)]

    def test_skips_timer_ticks(self):
        occ = primitive("e1", 1.0, 1, {
            "vNo": 1, "snapshot_tables": {"inserted": "db.u.t_inserted"}})
        tick = primitive("c.timer", 5.0, 2, {"time": 5.0})
        combined = compose("c", [occ, tick])
        assert context_entries(combined) == [("db.u.t_inserted", 1)]

    def test_dedupes(self):
        occ = primitive("e1", 1.0, 1, {
            "vNo": 1, "snapshot_tables": {"inserted": "db.u.t_inserted"}})
        combined = compose("c", [occ, occ])
        assert context_entries(combined) == [("db.u.t_inserted", 1)]

    def test_update_event_contributes_both_directions(self):
        occ = primitive("e1", 1.0, 1, {
            "vNo": 2,
            "snapshot_tables": {"deleted": "db.u.t_deleted",
                                "inserted": "db.u.t_inserted"}})
        assert context_entries(occ) == [
            ("db.u.t_deleted", 2), ("db.u.t_inserted", 2)]


class TestActionExecution:
    @pytest.fixture
    def wired(self, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger t2 on stock for delete event e2 as print '2'")
        astock.execute(
            "create trigger tc event c = e1 AND e2 as "
            "select symbol from stock.inserted")
        return astock

    def test_record_captures_output(self, wired, agent):
        wired.execute("insert stock values ('A', 1, 1)")
        wired.execute("delete stock")
        record = [r for r in agent.action_handler.action_log
                  if r.trigger_internal.endswith("tc")][0]
        assert record.error is None
        assert record.row_sets == 1
        assert record.proc_name == "sentineldb.sharma.tc__Proc"
        assert record.event_internal == "sentineldb.sharma.c"

    def test_occurrence_attached_to_record(self, wired, agent):
        wired.execute("insert stock values ('A', 1, 1)")
        wired.execute("delete stock")
        record = [r for r in agent.action_handler.action_log
                  if r.trigger_internal.endswith("tc")][0]
        assert set(record.occurrence.constituent_names()) == {
            "sentineldb.sharma.e1", "sentineldb.sharma.e2"}

    def test_action_error_propagates_to_client_by_default(self, astock):
        from repro.led.errors import ActionError

        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger bad event e1 DEFERRED as "
            "select * from table_that_does_not_exist")
        with pytest.raises(ActionError):
            astock.execute("insert stock values ('A', 1, 1)")

    def test_action_error_swallowed_when_configured(self, server):
        from repro.agent import EcaAgent

        agent = EcaAgent(server, swallow_action_errors=True)
        conn = agent.connect(user="sharma", database="sentineldb")
        conn.execute("create table stock (symbol varchar(10), price float)")
        conn.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        conn.execute(
            "create trigger bad event e1 DEFERRED as select * from ghost")
        result = conn.execute("insert stock values ('A', 1)")  # no raise
        assert "1" in result.messages
        record = [r for r in agent.action_handler.action_log
                  if r.trigger_internal.endswith("bad")][0]
        assert record.error is not None
        agent.close()


class TestParallelDetachedActions:
    def test_many_detached_actions_all_complete(self, astock, agent):
        astock.execute("create table hits (n int)")
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger tx event e1 DETACHED as insert hits values (1)")
        for index in range(10):
            astock.execute(f"insert stock values ('S{index}', 1, 1)")
        agent.action_handler.join_detached()
        total = agent.persistent_manager.execute(
            "sentineldb", "select count(*) from sharma.hits").last.scalar()
        assert total == 10
