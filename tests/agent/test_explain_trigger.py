"""E2E: event-graph introspection commands through the gateway.

Four composite triggers — one per parameter context — watch the same
``delStk ^ addStk`` pattern while a fixed insert/delete workload runs.
``explain trigger`` must render each trigger's event subgraph with the
per-node fire counts the Snoop semantics predict:

workload ``add, del, add, del`` on an AND node =>
RECENT 3 detections (initiators are reused), CHRONICLE 2 (FIFO pairs),
CONTINUOUS 2, CUMULATIVE 2.
"""

import json

import pytest

from repro.obs import TelemetryExporter

EX_ADD = (
    "create trigger t_add on stock for insert event addStk as print 'add'")
EX_DEL = (
    "create trigger t_del on stock for delete event delStk as print 'del'")

CONTEXTS = ["RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE"]
EXPECTED_FIRES = {"RECENT": 3, "CHRONICLE": 2, "CONTINUOUS": 2,
                  "CUMULATIVE": 2}
# Every context but RECENT consumes both constituents of each detection.
EXPECTED_CONSUMED = {"RECENT": 0, "CHRONICLE": 4, "CONTINUOUS": 4,
                     "CUMULATIVE": 4}


@pytest.fixture
def provenant(astock):
    """Stock table + four per-context AND triggers + the workload, with
    provenance collection on throughout."""
    astock.execute("set agent provenance on")
    astock.execute(EX_ADD)
    astock.execute(EX_DEL)
    for context in CONTEXTS:
        astock.execute(
            f"create trigger t_{context.lower()} event "
            f"and_{context.lower()} = delStk ^ addStk {context}\n"
            f"as print '{context}'")
    astock.execute("insert stock values ('IBM', 101.5, 10)")
    astock.execute("delete stock where symbol = 'IBM'")
    astock.execute("insert stock values ('HP', 59.0, 5)")
    astock.execute("delete stock where symbol = 'HP'")
    return astock


def _node_rows(result):
    return result.result_sets[1].as_dicts()


class TestExplainTrigger:
    @pytest.mark.parametrize("context", CONTEXTS)
    def test_subgraph_and_fire_counts_per_context(self, provenant, context):
        result = provenant.execute(f"explain trigger t_{context.lower()}")
        summary = dict(result.result_sets[0].rows)
        assert summary["context"] == context
        assert summary["event"].endswith(f"and_{context.lower()}")
        assert summary["fire_count"] == EXPECTED_FIRES[context]

        rows = _node_rows(result)
        root = [row for row in rows if row["kind"] == "AND"]
        assert len(root) == 1, result.result_sets[1].format_table()
        assert root[0]["context"] == context
        assert root[0]["fires"] == EXPECTED_FIRES[context]
        assert root[0]["consumed"] == EXPECTED_CONSUMED[context]
        assert f"t_{context.lower()}" in root[0]["rules"]

        primitives = {
            row["node"].strip(): row for row in rows
            if row["kind"] == "primitive"
        }
        assert len(primitives) == 2
        for row in primitives.values():
            assert row["context"] == "-"
            assert row["fires"] == 2
        roles = {row["role"] for row in primitives.values()}
        assert roles == {"left", "right"}

    def test_short_and_qualified_names_resolve(self, provenant):
        short = provenant.execute("explain trigger t_recent")
        qualified = provenant.execute(
            "explain trigger sentineldb.sharma.t_recent")
        assert dict(short.result_sets[0].rows)["trigger"] == \
            dict(qualified.result_sets[0].rows)["trigger"]

    def test_unknown_trigger_yields_error_result_set(self, provenant):
        result = provenant.execute("explain trigger no_such_trigger")
        assert result.result_sets[0].columns == ["error"]
        assert "no_such_trigger" in result.result_sets[0].rows[0][0]

    def test_inline_primitive_trigger_explains_its_primitive(
            self, provenant):
        result = provenant.execute("explain trigger t_add")
        summary = dict(result.result_sets[0].rows)
        assert summary["inline"] == "yes"
        rows = _node_rows(result)
        assert len(rows) == 1
        assert rows[0]["kind"] == "primitive"
        assert rows[0]["fires"] == 2


class TestShowAgentEvents:
    def test_lineage_trees_cover_the_pipeline(self, provenant):
        result = provenant.execute("show agent events 200")
        rows = result.result_sets[0].as_dicts()
        kinds = {row["kind"] for row in rows}
        assert {"notification", "raise", "detection", "firing"} <= kinds
        by_seq = {row["seq"]: row for row in rows}
        # Every detection in the window links back to retained parents.
        for row in rows:
            if row["kind"] != "detection":
                continue
            assert row["parents"], row
            for parent in row["parents"].split(","):
                parent_row = by_seq.get(int(parent))
                if parent_row is not None:
                    assert parent_row["seq"] < row["seq"]

    def test_default_row_count_is_bounded(self, provenant):
        result = provenant.execute("show agent events")
        assert len(result.result_sets[0].rows) <= 20

    def test_non_numeric_count_is_an_error_row(self, provenant):
        result = provenant.execute("show agent events lots")
        assert result.result_sets[0].columns == ["error"]
        assert "lots" in result.result_sets[0].rows[0][0]

    def test_oversized_count_is_clamped_not_an_error(self, provenant):
        result = provenant.execute("show agent events 999999999")
        assert result.result_sets[0].columns != ["error"]


class TestShowAgentGraph:
    def test_graph_lists_every_node_with_stats(self, provenant):
        result = provenant.execute("show agent graph")
        rows = result.result_sets[0].as_dicts()
        by_event = {}
        for row in rows:
            by_event.setdefault(row["event"], []).append(row)
        and_events = [name for name in by_event if "and_" in name]
        assert len(and_events) == 4
        for name in and_events:
            (row,) = by_event[name]
            assert row["kind"] == "AND"
            assert "left=" in row["children"]
            assert "right=" in row["children"]
            assert row["fires"] == EXPECTED_FIRES[row["context"]]
        primitive_rows = [row for row in rows if row["kind"] == "primitive"]
        assert {row["fires"] for row in primitive_rows} == {2}


class TestProvenanceToggles:
    def test_status_reports_provenance_and_journal(self, provenant):
        result = provenant.execute("show agent status")
        status = dict(result.result_sets[0].rows)
        assert status["provenance"] == "on"
        assert status["journal_records"] > 0
        assert status["exporter"] == "none"

    def test_reset_provenance_clears_journal(self, provenant):
        provenant.execute("reset agent provenance")
        result = provenant.execute("show agent status")
        status = dict(result.result_sets[0].rows)
        assert status["journal_records"] == 0
        assert status["provenance"] == "on"

    def test_provenance_off_notes_in_events_output(self, astock):
        result = astock.execute("show agent events")
        assert any("provenance" in message for message in result.messages)


class TestTraceArgHardening:
    def test_non_numeric_trace_count_is_an_error_row(self, astock):
        result = astock.execute("show agent trace abc")
        assert result.result_sets[0].columns == ["error"]
        assert "abc" in result.result_sets[0].rows[0][0]

    def test_huge_trace_count_is_clamped(self, astock):
        astock.execute("set agent trace on")
        astock.execute("insert stock values ('IBM', 1.0, 1)")
        result = astock.execute("show agent trace 999999999")
        assert result.result_sets[0].columns != ["error"]


class TestExportThroughGateway:
    def test_export_without_exporter_is_an_error_row(self, astock):
        result = astock.execute("export agent telemetry")
        assert result.result_sets[0].columns == ["error"]

    def test_export_with_exporter_writes_jsonl(self, server, tmp_path):
        from repro.agent import EcaAgent

        path = str(tmp_path / "telemetry.jsonl")
        agent = EcaAgent(server, exporter=TelemetryExporter(path))
        try:
            conn = agent.connect(user="sharma", database="sentineldb")
            conn.execute(
                "create table stock (symbol varchar(10) not null, "
                "price float null, qty int null)")
            conn.execute("set agent provenance on")
            conn.execute(EX_ADD)
            conn.execute("insert stock values ('IBM', 1.0, 1)")
            result = conn.execute("export agent telemetry")
            assert any("Telemetry snapshot" in message
                       for message in result.messages)
            with open(path, encoding="utf-8") as handle:
                lines = [json.loads(line) for line in handle]
            assert lines[0]["type"] == "snapshot"
            assert {"provenance", "node_stat"} <= {
                line["type"] for line in lines}
        finally:
            agent.close()
