"""E-FIG2/3/4: module assembly and the two control flows.

Figure 3 — creating ECA rules (seven steps); Figure 4 — event
notification and action (six steps).  These tests trace the steps through
observable side effects on each module.
"""

import pytest

from repro.agent import (
    ActionHandler,
    EventNotifier,
    GatewayOpenServer,
    LanguageFilter,
    PersistentManager,
)
from repro.agent.errors import EcaSyntaxError, NameError_
from repro.led import LocalEventDetector
from repro.sqlengine import SqlError


class TestFig2Assembly:
    """All seven modules of Figure 2 exist and are wired together."""

    def test_modules_present(self, agent):
        assert isinstance(agent.gateway, GatewayOpenServer)          # GI/GOS
        assert isinstance(agent.language_filter, LanguageFilter)     # filter
        assert isinstance(agent.led, LocalEventDetector)             # LED
        assert isinstance(agent.persistent_manager, PersistentManager)
        assert isinstance(agent.notifier, EventNotifier)
        assert isinstance(agent.action_handler, ActionHandler)
        # The ECA parser is stateless (module functions); the agent routes
        # to it via handle_eca.
        assert callable(agent.handle_eca)

    def test_server_is_unmodified(self, agent, server):
        # The engine knows nothing about the agent beyond its two hooks.
        assert server.catalog is not None
        assert not hasattr(server, "led")
        assert not hasattr(server, "eca_parser")

    def test_agent_close_detaches(self, server):
        from repro.agent import EcaAgent

        agent = EcaAgent(server)
        agent.close()
        assert server._datagram_sink is None


class TestFig3CreateRuleFlow:
    """The seven steps of 'create ECA rules'."""

    def test_happy_path_touches_every_module(self, agent, astock):
        # Steps 1-2: command through GOS into the Language Filter.
        eca_before = agent.gateway.commands_eca
        result = astock.execute(
            "create trigger t1 on stock for insert event e1 as print 'x'")
        # Step 3: classified as ECA and parsed.
        assert agent.gateway.commands_eca == eca_before + 1
        # Step 5: event graph created in the LED.
        assert agent.led.has_event("sentineldb.sharma.e1")
        # Step 5: generated SQL installed in the server through GOS.
        assert "sharma.t1__Proc" in agent.server.procedure_names("sentineldb")
        # Step 7: persistent manager stored the rule.
        count = agent.persistent_manager.execute(
            "sentineldb", "select count(*) from SysEcaTrigger").last.scalar()
        assert count == 1
        # Step 6: results returned to the client.
        assert result.messages

    def test_parse_error_returned_to_client(self, agent, astock):
        with pytest.raises(EcaSyntaxError):
            astock.execute(
                "create trigger t1 on stock for frobnicate event e as print 'x'")
        # Nothing was created (system tables are not even provisioned yet).
        assert agent.eca_triggers == {}
        assert not agent.persistent_manager.has_system_tables("sentineldb")

    def test_name_error_unknown_table(self, astock):
        with pytest.raises(NameError_):
            astock.execute(
                "create trigger t on missing for insert event e as print 'x'")

    def test_name_error_duplicate_event(self, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e as print 'x'")
        with pytest.raises(NameError_):
            astock.execute(
                "create trigger t2 on stock for delete event e as print 'y'")

    def test_name_error_duplicate_trigger(self, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print 'x'")
        with pytest.raises(NameError_):
            astock.execute("create trigger t1 event e1 as print 'y'")

    def test_name_error_unknown_constituent(self, astock):
        with pytest.raises(NameError_):
            astock.execute(
                "create trigger t event bad = ghost1 AND ghost2 as print 'x'")

    def test_plain_sql_bypasses_eca_machinery(self, agent, astock):
        eca_before = agent.gateway.commands_eca
        astock.execute("select 1")
        assert agent.gateway.commands_eca == eca_before


class TestFig4NotifyActionFlow:
    """The six steps of 'event notification and action'."""

    @pytest.fixture
    def wired(self, astock):
        astock.execute(
            "create trigger t_a on stock for insert event evA as print 'A!'")
        astock.execute(
            "create trigger t_b on stock for delete event evB as print 'B!'")
        astock.execute(
            "create trigger t_ab event evAB = evA SEQ evB "
            "CHRONICLE as print 'AB!'")
        return astock

    def test_step_1_2_notification_sent(self, wired, agent):
        sent_before = agent.channel.sent_count
        wired.execute("insert stock values ('X', 1, 1)")
        assert agent.channel.sent_count == sent_before + 1

    def test_step_3_notifier_decodes_and_raises(self, wired, agent):
        received_before = agent.notifier.received
        wired.execute("insert stock values ('X', 1, 1)")
        assert agent.notifier.received == received_before + 1

    def test_step_4_led_detects_composite(self, wired, agent):
        wired.execute("insert stock values ('X', 1, 1)")
        assert not any(
            f.rule_name == "sentineldb.sharma.t_ab" for f in agent.led.history)
        wired.execute("delete stock")
        assert any(
            f.rule_name == "sentineldb.sharma.t_ab" for f in agent.led.history)

    def test_step_5_action_handler_runs_procedure(self, wired, agent):
        wired.execute("insert stock values ('X', 1, 1)")
        wired.execute("delete stock")
        records = [r for r in agent.action_handler.action_log
                   if "t_ab" in r.trigger_internal]
        assert len(records) == 1
        assert records[0].error is None

    def test_step_6_results_reach_client(self, wired):
        wired.execute("insert stock values ('X', 1, 1)")
        result = wired.execute("delete stock")
        assert "AB!" in result.messages

    def test_unknown_event_notification_rejected(self, agent):
        from repro.agent.errors import NotificationError

        with pytest.raises(NotificationError):
            agent.notifier.on_payload("u t insert begin db.u.ghost 1")
        assert agent.notifier.rejected == 1
