"""E-FIG11 / Example 1: code generation for a primitive-event trigger.

Verifies the generated server-side objects match Figure 11's structure:
snapshot tables with the vNo column, the occurrence-number (Version)
table, the action procedure, the native trigger with notification and
bookkeeping, and the persistence inserts.
"""

import pytest

EXAMPLE_1 = """create trigger t_addStk on stock for insert
event addStk
as print " trigger t_addStk on primitive event addStk occurs"
select * from stock"""


@pytest.fixture
def installed(astock, agent):
    astock.execute(EXAMPLE_1)
    return astock


class TestGeneratedObjects:
    def test_snapshot_table_created_with_vno(self, installed, server):
        db = server.catalog.get_database("sentineldb")
        snapshot = db.get_table("sharma", "stock_inserted")
        assert snapshot is not None
        assert snapshot.schema.column_names == ["symbol", "price", "qty", "vNo"]

    def test_no_deleted_snapshot_for_insert_event(self, installed, server):
        db = server.catalog.get_database("sentineldb")
        assert db.get_table("sharma", "stock_deleted") is None

    def test_version_table_seeded_with_zero(self, installed, agent):
        result = agent.persistent_manager.execute(
            "sentineldb", "select vNo from sentineldb.sharma.addStk_Version")
        assert result.last.rows == [[0]]

    def test_action_procedure_created(self, installed, server):
        assert "sharma.t_addStk__Proc" in server.procedure_names("sentineldb")

    def test_native_trigger_created(self, installed, server):
        assert "sharma.ECA_stock_insert" in server.trigger_names("sentineldb")

    def test_native_trigger_source_structure(self, installed, server):
        db = server.catalog.get_database("sentineldb")
        trigger = db.get_trigger("sharma", "ECA_stock_insert")
        source = trigger.source
        # The Figure 11 ingredients, in order.
        assert "update sentineldb.dbo.SysPrimitiveEvent set vNo = vNo + 1" in source
        assert "insert sentineldb.sharma.stock_inserted" in source
        assert "syb_sendmsg" in source
        assert "execute sentineldb.sharma.t_addStk__Proc" in source
        assert source.index("set vNo = vNo + 1") < source.index(
            "insert sentineldb.sharma.stock_inserted")

    def test_persistence_rows(self, installed, agent):
        pm = agent.persistent_manager
        primitive = pm.execute(
            "sentineldb",
            "select dbName, userName, eventName, tableName, operation, vNo "
            "from SysPrimitiveEvent").last.rows
        assert primitive == [
            ["sentineldb", "sharma", "addStk", "stock", "insert", 0]]
        trigger = pm.execute(
            "sentineldb",
            "select userName, triggerName, triggerProc, eventName "
            "from SysEcaTrigger").last.rows
        assert trigger == [[
            "sharma", "t_addStk", "sentineldb.sharma.t_addStk__Proc",
            "sentineldb.sharma.addStk"]]

    def test_event_registered_in_led(self, installed, agent):
        assert agent.led.has_event("sentineldb.sharma.addStk")


class TestRuntimeBehaviour:
    def test_example_1_functional_run(self, installed):
        result = installed.execute("insert stock values ('IBM', 101.5, 10)")
        assert " trigger t_addStk on primitive event addStk occurs" in \
            result.messages
        # `select * from stock` output reaches the client.
        assert any(rs.columns == ["symbol", "price", "qty"]
                   for rs in result.result_sets)

    def test_vno_increments_per_statement(self, installed, agent):
        installed.execute("insert stock values ('A', 1, 1)")
        installed.execute("insert stock values ('B', 2, 2)")
        assert agent.persistent_manager.current_v_no(
            "sentineldb", "sentineldb.sharma.addStk") == 2

    def test_snapshot_rows_tagged_with_vno(self, installed, agent):
        installed.execute("insert stock values ('A', 1, 1), ('B', 2, 2)")
        installed.execute("insert stock values ('C', 3, 3)")
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select symbol, vNo from sentineldb.sharma.stock_inserted "
            "order by symbol").last.rows
        assert rows == [["A", 1], ["B", 1], ["C", 2]]

    def test_notification_payload_format(self, installed, agent):
        payloads = []
        original = agent.channel._receiver
        agent.channel.attach(
            lambda payload: (payloads.append(payload), original(payload)))
        installed.execute("insert stock values ('A', 1, 1)")
        assert payloads == [
            "sharma stock insert begin sentineldb.sharma.addStk 1"]


class TestUpdateAndDeleteEvents:
    def test_update_event_snapshots_both_directions(self, astock, agent, server):
        astock.execute(
            "create trigger t_upd on stock for update event updStk "
            "as print 'upd'")
        db = server.catalog.get_database("sentineldb")
        assert db.get_table("sharma", "stock_inserted") is not None
        assert db.get_table("sharma", "stock_deleted") is not None
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("update stock set price = 2 where symbol = 'A'")
        pm = agent.persistent_manager
        old = pm.execute(
            "sentineldb",
            "select price from sentineldb.sharma.stock_deleted").last.rows
        new = pm.execute(
            "sentineldb",
            "select price from sentineldb.sharma.stock_inserted").last.rows
        assert old == [[1.0]]
        assert new == [[2.0]]

    def test_delete_event_uses_deleted_snapshot(self, astock, agent, server):
        astock.execute(
            "create trigger t_del on stock for delete event delStk "
            "as print 'del'")
        astock.execute("insert stock values ('A', 1, 1)")
        result = astock.execute("delete stock")
        assert "del" in result.messages
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select symbol, vNo from sentineldb.sharma.stock_deleted").last.rows
        assert rows == [["A", 1]]


class TestSharedSnapshots:
    def test_two_events_same_table_share_snapshot(self, astock, agent, server):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print 'e1'")
        astock.execute(
            "create trigger t2 on stock for insert event e2 as print 'e2'")
        result = astock.execute("insert stock values ('A', 1, 1)")
        assert "e1" in result.messages and "e2" in result.messages
        # Each event tagged the snapshot with its own occurrence number.
        rows = agent.persistent_manager.execute(
            "sentineldb",
            "select count(*) from sentineldb.sharma.stock_inserted"
        ).last.scalar()
        assert rows == 2  # one row per event block
