"""Multi-database operation: the reason internal names exist (Section 5.1).

One agent mediates a server with several databases and several users;
identically named events in different databases (or owned by different
users) must never collide, and recovery must restore all of them.
"""

import pytest

from repro.agent import EcaAgent
from repro.agent.errors import NameError_


@pytest.fixture
def multi(server, agent):
    server.catalog.create_database("tradingdb")
    east = agent.connect(user="sharma", database="sentineldb")
    west = agent.connect(user="sharma", database="tradingdb")
    for conn in (east, west):
        conn.execute(
            "create table stock (symbol varchar(10), price float)")
    return east, west


class TestCrossDatabaseIsolation:
    def test_same_short_event_name_in_two_databases(self, multi, agent):
        east, west = multi
        east.execute(
            "create trigger t1 on stock for insert event addStk "
            "as print 'east add'")
        west.execute(
            "create trigger t1 on stock for insert event addStk "
            "as print 'west add'")
        assert agent.led.has_event("sentineldb.sharma.addStk")
        assert agent.led.has_event("tradingdb.sharma.addStk")
        east_result = east.execute("insert stock values ('A', 1.0)")
        assert east_result.messages == ["east add"]
        west_result = west.execute("insert stock values ('B', 2.0)")
        assert west_result.messages == ["west add"]

    def test_same_event_name_different_users(self, server, agent):
        alice = agent.connect(user="alice", database="sentineldb")
        bob = agent.connect(user="bob", database="sentineldb")
        alice.execute("create table mine (a int)")
        bob.execute("create table mine (a int)")
        alice.execute(
            "create trigger t on mine for insert event ev as print 'alice'")
        bob.execute(
            "create trigger t on mine for insert event ev as print 'bob'")
        assert alice.execute("insert mine values (1)").messages == ["alice"]
        assert bob.execute("insert mine values (1)").messages == ["bob"]

    def test_qualified_reference_across_users(self, server, agent):
        alice = agent.connect(user="alice", database="sentineldb")
        bob = agent.connect(user="bob", database="sentineldb")
        alice.execute("create table t1 (a int)")
        alice.execute(
            "create trigger t on t1 for insert event sharedEv as print 'a'")
        # Bob attaches a rule to *alice's* event by qualifying the name.
        bob.execute(
            "create trigger t_bob event alice.sharedEv as print 'bob too'")
        result = alice.execute("insert t1 values (1)")
        assert "a" in result.messages and "bob too" in result.messages

    def test_composite_spanning_databases(self, multi, agent):
        east, west = multi
        east.execute(
            "create trigger te on stock for insert event eastIns as print 'e'")
        west.execute(
            "create trigger tw on stock for insert event westIns as print 'w'")
        # Fully qualified constituents let one composite span databases.
        east.execute(
            "create trigger tboth event bothSides = "
            "sentineldb.sharma.eastIns AND tradingdb.sharma.westIns "
            "as print 'both coasts'")
        east.execute("insert stock values ('A', 1.0)")
        result = west.execute("insert stock values ('B', 2.0)")
        assert "both coasts" in result.messages

    def test_use_switches_eca_scope(self, multi, agent):
        east, _west = multi
        east.execute(
            "create trigger t1 on stock for insert event ev1 as print 'sent'")
        east.execute("use tradingdb")
        east.execute(
            "create trigger t2 on stock for insert event ev2 as print 'trad'")
        assert agent.led.has_event("tradingdb.sharma.ev2")
        result = east.execute("insert stock values ('X', 1.0)")
        assert result.messages == ["trad"]

    def test_drop_respects_database_scope(self, multi, agent):
        east, west = multi
        east.execute(
            "create trigger t1 on stock for insert event ev as print 'e'")
        west.execute(
            "create trigger t1 on stock for insert event ev as print 'w'")
        east.execute("drop trigger t1")
        east.execute("drop event ev")
        # West's identically named objects are untouched.
        assert "tradingdb.sharma.t1" in agent.eca_triggers
        assert west.execute("insert stock values ('B', 2.0)").messages == ["w"]

    def test_cross_database_drop_requires_qualification(self, multi, agent):
        east, west = multi
        west.execute(
            "create trigger only_west on stock for insert event ev "
            "as print 'w'")
        # Unqualified, the drop falls through to the engine in the
        # session's database and fails there.
        from repro.sqlengine import CatalogError

        with pytest.raises(CatalogError):
            east.execute("drop trigger only_west")
        east.execute("drop trigger tradingdb.sharma.only_west")
        assert agent.eca_triggers == {}


class TestMultiDatabaseRecovery:
    def test_recovery_restores_every_database(self, server, agent, multi):
        east, west = multi
        east.execute(
            "create trigger t1 on stock for insert event ev as print 'e'")
        west.execute(
            "create trigger t1 on stock for insert event ev as print 'w'")
        agent.close()
        restarted = EcaAgent(server)
        assert len(restarted.primitive_events) == 2
        assert len(restarted.eca_triggers) == 2
        east2 = restarted.connect(user="sharma", database="sentineldb")
        west2 = restarted.connect(user="sharma", database="tradingdb")
        assert east2.execute("insert stock values ('A', 1.0)").messages == ["e"]
        assert west2.execute("insert stock values ('B', 2.0)").messages == ["w"]
        restarted.close()

    def test_system_tables_are_per_database(self, server, agent, multi):
        east, west = multi
        east.execute(
            "create trigger t1 on stock for insert event ev as print 'e'")
        west.execute(
            "create trigger t1 on stock for insert event ev as print 'w'")
        pm = agent.persistent_manager
        east_rows = pm.execute(
            "sentineldb", "select dbName from SysPrimitiveEvent").last.rows
        west_rows = pm.execute(
            "tradingdb", "select dbName from SysPrimitiveEvent").last.rows
        assert east_rows == [["sentineldb"]]
        assert west_rows == [["tradingdb"]]
