"""The C of ECA: WHEN condition clauses, and ALTER TRIGGER ENABLE/DISABLE."""

import pytest

from repro.agent.errors import EcaSyntaxError, NameError_


class TestConditionParsing:
    def test_when_clause_captured(self):
        from repro.agent import parse_eca_command

        command = parse_eca_command(
            "create trigger t on stock for insert event e "
            "when exists (select * from stock.inserted where price > 100) "
            "as print 'pricey'")
        assert command.condition_sql == (
            "exists (select * from stock.inserted where price > 100)")

    def test_when_after_modifiers(self):
        from repro.agent import parse_eca_command

        command = parse_eca_command(
            "create trigger t event e DEFERRED CHRONICLE 2 "
            "when 1 = 1 as print 'x'")
        assert command.condition_sql == "1 = 1"
        assert command.priority == 2

    def test_empty_condition_rejected(self):
        from repro.agent import parse_eca_command

        with pytest.raises(EcaSyntaxError):
            parse_eca_command("create trigger t event e when as print 'x'")


class TestPrimitiveConditions:
    def test_condition_gates_inline_action(self, astock):
        astock.execute(
            "create trigger t_big on stock for insert event bigBuy "
            "when exists (select * from stock.inserted where qty > 100) "
            "as print 'big position!'")
        small = astock.execute("insert stock values ('A', 1.0, 5)")
        assert "big position!" not in small.messages
        big = astock.execute("insert stock values ('B', 1.0, 500)")
        assert "big position!" in big.messages

    def test_condition_sees_pseudo_table_values(self, astock):
        astock.execute(
            "create trigger t_sym on stock for insert event symEv "
            "when exists (select * from stock.inserted where symbol = 'IBM') "
            "as print 'ibm traded'")
        assert "ibm traded" not in astock.execute(
            "insert stock values ('MSFT', 1.0, 1)").messages
        assert "ibm traded" in astock.execute(
            "insert stock values ('IBM', 1.0, 1)").messages

    def test_condition_querying_database_state(self, astock):
        astock.execute(
            "create trigger t_count on stock for insert event cEv "
            "when (select count(*) from stock) > 2 "
            "as print 'third row!'")
        astock.execute("insert stock values ('A', 1, 1)")
        astock.execute("insert stock values ('B', 1, 1)")
        result = astock.execute("insert stock values ('C', 1, 1)")
        assert "third row!" in result.messages


class TestCompositeConditions:
    @pytest.fixture
    def wired(self, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger t2 on stock for delete event e2 as print '2'")
        return astock

    def test_condition_on_composite_uses_context_tables(self, wired, agent):
        wired.execute(
            "create trigger tc event c = e1 AND e2 RECENT "
            "when exists (select * from stock.inserted where price > 50) "
            "as print 'expensive pair'")
        wired.execute("insert stock values ('CHEAP', 10.0, 1)")
        result = wired.execute("delete stock where symbol = 'CHEAP'")
        assert "expensive pair" not in result.messages
        wired.execute("insert stock values ('DEAR', 90.0, 1)")
        result = wired.execute("delete stock where symbol = 'DEAR'")
        assert "expensive pair" in result.messages

    def test_condition_persisted_and_recovered(self, wired, agent, server):
        from repro.agent import EcaAgent

        wired.execute(
            "create trigger tc event c = e1 AND e2 "
            "when 1 = 2 as print 'never'")
        agent.close()
        restarted = EcaAgent(server)
        trigger = restarted.eca_triggers["sentineldb.sharma.tc"]
        assert trigger.condition_sql == "1 = 2"
        conn = restarted.connect(user="sharma", database="sentineldb")
        conn.execute("insert stock values ('A', 1, 1)")
        result = conn.execute("delete stock")
        assert "never" not in result.messages
        restarted.close()

    def test_generated_proc_contains_condition_block(self, wired, agent, server):
        wired.execute(
            "create trigger tc event c = e1 AND e2 "
            "when 1 = 1 as print 'gated'")
        db = server.catalog.get_database("sentineldb")
        proc = db.get_procedure("sharma", "tc__Proc")
        assert "/* condition */" in proc.source
        assert "case when (1 = 1) then 1 else 0 end" in proc.source


class TestEnableDisable:
    @pytest.fixture
    def rule(self, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print 'on'")
        return astock

    def test_disable_inline_rule(self, rule):
        rule.execute("alter trigger t1 disable")
        assert "on" not in rule.execute(
            "insert stock values ('A', 1, 1)").messages

    def test_reenable_inline_rule(self, rule):
        rule.execute("alter trigger t1 disable")
        rule.execute("alter trigger t1 enable")
        assert "on" in rule.execute(
            "insert stock values ('A', 1, 1)").messages

    def test_disabled_rule_still_raises_event(self, rule, agent):
        # The event keeps flowing into the LED; only the rule is off.
        rule.execute("alter trigger t1 disable")
        rule.execute("insert stock values ('A', 1, 1)")
        assert agent.notifier.received == 1

    def test_disable_led_rule(self, rule, agent):
        rule.execute(
            "create trigger t2 event e1 DETACHED as print 'led side'")
        rule.execute("alter trigger t2 disable")
        rule.execute("insert stock values ('A', 1, 1)")
        agent.action_handler.join_detached()
        assert not any(r.trigger_internal.endswith("t2")
                       for r in agent.action_handler.action_log)

    def test_alter_unknown_trigger(self, rule):
        with pytest.raises(NameError_):
            rule.execute("alter trigger ghost disable")

    def test_alter_classified_as_eca(self):
        from repro.agent import LanguageFilter

        assert LanguageFilter().classify("alter trigger t disable") == \
            LanguageFilter.ECA
