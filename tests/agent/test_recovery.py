"""E-FIG8: persistence and recovery of ECA rules on agent restart.

The paper: "On ECA Agent starting or recovery, Persistent Manager
restores and creates all events and rules from these tables."  Here the
engine survives (it is the persistent store) and a *new* agent instance
attaches to it.
"""

import pytest

from repro.agent import EcaAgent


@pytest.fixture
def populated(server, agent, astock):
    astock.execute(
        "create trigger t_add on stock for insert event addStk as "
        "print 'add!'")
    astock.execute(
        "create trigger t_del on stock for delete event delStk as "
        "print 'del!'")
    astock.execute(
        "create trigger t_and event addDel = delStk ^ addStk RECENT as "
        "print 'and!'")
    astock.execute("insert stock values ('SEED', 1, 1)")
    agent.close()
    return server


class TestRecovery:
    def test_counts(self, populated):
        restarted = EcaAgent(populated)
        counts = restarted.recover()  # idempotent second call
        assert counts == {"primitive": 0, "composite": 0, "trigger": 0,
                          "repaired": 0}
        assert len(restarted.primitive_events) == 2
        assert len(restarted.composite_events) == 1
        assert len(restarted.eca_triggers) == 3
        restarted.close()

    def test_events_restored_into_led(self, populated):
        restarted = EcaAgent(populated)
        for name in ("sentineldb.sharma.addStk", "sentineldb.sharma.delStk",
                     "sentineldb.sharma.addDel"):
            assert restarted.led.has_event(name)
        restarted.close()

    def test_primitive_rules_fire_after_restart(self, populated):
        restarted = EcaAgent(populated)
        conn = restarted.connect(user="sharma", database="sentineldb")
        result = conn.execute("insert stock values ('X', 2, 2)")
        assert "add!" in result.messages
        restarted.close()

    def test_composite_rules_fire_after_restart(self, populated):
        restarted = EcaAgent(populated)
        conn = restarted.connect(user="sharma", database="sentineldb")
        conn.execute("delete stock where symbol = 'SEED'")
        result = conn.execute("insert stock values ('Y', 3, 3)")
        assert "and!" in result.messages
        restarted.close()

    def test_occurrence_numbers_continue(self, populated):
        restarted = EcaAgent(populated)
        conn = restarted.connect(user="sharma", database="sentineldb")
        conn.execute("insert stock values ('X', 2, 2)")
        assert restarted.persistent_manager.current_v_no(
            "sentineldb", "sentineldb.sharma.addStk") == 2  # 1 before restart
        restarted.close()

    def test_new_rules_can_be_added_after_recovery(self, populated):
        restarted = EcaAgent(populated)
        conn = restarted.connect(user="sharma", database="sentineldb")
        conn.execute("create trigger t_more event addStk as print 'more!'")
        result = conn.execute("insert stock values ('Z', 4, 4)")
        assert "add!" in result.messages and "more!" in result.messages
        restarted.close()

    def test_recovery_of_composite_of_composite(self, server, agent, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute(
            "create trigger t2 on stock for delete event e2 as print '2'")
        astock.execute(
            "create trigger tc event c1 = e1 AND e2 as print 'c1'")
        astock.execute(
            "create trigger tcc event c2 = c1 SEQ e1 CHRONICLE as print 'c2'")
        agent.close()
        restarted = EcaAgent(server)
        assert len(restarted.composite_events) == 2
        conn = restarted.connect(user="sharma", database="sentineldb")
        conn.execute("insert stock values ('A', 1, 1)")
        conn.execute("delete stock")          # c1 fires
        result = conn.execute("insert stock values ('B', 2, 2)")
        assert "c2" in result.messages
        restarted.close()

    def test_fresh_server_recovers_nothing(self, server):
        agent = EcaAgent(server)
        assert agent.primitive_events == {}
        assert agent.composite_events == {}
        agent.close()

    def test_dropped_rules_stay_dropped(self, server, agent, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print '1'")
        astock.execute("drop trigger t1")
        agent.close()
        restarted = EcaAgent(server)
        assert restarted.eca_triggers == {}
        assert len(restarted.primitive_events) == 1  # event survives
        restarted.close()
