"""E-FIG1: the Gateway Open Server is transparent to clients."""

import pytest

from repro.sqlengine import SqlError

QUERIES = [
    "select * from stock order by symbol",
    "select count(*), avg(price) from stock",
    "select symbol from stock where price > 50",
]


@pytest.fixture
def both(server, agent):
    direct = __import__("repro.sqlengine", fromlist=["connect"]).connect(
        server, user="sharma", database="sentineldb")
    mediated = agent.connect(user="sharma", database="sentineldb")
    direct.execute(
        "create table stock (symbol varchar(10), price float, qty int)")
    direct.execute(
        "insert stock values ('IBM', 100.0, 1), ('MSFT', 50.0, 2)")
    return direct, mediated


class TestTransparency:
    def test_identical_result_sets(self, both):
        direct, mediated = both
        for sql in QUERIES:
            d = direct.execute(sql)
            m = mediated.execute(sql)
            assert d.last.columns == m.last.columns
            assert d.last.rows == m.last.rows

    def test_identical_messages(self, both):
        direct, mediated = both
        assert direct.execute("print 'x'").messages == \
            mediated.execute("print 'x'").messages

    def test_identical_errors(self, both):
        direct, mediated = both
        with pytest.raises(SqlError) as direct_error:
            direct.execute("select * from missing_table")
        with pytest.raises(SqlError) as mediated_error:
            mediated.execute("select * from missing_table")
        assert str(direct_error.value) == str(mediated_error.value)

    def test_ddl_and_dml_pass_through(self, both, server):
        _direct, mediated = both
        mediated.execute("create table t2 (a int)")
        mediated.execute("insert t2 values (1)")
        assert "sharma.t2" in server.table_names("sentineldb")

    def test_native_trigger_ddl_passes_through(self, both, server):
        _direct, mediated = both
        mediated.execute(
            "create trigger native_tr on stock for insert as print 'native'")
        assert "sharma.native_tr" in server.trigger_names("sentineldb")
        assert mediated.execute("insert stock values ('X', 1, 1)").messages \
            == ["native"]

    def test_sessions_isolated_between_clients(self, agent, server):
        one = agent.connect(user="u1", database="sentineldb")
        two = agent.connect(user="u2", database="sentineldb")
        one.execute("create table mine (a int)")
        with pytest.raises(SqlError):
            two.execute("insert mine values (1)")  # u2 has no 'mine'


class TestRoutingStatistics:
    def test_pass_through_counted(self, agent, astock):
        before = agent.gateway.commands_passed_through
        astock.execute("select * from stock")
        assert agent.gateway.commands_passed_through == before + 1

    def test_eca_commands_counted(self, agent, astock):
        before = agent.gateway.commands_eca
        astock.execute(
            "create trigger t on stock for insert event e as print 'x'")
        assert agent.gateway.commands_eca == before + 1

    def test_drop_of_native_trigger_passes_through(self, agent, astock, server):
        astock.execute(
            "create trigger native_tr on stock for insert as print 'n'")
        before = agent.gateway.commands_eca
        astock.execute("drop trigger native_tr")
        assert agent.gateway.commands_eca == before
        assert "sharma.native_tr" not in server.trigger_names("sentineldb")

    def test_drop_of_eca_trigger_routed_to_agent(self, agent, astock):
        astock.execute(
            "create trigger t on stock for insert event e as print 'x'")
        before = agent.gateway.commands_eca
        astock.execute("drop trigger t")
        assert agent.gateway.commands_eca == before + 1
