"""A crash part-way through a DDL flow must leave no poisoned plan-cache
entry: the epoch bump happens in a ``finally``, so even DDL that dies
mid-statement (or a multi-statement persistence script that dies between
statements) invalidates every plan parsed under the old schema.
"""

import pytest

from repro.agent import EcaAgent
from repro.faults import FaultPlan, POINT_PERSISTENCE_EXECUTE, SimulatedCrash
from repro.sqlengine import SqlServer, connect

STOCK_DDL = (
    "create table stock ("
    "symbol varchar(10) not null, price float null, qty int null)"
)


def test_crash_mid_ddl_leaves_no_poisoned_plan(plan_cache_mode):
    server = SqlServer(default_database="sentineldb")
    server.plan_cache.enabled = True

    agent = EcaAgent(server)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    conn.execute(
        "create trigger t1 on stock for insert event addStk as print 'one'")
    agent.close()

    # Prime the cache: the second execution is a hit.
    probe = connect(server, user="sharma", database="sentineldb")
    server.plan_cache.clear()
    probe.execute("select * from stock")
    probe.execute("select * from stock")
    assert server.plan_cache.hits == 1
    epoch_before = server.catalog.schema_epoch

    # Crash the agent between the action procedure's CREATE PROCEDURE
    # (which already ran) and the SysEcaTrigger row insert.
    plan = FaultPlan(seed=7)
    plan.inject(POINT_PERSISTENCE_EXECUTE, kind="crash",
                match="insert SysEcaTrigger")
    chaos = EcaAgent(server, faults=plan)
    chaos_conn = chaos.connect(user="sharma", database="sentineldb")
    with pytest.raises(SimulatedCrash):
        chaos_conn.execute("create trigger t2 event addStk as print 'two'")

    # The interrupted flow still moved the epoch past every cached plan.
    assert server.catalog.schema_epoch > epoch_before

    # The primed entry is stale: re-executing it must invalidate and
    # re-parse, never serve the pre-crash plan.
    invalidations = server.plan_cache.invalidations
    hits = server.plan_cache.hits
    probe.execute("select * from stock")
    assert server.plan_cache.invalidations == invalidations + 1
    assert server.plan_cache.hits == hits
