"""Dropping triggers and events: cleanup of every generated artifact."""

import pytest

from repro.agent.errors import NameError_


@pytest.fixture
def base(astock):
    astock.execute(
        "create trigger t1 on stock for insert event e1 as print '1'")
    return astock


class TestDropTrigger:
    def test_removes_proc_and_persistence(self, base, agent, server):
        base.execute("drop trigger t1")
        assert "sharma.t1__Proc" not in server.procedure_names("sentineldb")
        count = agent.persistent_manager.execute(
            "sentineldb", "select count(*) from SysEcaTrigger").last.scalar()
        assert count == 0

    def test_native_trigger_regenerated_without_inline_proc(self, base, server):
        base.execute("drop trigger t1")
        db = server.catalog.get_database("sentineldb")
        trigger = db.get_trigger("sharma", "ECA_stock_insert")
        assert trigger is not None          # event still registered
        assert "t1__Proc" not in trigger.source

    def test_drop_unknown_trigger_falls_through_to_engine(self, base):
        # Not an ECA trigger, so the command passes through and the
        # engine's own catalog error surfaces.
        from repro.sqlengine import CatalogError

        with pytest.raises(CatalogError):
            base.execute("drop trigger ghost")

    def test_drop_led_rule_for_composite_trigger(self, base, agent):
        base.execute(
            "create trigger t2 on stock for delete event e2 as print '2'")
        base.execute("create trigger tc event c = e1 AND e2 as print 'c'")
        base.execute("drop trigger tc")
        assert agent.led.rules_for("sentineldb.sharma.c") == []


class TestDropEvent:
    def test_drop_event_with_triggers_refused(self, base):
        with pytest.raises(NameError_) as excinfo:
            base.execute("drop event e1")
        assert "t1" in str(excinfo.value)

    def test_drop_primitive_event_cleans_everything(self, base, agent, server):
        base.execute("drop trigger t1")
        base.execute("drop event e1")
        db = server.catalog.get_database("sentineldb")
        assert db.get_table("sharma", "stock_inserted") is None
        assert db.get_table("sharma", "e1_Version") is None
        assert db.get_trigger("sharma", "ECA_stock_insert") is None
        assert not agent.led.has_event("sentineldb.sharma.e1")
        count = agent.persistent_manager.execute(
            "sentineldb",
            "select count(*) from SysPrimitiveEvent").last.scalar()
        assert count == 0

    def test_drop_event_keeps_shared_snapshot(self, base, agent, server):
        base.execute(
            "create trigger t2 on stock for insert event e2 as print '2'")
        base.execute("drop trigger t1")
        base.execute("drop event e1")
        db = server.catalog.get_database("sentineldb")
        # e2 still snapshots stock_inserted.
        assert db.get_table("sharma", "stock_inserted") is not None
        assert db.get_trigger("sharma", "ECA_stock_insert") is not None

    def test_drop_event_used_by_composite_refused(self, base, agent):
        base.execute(
            "create trigger t2 on stock for delete event e2 as print '2'")
        base.execute("create trigger tc event c = e1 AND e2 as print 'c'")
        base.execute("drop trigger t1")
        with pytest.raises(NameError_):
            base.execute("drop event e1")

    def test_drop_composite_event(self, base, agent):
        base.execute(
            "create trigger t2 on stock for delete event e2 as print '2'")
        base.execute("create trigger tc event c = e1 AND e2 as print 'c'")
        base.execute("drop trigger tc")
        base.execute("drop event c")
        assert not agent.led.has_event("sentineldb.sharma.c")
        count = agent.persistent_manager.execute(
            "sentineldb",
            "select count(*) from SysCompositeEvent").last.scalar()
        assert count == 0

    def test_drop_unknown_event(self, base):
        with pytest.raises(NameError_):
            base.execute("drop event ghost")

    def test_dropped_primitive_no_longer_notifies(self, base, agent):
        base.execute("drop trigger t1")
        base.execute("drop event e1")
        sent_before = agent.channel.sent_count
        base.execute("insert stock values ('A', 1, 1)")
        assert agent.channel.sent_count == sent_before

    def test_event_name_reusable_after_drop(self, base, agent):
        base.execute("drop trigger t1")
        base.execute("drop event e1")
        base.execute(
            "create trigger t1 on stock for delete event e1 as print 'new e1'")
        base.execute("insert stock values ('A', 1, 1)")
        result = base.execute("delete stock")
        assert "new e1" in result.messages
