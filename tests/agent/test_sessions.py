"""The multi-session gateway: session isolation, worker-pool scheduling,
backpressure, fine-grained locking under concurrency, and deterministic
LED ordering across client interleavings (docs/CONCURRENCY.md).

Clock hygiene: nothing here reads or sleeps on the wall clock directly —
blocking is expressed through ``Future.result(timeout)``, ``join``
timeouts, and ``waitfor delay`` SQL (which the *engine* sleeps on, on a
pool worker, which is exactly the behaviour under test).
"""

import threading
from concurrent.futures import Future

import pytest

from repro.agent import EcaAgent
from repro.agent.gateway import RECENT_CLOSED_LIMIT
from repro.agent.session import AgentSession
from repro.agent.workers import WorkerPool, drain_session
from repro.difftest import (
    compare_stack_runs,
    generate_scenario,
    run_interleaved,
    run_stack,
)
from repro.led import ManualClock
from repro.sqlengine import SqlServer

USER = "sharma"
DATABASE = "sentineldb"


def pooled_agent(workers: int) -> EcaAgent:
    server = SqlServer(default_database=DATABASE)
    return EcaAgent(server, clock=ManualClock(), channel="sync",
                    workers=workers)


class TestSessionIsolation:
    def test_sessions_have_distinct_ids_and_state(self, agent):
        a = agent.gateway.open_session(USER, DATABASE)
        b = agent.gateway.open_session("jukka", DATABASE)
        assert a.session_id != b.session_id
        assert a.state == "idle" and b.state == "idle"
        assert a.user == USER and b.user == "jukka"

    def test_commands_attributed_to_their_session(self, agent):
        gateway = agent.gateway
        a = gateway.open_session(USER, DATABASE)
        b = gateway.open_session(USER, DATABASE)
        gateway.execute_for(a, "create table iso_a (x int null)")
        for _ in range(3):
            gateway.execute_for(a, "insert iso_a values (1)")
        gateway.execute_for(b, "select 1")
        by_id = {s["session_id"]: s for s in gateway.session_snapshots()}
        assert by_id[a.session_id]["enqueued"] == 4
        assert by_id[a.session_id]["executed"] == 4
        assert by_id[b.session_id]["executed"] == 1

    def test_engine_state_stays_per_session(self, agent):
        gateway = agent.gateway
        a = gateway.open_session(USER, DATABASE)
        b = gateway.open_session(USER, DATABASE)
        gateway.execute_for(a, "create table iso_tx (x int null)")
        gateway.execute_for(a, "begin transaction\ninsert iso_tx values (1)")
        assert a.tx_log.active
        assert not b.tx_log.active
        gateway.execute_for(a, "rollback")
        result = gateway.execute_for(b, "select count(*) from iso_tx")
        assert [list(r) for r in result.last.rows] == [[0]]


class TestWorkerPool:
    def test_pooled_commands_run_off_the_client_thread(self):
        agent = pooled_agent(2)
        try:
            gateway = agent.gateway
            session = gateway.open_session(USER, DATABASE)
            future = gateway.submit_for(session, "select 1")
            assert [list(r) for r in future.result(timeout=10).last.rows] == [[1]]
            # the pool's completion counter proves a worker ran it
            assert gateway.pool.completed >= 1
            assert session.executed_total == 1
        finally:
            agent.close()

    def test_per_session_fifo_under_pool(self):
        agent = pooled_agent(4)
        try:
            gateway = agent.gateway
            session = gateway.open_session(USER, DATABASE)
            gateway.execute_for(
                session, "create table fifo_t (x int not null)")
            futures = [gateway.submit_for(
                session, f"insert fifo_t values ({n})")
                for n in range(20)]
            for future in futures:
                future.result(timeout=30)
            result = gateway.execute_for(session, "select x from fifo_t")
            # one session's commands never reorder, even with 4 workers
            assert [row[0] for row in result.last.rows] == list(range(20))
        finally:
            agent.close()

    def test_sessions_progress_in_parallel(self):
        agent = pooled_agent(4)
        try:
            gateway = agent.gateway
            sessions = [gateway.open_session(USER, DATABASE)
                        for _ in range(4)]
            gateway.execute_for(
                sessions[0], "create table par_t (x int null)")
            futures = [gateway.submit_for(
                s, 'waitfor delay "0:0:0.05"\ninsert par_t values (1)')
                for s in sessions]
            for future in futures:
                future.result(timeout=30)
            result = gateway.execute_for(
                sessions[0], "select count(*) from par_t")
            assert [list(r) for r in result.last.rows] == [[4]]
        finally:
            agent.close()

    def test_backpressure_blocks_then_drains(self):
        agent = pooled_agent(1)
        try:
            gateway = agent.gateway
            server = agent.server
            session = AgentSession(
                server.create_session(USER, DATABASE), queue_limit=2)
            # occupy the single worker, then fill the bounded queue
            blocker = gateway.submit_for(session, 'waitfor delay "0:0:0.3"')
            overflow_done = threading.Event()
            futures = []

            def flood():
                for n in range(4):
                    futures.append(
                        gateway.submit_for(session, f"select {n}"))
                overflow_done.set()

            flooder = threading.Thread(target=flood, daemon=True)
            flooder.start()
            # the flooder must be throttled by the bounded queue, then
            # released as the worker drains it
            assert overflow_done.wait(timeout=30)
            blocker.result(timeout=30)
            for future in futures:
                future.result(timeout=30)
            assert session.backpressure_waits >= 1
            assert session.executed_total == 5
            assert session.queue_depth() == 0
        finally:
            agent.close()

    def test_resize_swaps_pool_without_losing_commands(self):
        agent = pooled_agent(2)
        try:
            conn = agent.connect(user=USER, database=DATABASE)
            conn.execute("create table rsz_t (x int null)")
            old_pool = agent.gateway.pool
            for size in (4, 1, 8):
                result = conn.execute(f"set agent workers {size}")
                assert any("resized" in m for m in result.messages)
                assert agent.gateway.worker_count() == size
                conn.execute("insert rsz_t values (1)")
            assert agent.gateway.pool is not old_pool
            result = conn.execute("select count(*) from rsz_t")
            assert [list(r) for r in result.last.rows] == [[3]]
            conn.execute("set agent workers 0")
            assert agent.gateway.pool is None
            result = conn.execute("select count(*) from rsz_t")
            assert [list(r) for r in result.last.rows] == [[3]]
        finally:
            agent.close()

    def test_stopped_pool_rejects_then_gateway_falls_back(self):
        pool = WorkerPool(1)
        pool.stop(join=True)
        session = AgentSession(
            SqlServer().create_session(USER, "master"))
        with pytest.raises(RuntimeError):
            pool.submit(session, lambda: None)


class TestResizeNeverStrands:
    """Regression: a pool replacement used to wedge sessions whose
    backlog was re-queued behind the old pool's stop sentinels."""

    def test_resize_with_queued_backlog_resolves_every_future(self):
        agent = pooled_agent(1)
        try:
            gateway = agent.gateway
            session = gateway.open_session(USER, DATABASE)
            gateway.execute_for(
                session, "create table strand_t (x int null)")
            # one slow command in flight + a backlog queued behind it
            futures = [gateway.submit_for(
                session,
                f'waitfor delay "0:0:0.05"\ninsert strand_t values ({n})')
                for n in range(5)]
            gateway.set_workers(2)  # swap pools while the backlog waits
            for future in futures:
                future.result(timeout=30)
            # the session must stay usable on the replacement pool
            result = gateway.execute_for(
                session, "select count(*) from strand_t")
            assert [list(r) for r in result.last.rows] == [[5]]
            assert session.queue_depth() == 0
            assert not session.scheduled and not session.active
        finally:
            agent.close()

    def test_resize_to_zero_drains_backlog_then_runs_inline(self):
        agent = pooled_agent(2)
        try:
            gateway = agent.gateway
            session = gateway.open_session(USER, DATABASE)
            gateway.execute_for(
                session, "create table strand_z (x int null)")
            futures = [gateway.submit_for(
                session,
                f'waitfor delay "0:0:0.05"\ninsert strand_z values ({n})')
                for n in range(4)]
            gateway.set_workers(0)
            for future in futures:
                future.result(timeout=30)
            result = gateway.execute_for(
                session, "select count(*) from strand_z")
            assert [list(r) for r in result.last.rows] == [[4]]
        finally:
            agent.close()

    def test_stop_drains_commands_queued_behind_sentinels(self):
        pool = WorkerPool(1)
        session = AgentSession(SqlServer().create_session(USER, "master"))
        gate = threading.Event()
        blocker = pool.submit(session, gate.wait)
        followers = [pool.submit(session, lambda n=n: n) for n in range(3)]
        # sentinel enters the run queue while the blocker is in flight,
        # so the session's re-queue lands BEHIND it — the drain must
        # still service it
        pool.stop(join=False)
        gate.set()
        assert blocker.result(timeout=10) is True
        assert [f.result(timeout=10) for f in followers] == [0, 1, 2]
        pool.stop(join=True)  # idempotent; joins the drained workers
        assert session.queue_depth() == 0

    def test_reschedule_hands_stranded_session_to_current_pool(self):
        agent = pooled_agent(2)
        try:
            gateway = agent.gateway
            session = gateway.open_session(USER, DATABASE)
            future = Future()
            # simulate a task whose run-queue entry died with an old
            # pool: enqueued (scheduled=True) but in no live run queue
            session.enqueue((lambda: "rescued", future))
            gateway._reschedule(session)
            assert future.result(timeout=10) == "rescued"
        finally:
            agent.close()

    def test_reschedule_drains_inline_without_a_pool(self, agent):
        gateway = agent.gateway
        assert gateway.pool is None
        session = gateway.open_session(USER, DATABASE)
        future = Future()
        session.enqueue((lambda: "inline", future))
        gateway._reschedule(session)
        assert future.result(timeout=1) == "inline"
        assert not session.scheduled

    def test_drain_session_runs_backlog_to_exhaustion(self):
        session = AgentSession(SqlServer().create_session(USER, "master"))
        futures = [Future() for _ in range(3)]
        for n, future in enumerate(futures):
            session.enqueue((lambda n=n: n * 10, future))
        assert drain_session(session) == 3
        assert [f.result(timeout=1) for f in futures] == [0, 10, 20]
        assert not session.scheduled and session.queue_depth() == 0

    def test_take_yields_to_the_active_worker(self):
        session = AgentSession(SqlServer().create_session(USER, "master"))
        session.enqueue((lambda: 1, Future()))
        session.enqueue((lambda: 2, Future()))
        first = session.take()
        assert first is not None and session.active
        # a second worker holding a redundant run-queue entry backs off
        # without clearing the scheduling state
        assert session.take() is None
        assert session.scheduled and session.active
        session.active = False
        assert session.take() is not None


class TestConcurrentDdlVsCachedSelect:
    def test_ddl_storm_against_cached_selects(self):
        agent = pooled_agent(4)
        try:
            gateway = agent.gateway
            setup = gateway.open_session(USER, DATABASE)
            gateway.execute_for(
                setup, "create table ddl_t (k int not null, v int null)")
            gateway.execute_for(setup, "insert ddl_t values (1, 10)")
            readers = [gateway.open_session(USER, DATABASE)
                       for _ in range(3)]
            ddl = gateway.open_session(USER, DATABASE)
            futures = []
            for round_no in range(10):
                for reader in readers:
                    futures.append(gateway.submit_for(
                        reader, "select v from ddl_t where k = 1"))
                futures.append(gateway.submit_for(
                    ddl, f"create table ddl_side_{round_no} (x int null)"))
            for future in futures:
                result = future.result(timeout=60)
                if result.last is not None:
                    assert [list(r) for r in result.last.rows] == [[10]]
            stats = agent.server.lock_manager.stats()
            # both paths ran; any epoch race was retried, not corrupted
            assert stats["exclusive_batches"] > 0
            assert stats["shared_batches"] > 0
        finally:
            agent.close()

    def test_index_ddl_while_selecting(self):
        agent = pooled_agent(4)
        try:
            gateway = agent.gateway
            setup = gateway.open_session(USER, DATABASE)
            gateway.execute_for(
                setup, "create table idx_t (k int not null, v int null)")
            for n in range(20):
                gateway.execute_for(
                    setup, f"insert idx_t values ({n}, {n * 10})")
            readers = [gateway.open_session(USER, DATABASE)
                       for _ in range(3)]
            futures = [gateway.submit_for(
                r, f"select v from idx_t where k = {n}")
                for n in range(10) for r in readers]
            futures.append(gateway.submit_for(
                setup, "create index ix_k on idx_t (k)"))
            futures.extend(gateway.submit_for(
                r, f"select v from idx_t where k = {n}")
                for n in range(10, 20) for r in readers)
            for future in futures:
                future.result(timeout=60)
            result = gateway.execute_for(
                setup, "select v from idx_t where k = 7")
            assert [list(r) for r in result.last.rows] == [[70]]
        finally:
            agent.close()


class TestDeterministicOrdering:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_interleaved_clients_match_serial_schedule(self, seed,
                                                       plan_cache_mode):
        scenario = generate_scenario(seed)
        cache_on = plan_cache_mode == "plan-cache-on"
        serial = run_stack(scenario, plan_cache=cache_on)
        pooled = run_interleaved(scenario, clients=6, workers=4,
                                 seed=seed, plan_cache=cache_on)
        divergences = compare_stack_runs(
            serial, pooled, label_a="serial", label_b="interleaved")
        assert divergences == []

    def test_same_session_led_order_is_stable(self):
        agent = pooled_agent(4)
        try:
            conn = agent.connect(user=USER, database=DATABASE)
            conn.execute("create table led_t (x int null)")
            log = agent.start_detection_log()
            conn.execute(
                "create trigger t_led on led_t for insert\n"
                "event ledIns\n"
                "as print 'ledIns'")
            for n in range(10):
                conn.execute(f"insert led_t values ({n})")
            agent.stop_detection_log()
            seqs = [occ.seq for _n, _c, occ in log]
            assert seqs == sorted(seqs)
            assert len(seqs) == 10
        finally:
            agent.close()


class TestSessionEviction:
    """Closed sessions leave the live table for a bounded ring, so a
    gateway serving many short-lived connections stays O(live + ring)."""

    def test_closed_sessions_move_to_bounded_ring(self, agent):
        gateway = agent.gateway
        keep = gateway.open_session(USER, DATABASE)
        for _ in range(RECENT_CLOSED_LIMIT + 8):
            conn = agent.connect(user=USER, database=DATABASE)
            conn.execute("select 1")
            conn.close()
        with gateway._sessions_lock:
            live = list(gateway._sessions)
        assert live == [keep.session_id]
        snapshots = gateway.session_snapshots()
        assert len(snapshots) == 1 + RECENT_CLOSED_LIMIT
        closed = [s for s in snapshots if s["session_id"] != keep.session_id]
        assert all(s["state"] == "closed" for s in closed)
        # newest first, and the oldest closed sessions were dropped
        ids = [s["session_id"] for s in snapshots]
        assert ids == sorted(ids, reverse=True)

    def test_close_is_evicted_once_and_counts_survive(self, agent):
        gateway = agent.gateway
        conn = agent.connect(user=USER, database=DATABASE)
        conn.execute("select 1")
        session = conn.session
        conn.close()
        session.closed = True  # double close must not double-evict
        snapshots = [s for s in gateway.session_snapshots()
                     if s["session_id"] == session.session_id]
        assert len(snapshots) == 1
        assert snapshots[0]["state"] == "closed"
        assert snapshots[0]["executed"] == 1


class TestAbandonedTransactions:
    """A client that disconnects mid-transaction must not pin the engine
    onto the exclusive gate (the lock manager tracks tx sessions by id
    and the close path rolls the transaction back)."""

    def test_disconnect_mid_transaction_rolls_back_and_unpins(self, agent):
        conn = agent.connect(user=USER, database=DATABASE)
        conn.execute("create table aband_t (x int null)")
        conn.execute("begin transaction\ninsert aband_t values (1)")
        lock_manager = agent.server.lock_manager
        assert lock_manager.transaction_sessions() == {
            conn.session.session_id}
        conn.close()
        assert lock_manager.transaction_sessions() == set()
        probe = agent.connect(user=USER, database=DATABASE)
        before = lock_manager.shared_batches
        result = probe.execute("select count(*) from aband_t")
        # the abandoned insert was rolled back...
        assert result.last.scalar() == 0
        # ...and the batch ran fine-grained, not forced exclusive
        assert lock_manager.shared_batches == before + 1
        probe.close()

    def test_commit_then_disconnect_leaves_no_residue(self, agent):
        conn = agent.connect(user=USER, database=DATABASE)
        conn.execute("create table aband_c (x int null)")
        conn.execute(
            "begin transaction\ninsert aband_c values (7)\ncommit")
        conn.close()
        assert agent.server.lock_manager.transaction_sessions() == set()
        probe = agent.connect(user=USER, database=DATABASE)
        assert probe.execute(
            "select count(*) from aband_c").last.scalar() == 1
        probe.close()


class TestAdminSurface:
    def test_show_agent_sessions_rows(self):
        agent = pooled_agent(2)
        try:
            conn = agent.connect(user=USER, database=DATABASE)
            conn.execute("select 1")
            result = conn.execute("show agent sessions")
            rows = result.result_sets[0]
            assert rows.columns[:4] == [
                "session_id", "user", "database", "state"]
            assert len(rows.rows) == 1
        finally:
            agent.close()

    def test_show_agent_workers_reports_pool_and_locks(self):
        agent = pooled_agent(3)
        try:
            conn = agent.connect(user=USER, database=DATABASE)
            result = conn.execute("show agent workers")
            pool_rows, lock_rows = result.result_sets
            assert pool_rows.rows[0][1] == 3  # size
            stats = {name: value for name, value in lock_rows.rows}
            assert set(stats) == {
                "exclusive_batches", "shared_batches", "retries"}
        finally:
            agent.close()

    def test_set_agent_workers_validation(self, agent):
        conn = agent.connect(user=USER, database=DATABASE)
        bad = conn.execute("set agent workers nope")
        assert "thread count" in bad.result_sets[0].rows[0][0]
        negative = conn.execute("set agent workers -2")
        assert ">= 0" in negative.result_sets[0].rows[0][0]
