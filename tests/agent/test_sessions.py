"""The multi-session gateway: session isolation, worker-pool scheduling,
backpressure, fine-grained locking under concurrency, and deterministic
LED ordering across client interleavings (docs/CONCURRENCY.md).

Clock hygiene: nothing here reads or sleeps on the wall clock directly —
blocking is expressed through ``Future.result(timeout)``, ``join``
timeouts, and ``waitfor delay`` SQL (which the *engine* sleeps on, on a
pool worker, which is exactly the behaviour under test).
"""

import threading

import pytest

from repro.agent import EcaAgent
from repro.agent.session import AgentSession
from repro.agent.workers import WorkerPool
from repro.difftest import (
    compare_stack_runs,
    generate_scenario,
    run_interleaved,
    run_stack,
)
from repro.led import ManualClock
from repro.sqlengine import SqlServer

USER = "sharma"
DATABASE = "sentineldb"


def pooled_agent(workers: int) -> EcaAgent:
    server = SqlServer(default_database=DATABASE)
    return EcaAgent(server, clock=ManualClock(), channel="sync",
                    workers=workers)


class TestSessionIsolation:
    def test_sessions_have_distinct_ids_and_state(self, agent):
        a = agent.gateway.open_session(USER, DATABASE)
        b = agent.gateway.open_session("jukka", DATABASE)
        assert a.session_id != b.session_id
        assert a.state == "idle" and b.state == "idle"
        assert a.user == USER and b.user == "jukka"

    def test_commands_attributed_to_their_session(self, agent):
        gateway = agent.gateway
        a = gateway.open_session(USER, DATABASE)
        b = gateway.open_session(USER, DATABASE)
        gateway.execute_for(a, "create table iso_a (x int null)")
        for _ in range(3):
            gateway.execute_for(a, "insert iso_a values (1)")
        gateway.execute_for(b, "select 1")
        by_id = {s["session_id"]: s for s in gateway.session_snapshots()}
        assert by_id[a.session_id]["enqueued"] == 4
        assert by_id[a.session_id]["executed"] == 4
        assert by_id[b.session_id]["executed"] == 1

    def test_engine_state_stays_per_session(self, agent):
        gateway = agent.gateway
        a = gateway.open_session(USER, DATABASE)
        b = gateway.open_session(USER, DATABASE)
        gateway.execute_for(a, "create table iso_tx (x int null)")
        gateway.execute_for(a, "begin transaction\ninsert iso_tx values (1)")
        assert a.tx_log.active
        assert not b.tx_log.active
        gateway.execute_for(a, "rollback")
        result = gateway.execute_for(b, "select count(*) from iso_tx")
        assert [list(r) for r in result.last.rows] == [[0]]


class TestWorkerPool:
    def test_pooled_commands_run_off_the_client_thread(self):
        agent = pooled_agent(2)
        try:
            gateway = agent.gateway
            session = gateway.open_session(USER, DATABASE)
            future = gateway.submit_for(session, "select 1")
            assert [list(r) for r in future.result(timeout=10).last.rows] == [[1]]
            # the pool's completion counter proves a worker ran it
            assert gateway.pool.completed >= 1
            assert session.executed_total == 1
        finally:
            agent.close()

    def test_per_session_fifo_under_pool(self):
        agent = pooled_agent(4)
        try:
            gateway = agent.gateway
            session = gateway.open_session(USER, DATABASE)
            gateway.execute_for(
                session, "create table fifo_t (x int not null)")
            futures = [gateway.submit_for(
                session, f"insert fifo_t values ({n})")
                for n in range(20)]
            for future in futures:
                future.result(timeout=30)
            result = gateway.execute_for(session, "select x from fifo_t")
            # one session's commands never reorder, even with 4 workers
            assert [row[0] for row in result.last.rows] == list(range(20))
        finally:
            agent.close()

    def test_sessions_progress_in_parallel(self):
        agent = pooled_agent(4)
        try:
            gateway = agent.gateway
            sessions = [gateway.open_session(USER, DATABASE)
                        for _ in range(4)]
            gateway.execute_for(
                sessions[0], "create table par_t (x int null)")
            futures = [gateway.submit_for(
                s, 'waitfor delay "0:0:0.05"\ninsert par_t values (1)')
                for s in sessions]
            for future in futures:
                future.result(timeout=30)
            result = gateway.execute_for(
                sessions[0], "select count(*) from par_t")
            assert [list(r) for r in result.last.rows] == [[4]]
        finally:
            agent.close()

    def test_backpressure_blocks_then_drains(self):
        agent = pooled_agent(1)
        try:
            gateway = agent.gateway
            server = agent.server
            session = AgentSession(
                server.create_session(USER, DATABASE), queue_limit=2)
            # occupy the single worker, then fill the bounded queue
            blocker = gateway.submit_for(session, 'waitfor delay "0:0:0.3"')
            overflow_done = threading.Event()
            futures = []

            def flood():
                for n in range(4):
                    futures.append(
                        gateway.submit_for(session, f"select {n}"))
                overflow_done.set()

            flooder = threading.Thread(target=flood, daemon=True)
            flooder.start()
            # the flooder must be throttled by the bounded queue, then
            # released as the worker drains it
            assert overflow_done.wait(timeout=30)
            blocker.result(timeout=30)
            for future in futures:
                future.result(timeout=30)
            assert session.backpressure_waits >= 1
            assert session.executed_total == 5
            assert session.queue_depth() == 0
        finally:
            agent.close()

    def test_resize_swaps_pool_without_losing_commands(self):
        agent = pooled_agent(2)
        try:
            conn = agent.connect(user=USER, database=DATABASE)
            conn.execute("create table rsz_t (x int null)")
            old_pool = agent.gateway.pool
            for size in (4, 1, 8):
                result = conn.execute(f"set agent workers {size}")
                assert any("resized" in m for m in result.messages)
                assert agent.gateway.worker_count() == size
                conn.execute("insert rsz_t values (1)")
            assert agent.gateway.pool is not old_pool
            result = conn.execute("select count(*) from rsz_t")
            assert [list(r) for r in result.last.rows] == [[3]]
            conn.execute("set agent workers 0")
            assert agent.gateway.pool is None
            result = conn.execute("select count(*) from rsz_t")
            assert [list(r) for r in result.last.rows] == [[3]]
        finally:
            agent.close()

    def test_stopped_pool_rejects_then_gateway_falls_back(self):
        pool = WorkerPool(1)
        pool.stop(join=True)
        session = AgentSession(
            SqlServer().create_session(USER, "master"))
        with pytest.raises(RuntimeError):
            pool.submit(session, lambda: None)


class TestConcurrentDdlVsCachedSelect:
    def test_ddl_storm_against_cached_selects(self):
        agent = pooled_agent(4)
        try:
            gateway = agent.gateway
            setup = gateway.open_session(USER, DATABASE)
            gateway.execute_for(
                setup, "create table ddl_t (k int not null, v int null)")
            gateway.execute_for(setup, "insert ddl_t values (1, 10)")
            readers = [gateway.open_session(USER, DATABASE)
                       for _ in range(3)]
            ddl = gateway.open_session(USER, DATABASE)
            futures = []
            for round_no in range(10):
                for reader in readers:
                    futures.append(gateway.submit_for(
                        reader, "select v from ddl_t where k = 1"))
                futures.append(gateway.submit_for(
                    ddl, f"create table ddl_side_{round_no} (x int null)"))
            for future in futures:
                result = future.result(timeout=60)
                if result.last is not None:
                    assert [list(r) for r in result.last.rows] == [[10]]
            stats = agent.server.lock_manager.stats()
            # both paths ran; any epoch race was retried, not corrupted
            assert stats["exclusive_batches"] > 0
            assert stats["shared_batches"] > 0
        finally:
            agent.close()

    def test_index_ddl_while_selecting(self):
        agent = pooled_agent(4)
        try:
            gateway = agent.gateway
            setup = gateway.open_session(USER, DATABASE)
            gateway.execute_for(
                setup, "create table idx_t (k int not null, v int null)")
            for n in range(20):
                gateway.execute_for(
                    setup, f"insert idx_t values ({n}, {n * 10})")
            readers = [gateway.open_session(USER, DATABASE)
                       for _ in range(3)]
            futures = [gateway.submit_for(
                r, f"select v from idx_t where k = {n}")
                for n in range(10) for r in readers]
            futures.append(gateway.submit_for(
                setup, "create index ix_k on idx_t (k)"))
            futures.extend(gateway.submit_for(
                r, f"select v from idx_t where k = {n}")
                for n in range(10, 20) for r in readers)
            for future in futures:
                future.result(timeout=60)
            result = gateway.execute_for(
                setup, "select v from idx_t where k = 7")
            assert [list(r) for r in result.last.rows] == [[70]]
        finally:
            agent.close()


class TestDeterministicOrdering:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_interleaved_clients_match_serial_schedule(self, seed,
                                                       plan_cache_mode):
        scenario = generate_scenario(seed)
        cache_on = plan_cache_mode == "plan-cache-on"
        serial = run_stack(scenario, plan_cache=cache_on)
        pooled = run_interleaved(scenario, clients=6, workers=4,
                                 seed=seed, plan_cache=cache_on)
        divergences = compare_stack_runs(
            serial, pooled, label_a="serial", label_b="interleaved")
        assert divergences == []

    def test_same_session_led_order_is_stable(self):
        agent = pooled_agent(4)
        try:
            conn = agent.connect(user=USER, database=DATABASE)
            conn.execute("create table led_t (x int null)")
            log = agent.start_detection_log()
            conn.execute(
                "create trigger t_led on led_t for insert\n"
                "event ledIns\n"
                "as print 'ledIns'")
            for n in range(10):
                conn.execute(f"insert led_t values ({n})")
            agent.stop_detection_log()
            seqs = [occ.seq for _n, _c, occ in log]
            assert seqs == sorted(seqs)
            assert len(seqs) == 10
        finally:
            agent.close()


class TestAdminSurface:
    def test_show_agent_sessions_rows(self):
        agent = pooled_agent(2)
        try:
            conn = agent.connect(user=USER, database=DATABASE)
            conn.execute("select 1")
            result = conn.execute("show agent sessions")
            rows = result.result_sets[0]
            assert rows.columns[:4] == [
                "session_id", "user", "database", "state"]
            assert len(rows.rows) == 1
        finally:
            agent.close()

    def test_show_agent_workers_reports_pool_and_locks(self):
        agent = pooled_agent(3)
        try:
            conn = agent.connect(user=USER, database=DATABASE)
            result = conn.execute("show agent workers")
            pool_rows, lock_rows = result.result_sets
            assert pool_rows.rows[0][1] == 3  # size
            stats = {name: value for name, value in lock_rows.rows}
            assert set(stats) == {
                "exclusive_batches", "shared_batches", "retries"}
        finally:
            agent.close()

    def test_set_agent_workers_validation(self, agent):
        conn = agent.connect(user=USER, database=DATABASE)
        bad = conn.execute("set agent workers nope")
        assert "thread count" in bad.result_sets[0].rows[0][0]
        negative = conn.execute("set agent workers -2")
        assert ">= 0" in negative.result_sets[0].rows[0][0]
