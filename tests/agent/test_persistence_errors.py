"""Regression: persistence failures name the statement that failed.

Historically ``PersistentManager.execute`` let the engine's error bubble
up bare, so a failure inside the multi-statement ``persist_trigger``
gave no hint *which* insert died.  Now every real failure is wrapped in
:class:`~repro.agent.errors.PersistenceError` carrying the statement.
"""

from __future__ import annotations

import pytest

from repro.agent import EcaAgent, PersistenceError
from repro.agent.persistence import PersistentManager
from repro.sqlengine import SqlServer

from .test_chaos_faults import STOCK_DDL


@pytest.fixture
def stack():
    server = SqlServer(default_database="sentineldb")
    agent = EcaAgent(server)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    yield server, agent, conn
    agent.close()


class TestPersistenceError:
    def test_failed_statement_is_named(self, stack):
        server, _agent, _conn = stack
        pm = PersistentManager(server)
        with pytest.raises(PersistenceError) as excinfo:
            pm.execute("sentineldb", "insert NoSuchTable values (1)")
        error = excinfo.value
        assert "insert NoSuchTable values (1)" in str(error)
        assert error.statement == "insert NoSuchTable values (1)"
        assert error.cause is error.__cause__
        assert error.cause is not None

    def test_long_statements_truncated_in_message_only(self, stack):
        server, _agent, _conn = stack
        pm = PersistentManager(server)
        sql = ("insert NoSuchTable values (" + ", ".join(
            f"'col{i}'" for i in range(40)) + ")")
        with pytest.raises(PersistenceError) as excinfo:
            pm.execute("sentineldb", sql)
        assert "..." in str(excinfo.value)
        assert len(str(excinfo.value)) < len(sql) + 120
        assert excinfo.value.statement == sql  # untruncated for tooling

    def test_persist_trigger_failure_names_the_insert(self, stack):
        server, agent, conn = stack
        # Sabotage exactly one of persist_trigger's two targets: swap in
        # a SysEcaAction table whose arity no insert can satisfy, so the
        # trigger-row insert succeeds and the action-row insert cannot.
        pm = agent.persistent_manager
        pm.ensure_system_tables("sentineldb")
        db = server.catalog.get_database("sentineldb")
        db.drop_table("dbo", "SysEcaAction")
        pm.execute("sentineldb",
                   "create table SysEcaAction (onlyColumn int null)")
        with pytest.raises(PersistenceError) as excinfo:
            conn.execute(
                "create trigger t1 on stock for insert event addStk as "
                "print 'one'")
        assert "insert SysEcaAction" in str(excinfo.value)
        assert "insert SysEcaTrigger" not in str(excinfo.value)

    def test_whitespace_collapsed_in_message(self, stack):
        server, _agent, _conn = stack
        pm = PersistentManager(server)
        with pytest.raises(PersistenceError) as excinfo:
            pm.execute("sentineldb", "insert NoSuchTable\n   values\t(1)")
        assert "insert NoSuchTable values (1)" in str(excinfo.value)
