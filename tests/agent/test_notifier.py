"""E-FIG15: the Event Notifier and its three channels (sync, threaded, UDP)."""

import pytest

from repro.agent import (
    EcaAgent,
    Notification,
    SynchronousChannel,
    ThreadedChannel,
    UdpChannel,
)
from repro.agent.errors import NotificationError
from repro.sqlengine import SqlServer


class TestNotificationCodec:
    def test_encode_decode_round_trip(self):
        original = Notification(
            user="sharma", table="stock", operation="insert",
            phase="begin", event_internal="sentineldb.sharma.addStk",
            v_no=7)
        assert Notification.decode(original.encode()) == original

    def test_paper_format_without_vno_accepted(self):
        # The paper's Figure 11 payload has no occurrence number.
        decoded = Notification.decode(
            "sharma stock insert begin sentineldb.sharma.addStk")
        assert decoded.v_no is None
        assert decoded.event_internal == "sentineldb.sharma.addStk"

    @pytest.mark.parametrize("bad", [
        "", "too few", "a b c d e f g", "u t op begin ev notanumber",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(NotificationError):
            Notification.decode(bad)


GOOD_SEGMENT = "sharma stock insert begin sentineldb.sharma.e1 1"


class TestDecodeBatchMalformed:
    """Coalesced datagrams with truncated or garbage segments must fail
    with the typed error — never decode into phantom notifications."""

    def test_single_segment_matches_decode(self):
        assert Notification.decode_batch(GOOD_SEGMENT) == [
            Notification.decode(GOOD_SEGMENT)]

    @pytest.mark.parametrize("bad", [
        "",                      # empty datagram
        ";",                     # separators only
        " ; ;  ; ",
        "u t op begin",          # truncated mid-segment
        f"{GOOD_SEGMENT}; u t op begin",          # good then truncated
        f"u t op; {GOOD_SEGMENT}",                # truncated then good
        f"{GOOD_SEGMENT}; u t op begin ev junk",  # garbage vNo
        "\x00\x01 garbage \x02",                  # binary noise
    ])
    def test_malformed_batch_raises_typed_error(self, bad):
        with pytest.raises(NotificationError):
            Notification.decode_batch(bad)

    def test_trailing_separator_is_not_a_phantom_segment(self):
        decoded = Notification.decode_batch(f"{GOOD_SEGMENT};")
        assert len(decoded) == 1

    def test_malformed_payload_raises_no_phantom_event(self, agent, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print 'x'")
        log = agent.start_detection_log()
        with pytest.raises(NotificationError):
            agent.notifier.on_payload(
                f"{GOOD_SEGMENT}; truncated segment")
        agent.stop_detection_log()
        # The bad segment rejects the whole datagram before any raise:
        # the LED never sees an occurrence, not even the good segment's.
        assert log == []
        assert agent.notifier.received == 0

    def test_unknown_event_in_batch_rejects_whole_payload(self, agent,
                                                          astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print 'x'")
        log = agent.start_detection_log()
        with pytest.raises(NotificationError):
            agent.notifier.on_payload(
                f"{GOOD_SEGMENT}; sharma stock insert begin no.such.ev 2")
        agent.stop_detection_log()
        assert log == []
        assert agent.notifier.rejected == 1


class TestSynchronousChannel:
    def test_delivers_inline(self):
        channel = SynchronousChannel()
        got = []
        channel.attach(got.append)
        channel.send("h", 1, "payload")
        assert got == ["payload"]
        assert channel.drain()

    def test_without_receiver_raises(self):
        channel = SynchronousChannel()
        with pytest.raises(NotificationError):
            channel.send("h", 1, "x")


class TestThreadedChannel:
    def test_async_delivery(self):
        channel = ThreadedChannel()
        got = []
        channel.attach(got.append)
        channel.start()
        for index in range(20):
            channel.send("h", 1, f"m{index}")
        assert channel.drain(timeout=5.0)
        channel.stop()
        assert got == [f"m{index}" for index in range(20)]

    def test_bad_payload_does_not_kill_worker(self):
        channel = ThreadedChannel()

        def receiver(payload):
            if payload == "bad":
                raise ValueError("boom")

        channel.attach(receiver)
        channel.start()
        channel.send("h", 1, "bad")
        channel.send("h", 1, "good")
        assert channel.drain(timeout=5.0)
        channel.stop()
        assert channel.processed_count == 2


class TestUdpChannel:
    def test_real_udp_round_trip(self):
        channel = UdpChannel(port=0)  # ephemeral port
        got = []
        channel.attach(got.append)
        channel.start()
        try:
            channel.send("127.0.0.1", channel.port, "over the wire")
            assert channel.drain(timeout=5.0)
        finally:
            channel.stop()
        assert got == ["over the wire"]

    def test_agent_end_to_end_over_udp(self):
        server = SqlServer(default_database="sentineldb")
        agent = EcaAgent(server, channel="udp", notify_port=0)
        # Rebind the generated triggers' target port to the bound one.
        agent.notify_port = agent.channel.port
        try:
            conn = agent.connect(user="sharma", database="sentineldb")
            conn.execute("create table stock (symbol varchar(10), price float)")
            conn.execute(
                "create trigger t1 on stock for insert event e1 "
                "DETACHED as print 'via udp'")
            conn.execute("insert stock values ('IBM', 1.0)")
            assert agent.drain(timeout=5.0)
            agent.action_handler.join_detached()
            records = [r for r in agent.action_handler.action_log
                       if "t1" in r.trigger_internal]
            assert len(records) == 1
            assert records[0].messages == ["via udp"]
        finally:
            agent.close()


class TestAgentNotifierIntegration:
    def test_threaded_channel_with_agent(self, server):
        agent = EcaAgent(server, channel="threaded")
        try:
            conn = agent.connect(user="sharma", database="sentineldb")
            conn.execute("create table t (a int)")
            conn.execute(
                "create trigger tr on t for insert event e1 "
                "DETACHED as print 'hi'")
            conn.execute("insert t values (1)")
            assert agent.drain(timeout=5.0)
            agent.action_handler.join_detached()
            assert agent.notifier.received == 1
        finally:
            agent.close()

    def test_vno_fallback_queries_persistent_manager(self, agent, astock):
        astock.execute(
            "create trigger t1 on stock for insert event e1 as print 'x'")
        astock.execute("insert stock values ('A', 1, 1)")
        # Simulate a paper-format notification without vNo: the notifier
        # falls back to SysPrimitiveEvent's counter.
        hits = []
        agent.led.add_rule(
            "probe", "sentineldb.sharma.e1",
            action=lambda occ: hits.append(occ.params.get("vNo")))
        agent.notifier.on_payload(
            "sharma stock insert begin sentineldb.sharma.e1")
        assert hits == [1]
