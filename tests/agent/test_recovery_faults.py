"""Recovery hardening: empty rule bases, dropped rules, idempotence.

Companions to tests/agent/test_chaos_faults.py: these cover the
*boring* recovery paths that a fault-hardened agent must still get
right — recovering nothing, recovering after a clean drop, recovering
twice, and completing a drop that crashed between its two deletes.
"""

from __future__ import annotations

import pytest

from repro.agent import EcaAgent
from repro.faults import (
    FaultPlan,
    POINT_PERSISTENCE_EXECUTE,
    SimulatedCrash,
)
from repro.sqlengine import SqlServer

from .test_chaos_faults import STOCK_DDL, seeded_server, syscount


class TestRecoveryWithZeroRules:
    def test_fresh_store_recovers_nothing(self):
        server = SqlServer(default_database="sentineldb")
        first = EcaAgent(server)          # creates the system tables
        first.close()
        restarted = EcaAgent(server)
        counts = restarted.recover()
        assert counts == {"primitive": 0, "composite": 0, "trigger": 0,
                          "repaired": 0}
        assert restarted.eca_triggers == {}
        assert restarted.primitive_events == {}
        assert restarted.led.rules == {}
        restarted.close()

    def test_plain_tables_without_rules_survive(self):
        server = SqlServer(default_database="sentineldb")
        agent = EcaAgent(server)
        conn = agent.connect(user="sharma", database="sentineldb")
        conn.execute(STOCK_DDL)
        agent.close()
        restarted = EcaAgent(server)
        conn = restarted.connect(user="sharma", database="sentineldb")
        result = conn.execute("insert stock values ('A', 1, 1)")
        assert result.rowcount == 1
        assert result.messages == []      # no phantom rules fired
        restarted.close()


class TestRecoveryAfterDrop:
    def test_cleanly_dropped_trigger_stays_dropped(self):
        server = seeded_server()
        agent = EcaAgent(server)
        conn = agent.connect(user="sharma", database="sentineldb")
        conn.execute("drop trigger t1")
        agent.close()

        restarted = EcaAgent(server)
        assert restarted.recover()["repaired"] == 0
        assert restarted.eca_triggers == {}
        assert syscount(server, "SysEcaTrigger") == 0
        assert syscount(server, "SysEcaAction") == 0
        conn = restarted.connect(user="sharma", database="sentineldb")
        result = conn.execute("insert stock values ('A', 1, 1)")
        assert "one" not in result.messages
        restarted.close()

    def test_drop_crashed_between_deletes_is_completed(self):
        server = seeded_server()
        plan = FaultPlan(seed=7)
        plan.inject(POINT_PERSISTENCE_EXECUTE, kind="crash",
                    match="delete SysEcaAction")
        agent = EcaAgent(server, faults=plan)
        conn = agent.connect(user="sharma", database="sentineldb")
        with pytest.raises(SimulatedCrash):
            conn.execute("drop trigger t1")
        # Torn state: the trigger row is gone, its action row is not.
        assert syscount(server, "SysEcaTrigger") == 0
        assert syscount(server, "SysEcaAction") == 1

        restarted = EcaAgent(server)      # repair completes the drop
        assert restarted.eca_triggers == {}
        assert syscount(server, "SysEcaAction") == 0
        conn = restarted.connect(user="sharma", database="sentineldb")
        result = conn.execute("insert stock values ('A', 1, 1)")
        assert "one" not in result.messages
        restarted.close()


class TestDoubleRecovery:
    def test_recover_twice_is_idempotent(self):
        server = seeded_server()
        restarted = EcaAgent(server)
        before_rules = dict(restarted.led.rules)
        for _ in range(2):
            counts = restarted.recover()
            assert counts == {"primitive": 0, "composite": 0,
                              "trigger": 0, "repaired": 0}
        assert restarted.led.rules.keys() == before_rules.keys()
        assert len(restarted.eca_triggers) == 1
        conn = restarted.connect(user="sharma", database="sentineldb")
        result = conn.execute("insert stock values ('A', 1, 1)")
        # the rule fired exactly once, not once per recovery pass
        assert result.messages.count("one") == 1
        restarted.close()

    def test_chain_of_restarts_preserves_rule_base(self):
        server = seeded_server()
        for generation in range(3):
            agent = EcaAgent(server)
            conn = agent.connect(user="sharma", database="sentineldb")
            result = conn.execute(
                f"insert stock values ('G{generation}', 1, 1)")
            assert result.messages.count("one") == 1
            agent.close()
        assert syscount(server, "SysEcaTrigger") == 1
        assert syscount(server, "SysEcaAction") == 1
