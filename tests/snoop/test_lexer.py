"""Unit tests for the Snoop lexer."""

import pytest

from repro.snoop.errors import SnoopParseError
from repro.snoop.lexer import (
    CARET,
    COLON,
    COMMA,
    EOF,
    LPAREN,
    NAME,
    PIPE,
    RPAREN,
    SEMI,
    STAR,
    TIME,
    tokenize,
)


def kinds(text):
    return [token.kind for token in tokenize(text)]


class TestNames:
    def test_simple_name(self):
        token = tokenize("addStk")[0]
        assert token.kind == NAME and token.value == "addStk"

    def test_dotted_internal_name(self):
        assert tokenize("sentineldb.sharma.addStk")[0].value == \
            "sentineldb.sharma.addStk"

    def test_colon_object_qualification(self):
        # Eventname:Objectname from the BNF.
        assert tokenize("addStk:stock1")[0].value == "addStk:stock1"

    def test_double_colon_app_qualification(self):
        # Eventname::AppId from the BNF.
        assert tokenize("addStk::siteA_app")[0].value == "addStk::siteA_app"

    def test_separator_needs_adjacent_name(self):
        # A detached dot is not absorbed into the name (and is invalid).
        with pytest.raises(SnoopParseError):
            tokenize("ev .")

    def test_names_with_digits_and_underscore(self):
        assert tokenize("ev_p10")[0].value == "ev_p10"


class TestOperatorsAndStructure:
    def test_symbolic_aliases(self):
        assert kinds("a | b ^ c ; d") == [
            NAME, PIPE, NAME, CARET, NAME, SEMI, NAME, EOF]

    def test_parens_comma_star(self):
        assert kinds("A*(x, y, z)") == [
            NAME, STAR, LPAREN, NAME, COMMA, NAME, COMMA, NAME, RPAREN, EOF]

    def test_time_string_token(self):
        token = tokenize("[1 hour 30 min]")[0]
        assert token.kind == TIME
        assert token.value == "1 hour 30 min"

    def test_time_then_colon_parameter(self):
        assert kinds("[5 sec]:price") == [TIME, COLON, NAME, EOF]

    def test_unterminated_time_string(self):
        with pytest.raises(SnoopParseError):
            tokenize("[5 sec")

    def test_unexpected_character(self):
        with pytest.raises(SnoopParseError):
            tokenize("a & b")

    def test_positions_recorded(self):
        tokens = tokenize("a ^ b")
        assert tokens[0].position == 0
        assert tokens[1].position == 2
        assert tokens[2].position == 4
