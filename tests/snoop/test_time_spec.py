"""Time-string parsing and rendering."""

import pytest

from repro.snoop import SnoopParseError, TimeSpec, parse_time_spec


class TestParsing:
    @pytest.mark.parametrize("text, seconds", [
        ("5 sec", 5.0),
        ("5sec", 5.0),
        ("1 min", 60.0),
        ("2 hours", 7200.0),
        ("1 day", 86400.0),
        ("500 ms", 0.5),
        ("1 hour 30 min", 5400.0),
        ("1 min 30 sec", 90.0),
        ("0.5 sec", 0.5),
        ("1 h", 3600.0),
    ])
    def test_accepted(self, text, seconds):
        assert parse_time_spec(text).seconds == seconds

    @pytest.mark.parametrize("bad", [
        "", "sec", "5", "5 fortnights", "five sec", "0 sec", "-1 sec",
    ])
    def test_rejected(self, bad):
        with pytest.raises(SnoopParseError):
            parse_time_spec(bad)


class TestTimeSpec:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            TimeSpec(0)

    @pytest.mark.parametrize("seconds, text", [
        (5.0, "[5 sec]"),
        (90.0, "[1 min 30 sec]"),
        (5400.0, "[1 hour 30 min]"),
        (3600.0, "[1 hour]"),
        (0.25, "[0.25 sec]"),
    ])
    def test_describe(self, seconds, text):
        assert TimeSpec(seconds).describe() == text

    def test_describe_round_trips(self):
        for seconds in (1.0, 61.0, 3661.0, 0.5, 7325.0):
            spec = TimeSpec(seconds)
            assert parse_time_spec(spec.describe()[1:-1]).seconds == seconds
