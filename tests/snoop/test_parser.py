"""Unit tests for the Snoop grammar (paper Section 2.1 BNF)."""

import pytest

from repro.snoop import (
    And,
    Aperiodic,
    AperiodicStar,
    EventName,
    Not,
    Or,
    Periodic,
    PeriodicStar,
    Plus,
    Seq,
    SnoopParseError,
    parse_event_expression,
)
from repro.snoop.ast import referenced_events, walk


class TestPrecedence:
    def test_or_binds_loosest(self):
        expr = parse_event_expression("a OR b AND c")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_and_binds_looser_than_seq(self):
        expr = parse_event_expression("a AND b SEQ c")
        assert isinstance(expr, And)
        assert isinstance(expr.right, Seq)

    def test_parentheses_override(self):
        expr = parse_event_expression("(a OR b) AND c")
        assert isinstance(expr, And)
        assert isinstance(expr.left, Or)

    def test_left_associativity(self):
        expr = parse_event_expression("a SEQ b SEQ c")
        assert isinstance(expr, Seq)
        assert isinstance(expr.left, Seq)

    def test_symbolic_aliases_match_keywords(self):
        assert parse_event_expression("a ^ b") == parse_event_expression("a AND b")
        assert parse_event_expression("a | b") == parse_event_expression("a OR b")
        assert parse_event_expression("a ; b") == parse_event_expression("a SEQ b")


class TestTernaryOperators:
    def test_not(self):
        expr = parse_event_expression("NOT(s, m, t)")
        assert isinstance(expr, Not)
        assert expr.initiator == EventName("s")
        assert expr.event == EventName("m")
        assert expr.terminator == EventName("t")

    def test_aperiodic(self):
        assert isinstance(parse_event_expression("A(a, b, c)"), Aperiodic)

    def test_aperiodic_star(self):
        assert isinstance(parse_event_expression("A*(a, b, c)"), AperiodicStar)

    def test_not_star_rejected(self):
        with pytest.raises(SnoopParseError):
            parse_event_expression("NOT*(a, b, c)")

    def test_ternary_with_nested_expressions(self):
        expr = parse_event_expression("A(a SEQ b, c OR d, e)")
        assert isinstance(expr.initiator, Seq)
        assert isinstance(expr.event, Or)

    def test_keyword_names_without_parens_are_events(self):
        # 'A' and 'P' alone are legal event names per the BNF.
        expr = parse_event_expression("A SEQ P")
        assert expr == Seq(EventName("A"), EventName("P"))

    def test_not_as_event_name(self):
        assert parse_event_expression("NOT OR x") == Or(
            EventName("NOT"), EventName("x"))


class TestTemporalOperators:
    def test_periodic(self):
        expr = parse_event_expression("P(open, [30 sec], close)")
        assert isinstance(expr, Periodic)
        assert expr.period.seconds == 30.0
        assert expr.parameter is None

    def test_periodic_with_parameter(self):
        expr = parse_event_expression("P(open, [5 min]:price, close)")
        assert expr.parameter == "price"

    def test_periodic_star(self):
        expr = parse_event_expression("P*(open, [1 hour], close)")
        assert isinstance(expr, PeriodicStar)
        assert expr.period.seconds == 3600.0

    def test_plus(self):
        expr = parse_event_expression("e PLUS [10 sec]")
        assert isinstance(expr, Plus)
        assert expr.delta.seconds == 10.0

    def test_plus_chains(self):
        expr = parse_event_expression("e PLUS [1 sec] PLUS [2 sec]")
        assert isinstance(expr, Plus)
        assert isinstance(expr.event, Plus)

    def test_plus_binds_tighter_than_seq(self):
        expr = parse_event_expression("a SEQ b PLUS [1 sec]")
        assert isinstance(expr, Seq)
        assert isinstance(expr.right, Plus)

    def test_periodic_requires_time(self):
        with pytest.raises(SnoopParseError):
            parse_event_expression("P(open, middle, close)")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "a AND", "OR b", "(a", "a)", "NOT(a, b)", "A(a, b, c, d)",
        "e PLUS", "P(a, [0 sec], b)",
    ])
    def test_rejected(self, bad):
        with pytest.raises(SnoopParseError):
            parse_event_expression(bad)


class TestDescribeRoundTrip:
    @pytest.mark.parametrize("text", [
        "a OR b", "a AND b", "a SEQ b", "NOT(a, b, c)", "A(a, b, c)",
        "A*(a, b, c)", "P(a, [10 sec], b)", "P*(a, [2 min], b)",
        "a PLUS [5 sec]", "((a SEQ b) OR c) AND NOT(d, e, f)",
        "P(a, [90 sec]:px, b)",
    ])
    def test_describe_reparses_to_same_tree(self, text):
        tree = parse_event_expression(text)
        assert parse_event_expression(tree.describe()) == tree


class TestAstHelpers:
    def test_walk_visits_all_nodes(self):
        expr = parse_event_expression("(a SEQ b) AND NOT(c, d, e)")
        names = [node.name for node in walk(expr) if isinstance(node, EventName)]
        assert names == ["a", "b", "c", "d", "e"]

    def test_referenced_events_dedupes(self):
        expr = parse_event_expression("a AND (a SEQ b)")
        assert referenced_events(expr) == ["a", "b"]

    def test_walk_covers_temporal(self):
        expr = parse_event_expression("P(a, [1 sec], b) OR (c PLUS [2 sec])")
        assert referenced_events(expr) == ["a", "b", "c"]
