"""Guard: tests must not couple to the wall clock.

Earlier revisions of the LED and trace suites asserted on
``time.time()`` deltas and slept to let timers fire, which made them
both slow and flaky.  Everything timing-related now runs on the
injectable :mod:`repro.led.clock` (``ManualClock``/``advance_time``) or
an injected ``clock=`` callable (obs spans, provenance).  This test
scans the suite so a wall-clock assertion cannot sneak back in.

Bounded *waits* (``drain(timeout=...)``, ``thread.join(timeout=...)``)
are fine — they bound latency without asserting on it.  The explicit
allowlist below names the only sanctioned direct uses.
"""

import re
from pathlib import Path

TESTS_DIR = Path(__file__).parent

#: (file, pattern) pairs that are intentionally exempt.
ALLOWED = {
    # Error-path check: advance_time must reject a non-manual clock.
    ("led/test_temporal.py", "SystemClock"),
    # This guard names the patterns it hunts.
    ("test_clock_hygiene.py", "time.time("),
    ("test_clock_hygiene.py", "time.sleep("),
    ("test_clock_hygiene.py", "SystemClock"),
    ("test_clock_hygiene.py", "perf_counter"),
}

BANNED = ("time.time(", "time.sleep(", "SystemClock", "perf_counter")


def test_no_wall_clock_in_tests():
    offenders = []
    for path in sorted(TESTS_DIR.rglob("*.py")):
        rel = path.relative_to(TESTS_DIR).as_posix()
        for number, line in enumerate(path.read_text().splitlines(), 1):
            if re.match(r"\s*#", line):
                continue
            for pattern in BANNED:
                if pattern in line and (rel, pattern) not in ALLOWED:
                    offenders.append(f"{rel}:{number}: {line.strip()}")
    assert offenders == [], (
        "wall-clock coupling in tests (route through repro.led.clock "
        "or an injected clock= callable):\n" + "\n".join(offenders))
