"""Tests for the telemetry exporter: schema, rotation, sampling."""

import json
import os

from repro.led import LocalEventDetector
from repro.led.rules import Context
from repro.obs import (
    MetricsRegistry,
    PipelineTrace,
    ProvenanceJournal,
    TelemetryExporter,
)


def _read_lines(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _populated_surfaces():
    metrics = MetricsRegistry()
    metrics.counter("hits", "hits", ("kind",)).labels("a").inc(3)
    metrics.histogram("latency").observe(0.25)
    trace = PipelineTrace(enabled=True)
    with trace.span("outer", "detail"):
        trace.emit("inner", "point")
    journal = ProvenanceJournal(enabled=True)
    led = LocalEventDetector()
    led.attach_observability(journal=journal)
    led.define_primitive("a")
    led.define_primitive("b")
    led.define_composite("ab", "a ^ b")
    led.add_rule("r", "ab", action=lambda occ: None,
                 context=Context.CHRONICLE)
    led.raise_event("a")
    led.raise_event("b")
    return metrics, trace, journal


class TestSnapshotSchema:
    def test_snapshot_writes_all_line_types(self, tmp_path):
        metrics, trace, journal = _populated_surfaces()
        path = str(tmp_path / "telemetry.jsonl")
        exporter = TelemetryExporter(path)
        lines_written = exporter.export_snapshot(
            metrics=metrics, trace=trace, journal=journal, label="test")
        lines = _read_lines(path)
        assert len(lines) == lines_written
        by_type = {}
        for line in lines:
            by_type.setdefault(line["type"], []).append(line)
        assert by_type["snapshot"][0]["label"] == "test"
        assert by_type["snapshot"][0]["lines"] == lines_written - 1
        metric_names = {line["name"] for line in by_type["metric"]}
        assert {"hits", "latency"} <= metric_names
        steps = {line["step"] for line in by_type["span"]}
        assert steps == {"outer", "inner"}
        kinds = {line["kind"] for line in by_type["provenance"]}
        assert {"raise", "detection", "firing"} <= kinds
        node_names = {line["name"] for line in by_type["node_stat"]}
        assert {"a", "b", "ab"} <= node_names
        for line in by_type["provenance"]:
            assert isinstance(line["parents"], list)

    def test_partial_surfaces_allowed(self, tmp_path):
        metrics, _trace, _journal = _populated_surfaces()
        path = str(tmp_path / "telemetry.jsonl")
        TelemetryExporter(path).export_snapshot(metrics=metrics)
        types = {line["type"] for line in _read_lines(path)}
        assert types == {"snapshot", "metric"}


class TestIncremental:
    def test_second_snapshot_exports_only_new_records(self, tmp_path):
        metrics, trace, journal = _populated_surfaces()
        path = str(tmp_path / "telemetry.jsonl")
        exporter = TelemetryExporter(path)
        exporter.export_snapshot(trace=trace, journal=journal)
        first = [line for line in _read_lines(path)
                 if line["type"] in ("span", "provenance")]
        exporter.export_snapshot(trace=trace, journal=journal)
        second = [line for line in _read_lines(path)
                  if line["type"] in ("span", "provenance")]
        # Nothing new happened: the second snapshot adds no span or
        # provenance lines.
        assert len(second) == len(first)
        trace.emit("later", "x")
        exporter.export_snapshot(trace=trace, journal=journal)
        third = [line for line in _read_lines(path) if line["type"] == "span"]
        assert [line["step"] for line in third][-1] == "later"
        assert len(third) == 3


class TestSampling:
    def test_stride_sampling_keeps_every_nth(self, tmp_path):
        trace = PipelineTrace(enabled=True)
        for index in range(20):
            trace.emit(f"step{index}")
        path = str(tmp_path / "telemetry.jsonl")
        exporter = TelemetryExporter(path, span_sample=0.25)
        exporter.export_snapshot(trace=trace)
        spans = [line for line in _read_lines(path) if line["type"] == "span"]
        assert len(spans) == 5
        assert all(line["seq"] % 4 == 0 for line in spans)

    def test_invalid_sample_rate_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            TelemetryExporter(str(tmp_path / "t.jsonl"), span_sample=0.0)
        with pytest.raises(ValueError):
            TelemetryExporter(str(tmp_path / "t.jsonl"),
                              provenance_sample=1.5)


class TestRotation:
    def test_rotates_by_size_and_caps_generations(self, tmp_path):
        metrics, _trace, _journal = _populated_surfaces()
        path = str(tmp_path / "telemetry.jsonl")
        exporter = TelemetryExporter(path, max_bytes=400, max_files=2)
        for _ in range(10):
            exporter.export_snapshot(metrics=metrics)
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        # Never more generations than max_files.
        assert not os.path.exists(path + ".3")
        # Every retained file is valid JSONL.
        for candidate in (path, path + ".1", path + ".2"):
            if os.path.exists(candidate):
                assert _read_lines(candidate)

    def test_rotation_disabled_with_zero_max_bytes(self, tmp_path):
        metrics, _trace, _journal = _populated_surfaces()
        path = str(tmp_path / "telemetry.jsonl")
        exporter = TelemetryExporter(path, max_bytes=0)
        for _ in range(5):
            exporter.export_snapshot(metrics=metrics)
        assert not os.path.exists(path + ".1")
        assert exporter.snapshots_written == 5


class TestHealthPlaneLines:
    def _slow_surfaces(self):
        from repro.obs import FlightRecorder, OpAccounting

        class _Session:
            session_id = 3
            user = "sharma"
            database = "sentineldb"

        accounting = OpAccounting()
        frame = accounting.begin(_Session())
        accounting.note_statement()
        recorder = FlightRecorder(threshold_ms=0.0)
        trace = PipelineTrace()
        journal = ProvenanceJournal()
        marks = recorder.marks(trace, journal)
        recorder.capture(
            kind="passthrough", statement="select 1", session=_Session(),
            duration=0.02, frame=frame, trace=trace, journal=journal,
            marks=marks)
        accounting.finish(frame, 0.02)
        with accounting.rule_scope("db.u.r"):
            pass
        return recorder, accounting

    def test_slow_op_and_op_totals_lines(self, tmp_path):
        recorder, accounting = self._slow_surfaces()
        path = str(tmp_path / "telemetry.jsonl")
        exporter = TelemetryExporter(path)
        exporter.export_snapshot(flightrec=recorder, accounting=accounting)
        lines = _read_lines(path)
        by_type = {}
        for line in lines:
            by_type.setdefault(line["type"], []).append(line)
        [slow] = by_type["slow_op"]
        assert slow["statement"] == "select 1"
        assert slow["counters"]["sql_statements"] == 1
        scopes = {line["scope"] for line in by_type["op_totals"]}
        assert scopes == {"session", "rule"}
        session_line = next(line for line in by_type["op_totals"]
                            if line["scope"] == "session")
        assert session_line["session_id"] == 3
        assert session_line["commands"] == 1

    def test_slow_op_lines_are_incremental(self, tmp_path):
        recorder, accounting = self._slow_surfaces()
        path = str(tmp_path / "telemetry.jsonl")
        exporter = TelemetryExporter(path)
        exporter.export_snapshot(flightrec=recorder, accounting=accounting)
        exporter.export_snapshot(flightrec=recorder, accounting=accounting)
        lines = _read_lines(path)
        slow = [line for line in lines if line["type"] == "slow_op"]
        # The same slow op is never exported twice...
        assert len(slow) == 1
        # ...while op_totals lines are full snapshots each time.
        totals = [line for line in lines if line["type"] == "op_totals"]
        assert len(totals) == 4
