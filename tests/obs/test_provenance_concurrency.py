"""Provenance under concurrency: multi-threaded overlapping composites.

Eight client threads raise interleaved ``a``/``b`` occurrences into four
AND composites — one per parameter context — while the journal records
everything.  The journal must stay sound: parent links never dangle
(every parent id resolves within the retained window or predates it),
and the per-(node, context) aggregates must match the LED's own firing
history exactly.
"""

import threading

from repro.led import LocalEventDetector
from repro.led.rules import Context
from repro.obs import ProvenanceJournal

THREADS = 8
RAISES_PER_THREAD = 50

CONTEXTS = [Context.RECENT, Context.CHRONICLE, Context.CONTINUOUS,
            Context.CUMULATIVE]


def _build():
    journal = ProvenanceJournal(enabled=True, capacity=2_000)
    led = LocalEventDetector(swallow_action_errors=True)
    led.attach_observability(journal=journal)
    led.define_primitive("a")
    led.define_primitive("b")
    for context in CONTEXTS:
        name = f"ab_{context.value.lower()}"
        led.define_composite(name, "a ^ b")
        led.add_rule(f"r_{context.value.lower()}", name,
                     action=lambda occ: None, context=context)
    return led, journal


def _hammer(led):
    barrier = threading.Barrier(THREADS)
    errors = []

    def worker(index):
        try:
            barrier.wait()
            for turn in range(RAISES_PER_THREAD):
                led.raise_event("a" if (index + turn) % 2 else "b",
                                {"thread": index, "turn": turn})
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class TestConcurrentProvenance:
    def test_parent_links_never_dangle(self):
        led, journal = _build()
        _hammer(led)
        records = journal.snapshot()
        assert records, "journal must have retained records"
        retained = {record.seq for record in records}
        oldest = records[0].seq
        for record in records:
            for parent in record.parents:
                assert parent < record.seq, (
                    f"record {record.seq} has a forward parent {parent}")
                assert parent in retained or parent < oldest, (
                    f"record {record.seq} links to {parent}, which is "
                    "neither retained nor older than the window")

    def test_consumption_matches_led_history(self):
        led, journal = _build()
        _hammer(led)
        for context in CONTEXTS:
            node_name = f"ab_{context.value.lower()}"
            rule_name = f"r_{context.value.lower()}"
            firings = [firing for firing in led.history
                       if firing.rule_name == rule_name]
            summary = journal.node_summary(node_name, context.value)
            assert summary is not None, f"no stats for {node_name}"
            assert summary["fires"] == len(firings), (
                f"{node_name}: journal says {summary['fires']} fires, "
                f"LED history has {len(firings)}")
            if context is Context.RECENT:
                expected_consumed = 0
            else:
                expected_consumed = sum(
                    len(firing.occurrence.flatten()) for firing in firings)
            assert summary["consumed"] == expected_consumed, (
                f"{node_name}: journal consumed {summary['consumed']}, "
                f"history implies {expected_consumed}")

    def test_primitive_fires_match_raise_totals(self):
        led, journal = _build()
        _hammer(led)
        total = journal.node_summary("a", "-")["fires"] + \
            journal.node_summary("b", "-")["fires"]
        assert total == THREADS * RAISES_PER_THREAD

    def test_rule_fire_counts_match_history(self):
        led, journal = _build()
        _hammer(led)
        for context in CONTEXTS:
            rule_name = f"r_{context.value.lower()}"
            firings = [firing for firing in led.history
                       if firing.rule_name == rule_name]
            assert led.rules[rule_name].fire_count == len(firings)
