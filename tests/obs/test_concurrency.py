"""Thread-safety: concurrent metric mutation and span emission.

The agent fires rules from notification-listener and detached-action
threads concurrently with client commands, so the registry must never
lose increments and the trace must never corrupt its buffer.
"""

import threading

from repro.obs import MetricsRegistry, PipelineTrace

THREADS = 8
ITERATIONS = 2_000


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on several threads, started near-simultaneously."""
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()
        worker(index)

    pool = [threading.Thread(target=run, args=(index,))
            for index in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=30)
        assert not thread.is_alive(), "worker thread deadlocked"


class TestMetricsConcurrency:
    def test_no_lost_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "hits", ("kind",))

        def worker(index):
            child = counter.labels(str(index % 2))
            for _ in range(ITERATIONS):
                child.inc()

        _hammer(worker)
        total = sum(metric.value() for _, metric in counter.children())
        assert total == THREADS * ITERATIONS

    def test_no_lost_histogram_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")

        def worker(index):
            child = histogram.labels()
            for _ in range(ITERATIONS):
                child.observe(1.0)

        _hammer(worker)
        summary = histogram.summary()
        assert summary.count == THREADS * ITERATIONS
        assert summary.mean == 1.0
        assert summary.max == 1.0

    def test_concurrent_label_creation_yields_one_child(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "hits", ("kind",))

        def worker(index):
            for _ in range(ITERATIONS):
                counter.labels("same").inc()

        _hammer(worker)
        assert len(counter.children()) == 1
        assert counter.labels("same").value() == THREADS * ITERATIONS

    def test_reads_while_writing_do_not_deadlock(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.histogram("latency").observe(1.0)
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                registry.as_dict()
                registry.render_text()

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            def worker(index):
                for _ in range(ITERATIONS):
                    registry.counter("hits").inc()
                    registry.histogram("latency").observe(0.5)
            _hammer(worker, threads=4)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert registry.counter("hits").value() == 1 + 4 * ITERATIONS


class TestTraceConcurrency:
    def test_no_lost_records_and_unique_monotone_seqs(self):
        trace = PipelineTrace(enabled=True, max_records=1_000_000)

        def worker(index):
            for step in range(ITERATIONS):
                with trace.span(f"outer-{index}"):
                    trace.emit(f"inner-{index}", str(step))

        _hammer(worker)
        assert len(trace.records) == THREADS * ITERATIONS * 2
        seqs = [record.seq for record in trace.records]
        assert len(set(seqs)) == len(seqs)

    def test_nesting_stays_per_thread(self):
        trace = PipelineTrace(enabled=True, max_records=1_000_000)

        def worker(index):
            for _ in range(200):
                with trace.span(f"outer-{index}") as outer:
                    with trace.span(f"inner-{index}") as inner:
                        assert inner.parent == outer.seq
                    assert trace.current() is outer
                assert trace.current() is None

        _hammer(worker)
        # Every inner span's parent is an outer span of the *same* thread.
        by_seq = {record.seq: record for record in trace.records}
        for record in trace.records:
            if record.step.startswith("inner-"):
                parent = by_seq[record.parent]
                assert parent.step == "outer-" + record.step.split("-")[1]

    def test_trimming_under_contention_stays_bounded(self):
        trace = PipelineTrace(enabled=True, max_records=50)

        def worker(index):
            for step in range(ITERATIONS):
                trace.emit(f"{index}:{step}")

        _hammer(worker)
        assert len(trace.records) <= 50
