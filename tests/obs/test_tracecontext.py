"""TraceContext propagation: encoding, activation, cross-thread
parenting, the bounded per-trace store, sampling windows, and histogram
exemplars."""

import threading

from repro.obs import MetricsRegistry
from repro.obs.tracing import PipelineTrace, TraceContext


class FakeClock:
    """Deterministic clock: each read advances by one tick."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def fresh_trace(**kwargs) -> PipelineTrace:
    return PipelineTrace(enabled=True, clock=FakeClock(), **kwargs)


class TestEncodeDecode:
    def test_roundtrip_with_baggage(self):
        ctx = TraceContext(trace_id="t000007", parent_span=3, depth=2,
                           baggage={"session_id": "9", "origin": "client"})
        token = ctx.encode()
        assert " " not in token and ";" not in token
        decoded = TraceContext.decode(token)
        assert decoded.trace_id == "t000007"
        assert decoded.parent_span == 3
        assert decoded.depth == 2
        assert decoded.baggage == {"session_id": "9", "origin": "client"}

    def test_roundtrip_root_context(self):
        ctx = TraceContext(trace_id="t000001")
        decoded = TraceContext.decode(ctx.encode())
        assert decoded.parent_span is None
        assert decoded.depth == 0
        assert decoded.baggage == {}

    def test_unsafe_baggage_dropped_from_wire(self):
        ctx = TraceContext(trace_id="t1", baggage={
            "ok": "fine", "bad": "has space", "worse": "semi;colon"})
        decoded = TraceContext.decode(ctx.encode())
        assert decoded.baggage == {"ok": "fine"}

    def test_malformed_tokens_decode_to_none(self):
        for token in ("", "garbage", "only:two", ":3:0", "t1:notint:0",
                      "t1:1:notint"):
            assert TraceContext.decode(token) is None


class TestActivation:
    def test_activated_context_parents_new_records(self):
        trace = fresh_trace()
        ctx = TraceContext(trace_id="t000042", parent_span=17, depth=3)
        with trace.activate(ctx):
            trace.emit("child")
        (record,) = trace.records
        assert record.trace_id == "t000042"
        assert record.parent == 17
        assert record.depth == 3

    def test_open_span_wins_over_activated_context(self):
        trace = fresh_trace()
        ctx = TraceContext(trace_id="t000042", parent_span=17, depth=3)
        with trace.activate(ctx):
            with trace.span("outer") as outer:
                trace.emit("leaf")
        outer_rec, leaf = trace.records
        assert outer_rec is outer
        assert leaf.parent == outer.seq
        assert leaf.trace_id == "t000042"  # inherited through the span

    def test_activate_none_is_noop(self):
        trace = fresh_trace()
        with trace.activate(None):
            trace.emit("free")
        assert trace.records[0].trace_id is None

    def test_activation_restores_previous_context(self):
        trace = fresh_trace()
        outer = TraceContext(trace_id="ta", parent_span=1, depth=1)
        inner = TraceContext(trace_id="tb", parent_span=2, depth=1)
        with trace.activate(outer):
            with trace.activate(inner):
                assert trace.active_trace_id() == "tb"
            assert trace.active_trace_id() == "ta"
        assert trace.active_trace_id() is None

    def test_cross_thread_handoff_links_one_tree(self):
        trace = fresh_trace()
        with trace.span("root") as root:
            root.trace_id = "t000001"
            ctx = trace.current_context()

        def worker():
            with trace.activate(ctx):
                trace.emit("remote")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        remote = trace.records[-1]
        assert remote.step == "remote"
        assert remote.parent == root.seq
        assert remote.trace_id == "t000001"
        assert remote.depth == root.depth + 1

    def test_reset_thread_drops_stack_and_context(self):
        trace = fresh_trace()
        ctx = TraceContext(trace_id="t1", parent_span=5, depth=2)
        trace._local.ctx = ctx
        trace._open("leaked", "")  # pushed, never closed
        trace.reset_thread()
        trace.emit("after")
        after = trace.records[-1]
        assert after.parent is None
        assert after.trace_id is None


class TestCommandContext:
    def test_mints_sequential_ids_with_session_baggage(self):
        trace = fresh_trace()

        class Session:
            session_id = 12
            user = "sharma"

        first = trace.command_context(Session())
        second = trace.command_context(None)
        assert first.trace_id == "t000001"
        assert second.trace_id == "t000002"
        assert first.baggage["session_id"] == 12
        assert first.baggage["user"] == "sharma"
        assert first.parent_span is None

    def test_disabled_trace_mints_nothing(self):
        trace = PipelineTrace(enabled=False)
        assert trace.command_context(None) is None


class TestSamplingWindow:
    def test_sample_next_arms_then_restores(self):
        trace = PipelineTrace(enabled=False, clock=FakeClock())
        trace.sample_next(2)
        assert trace.enabled
        assert trace.sampling_remaining() == 2
        assert trace.command_context(None) is not None
        assert trace.command_context(None) is not None
        assert trace.sampling_remaining() == 0
        # The window is spent but the *next* command performs the
        # restore, so the last sampled command finishes fully traced.
        assert trace.enabled
        assert trace.command_context(None) is None
        assert not trace.enabled

    def test_sample_next_preserves_already_enabled(self):
        trace = fresh_trace()
        trace.sample_next(1)
        trace.command_context(None)
        trace.command_context(None)
        assert trace.enabled  # restore puts back True, not False


class TestTraceStore:
    def test_spans_pinned_per_trace(self):
        trace = fresh_trace()
        ctx = trace.command_context(None)
        with trace.activate(ctx):
            with trace.span("root"):
                trace.emit("leaf")
        spans = trace.spans_for(ctx.trace_id)
        assert [s.step for s in spans] == ["root", "leaf"]
        assert trace.trace_ids() == [ctx.trace_id]
        assert trace.trace_count() == 1

    def test_unknown_trace_is_empty(self):
        trace = fresh_trace()
        assert trace.spans_for("t999999") == []

    def test_store_survives_ring_buffer_eviction(self):
        trace = fresh_trace(max_records=10)
        ctx = trace.command_context(None)
        with trace.activate(ctx):
            trace.emit("pinned")
        for index in range(100):  # churn the ring buffer
            trace.emit(str(index))
        assert [s.step for s in trace.spans_for(ctx.trace_id)] == ["pinned"]

    def test_oldest_trace_evicted_at_capacity(self):
        trace = fresh_trace()
        ids = []
        for _ in range(trace.MAX_TRACES + 5):
            ctx = trace.command_context(None)
            ids.append(ctx.trace_id)
            with trace.activate(ctx):
                trace.emit("x")
        assert trace.trace_count() == trace.MAX_TRACES
        assert trace.spans_for(ids[0]) == []
        assert trace.spans_for(ids[-1])

    def test_per_trace_span_cap(self):
        trace = fresh_trace()
        ctx = trace.command_context(None)
        with trace.activate(ctx):
            for index in range(trace.MAX_TRACE_SPANS + 50):
                trace.emit(str(index))
        assert len(trace.spans_for(ctx.trace_id)) == trace.MAX_TRACE_SPANS

    def test_clear_empties_store(self):
        trace = fresh_trace()
        ctx = trace.command_context(None)
        with trace.activate(ctx):
            trace.emit("x")
        trace.clear()
        assert trace.trace_count() == 0


class TestRecordSpan:
    def test_explicit_timestamps_and_parenting(self):
        trace = fresh_trace()
        ctx = TraceContext(trace_id="t1", parent_span=9, depth=1)
        with trace.activate(ctx):
            record = trace.record_span("queue-wait", start=2.0, end=5.0)
        assert record.start == 2.0 and record.end == 5.0
        assert record.duration == 3.0
        assert record.parent == 9
        assert record.trace_id == "t1"

    def test_disabled_returns_none(self):
        trace = PipelineTrace(enabled=False)
        assert trace.record_span("x", start=0.0, end=1.0) is None


class TestExemplars:
    def test_observe_with_trace_pins_exemplars(self):
        metrics = MetricsRegistry(enabled=True)
        hist = metrics.histogram("latency_seconds", "help")
        hist.observe_with_trace(0.004, "t000001")
        hist.observe_with_trace(0.004, "t000002")
        exemplars = hist.labels().exemplars()
        (items,) = exemplars.values()
        assert [trace_id for trace_id, _value in items] == [
            "t000001", "t000002"]

    def test_exemplars_bounded_last_n_per_bucket(self):
        metrics = MetricsRegistry(enabled=True)
        hist = metrics.histogram("latency_seconds", "help")
        metric = hist.labels()
        for index in range(10):
            metric.observe_with_trace(0.004, f"t{index:06d}")
        (items,) = metric.exemplars().values()
        assert len(items) == metric.EXEMPLARS_PER_BUCKET
        assert items[-1][0] == "t000009"

    def test_observe_with_trace_none_records_no_exemplar(self):
        metrics = MetricsRegistry(enabled=True)
        hist = metrics.histogram("latency_seconds", "help")
        hist.observe_with_trace(0.004, None)
        assert hist.labels().exemplars() == {}
        assert hist.summary().count == 1

    def test_render_text_emits_exemplar_syntax(self):
        metrics = MetricsRegistry(enabled=True)
        hist = metrics.histogram("latency_seconds", "help")
        hist.observe_with_trace(0.004, "t000123")
        text = metrics.render_text()
        assert '# {trace_id="t000123"}' in text
