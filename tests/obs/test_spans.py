"""Span tracing: nesting, trim policy, disabled mode, rendering."""

from repro.obs import PipelineTrace


class FakeClock:
    """Deterministic clock: each read advances by one tick."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpans:
    def test_emit_records_point_span(self):
        trace = PipelineTrace(enabled=True, clock=FakeClock())
        trace.emit("step", "detail")
        (record,) = trace.records
        assert record.step == "step"
        assert record.detail == "detail"
        assert record.start == record.end
        assert record.duration == 0.0
        assert record.parent is None
        assert record.depth == 0

    def test_span_times_the_with_body(self):
        clock = FakeClock()
        trace = PipelineTrace(enabled=True, clock=clock)
        with trace.span("outer"):
            pass
        (record,) = trace.records
        assert record.duration == 1.0  # one clock tick inside the body

    def test_nesting_links_parent_and_depth(self):
        trace = PipelineTrace(enabled=True, clock=FakeClock())
        with trace.span("outer"):
            trace.emit("point")
            with trace.span("inner"):
                trace.emit("leaf")
        outer, point, inner, leaf = trace.records
        assert point.parent == outer.seq and point.depth == 1
        assert inner.parent == outer.seq and inner.depth == 1
        assert leaf.parent == inner.seq and leaf.depth == 2
        assert outer.parent is None

    def test_span_opens_on_enter_not_at_call_time(self):
        trace = PipelineTrace(enabled=True, clock=FakeClock())
        pending = trace.span("later")
        trace.emit("first")
        with pending:
            pass
        assert trace.steps() == ["first", "later"]

    def test_current_tracks_innermost_open_span(self):
        trace = PipelineTrace(enabled=True, clock=FakeClock())
        assert trace.current() is None
        with trace.span("outer") as outer:
            assert trace.current() is outer
            with trace.span("inner") as inner:
                assert trace.current() is inner
            assert trace.current() is outer
        assert trace.current() is None

    def test_tree_reconstructs_nesting(self):
        trace = PipelineTrace(enabled=True, clock=FakeClock())
        with trace.span("root"):
            trace.emit("child")
        ((root, children),) = trace.tree()
        assert root.step == "root"
        assert [child.step for child, _ in children] == ["child"]

    def test_disabled_trace_records_nothing(self):
        trace = PipelineTrace(enabled=False)
        trace.emit("step")
        with trace.span("span"):
            pass
        assert trace.records == []

    def test_disabled_span_is_shared_singleton(self):
        trace = PipelineTrace(enabled=False)
        assert trace.span("a") is trace.span("b")

    def test_matching_and_tail(self):
        trace = PipelineTrace(enabled=True, clock=FakeClock())
        trace.emit("fig4.2:notified", "p1")
        trace.emit("fig3.4:passed")
        trace.emit("fig4.5:action")
        assert [r.step for r in trace.matching("fig4")] == [
            "fig4.2:notified", "fig4.5:action"]
        assert [r.step for r in trace.tail(2)] == [
            "fig3.4:passed", "fig4.5:action"]

    def test_format_is_indented_and_timed(self):
        trace = PipelineTrace(enabled=True, clock=FakeClock())
        with trace.span("outer", "d"):
            trace.emit("inner")
        text = trace.format()
        assert "outer" in text
        assert "  inner" in text
        assert "ms" in text


class TestTrimPolicy:
    def test_large_buffer_drops_oldest_tenth(self):
        trace = PipelineTrace(enabled=True, max_records=100,
                              clock=FakeClock())
        for index in range(101):
            trace.emit(str(index))
        # At the 101st emit the oldest ten records are dropped.
        assert len(trace.records) == 91
        assert trace.records[0].step == "10"
        assert trace.records[-1].step == "100"

    def test_tiny_buffer_stays_bounded(self):
        """Regression: ``max_records // 10 == 0`` for buffers of fewer
        than ten records used to trim nothing, growing without bound."""
        trace = PipelineTrace(enabled=True, max_records=5, clock=FakeClock())
        for index in range(1000):
            trace.emit(str(index))
        assert len(trace.records) <= 5
        assert trace.records[-1].step == "999"

    def test_max_records_one(self):
        trace = PipelineTrace(enabled=True, max_records=1, clock=FakeClock())
        for index in range(50):
            trace.emit(str(index))
        assert len(trace.records) == 1
        assert trace.records[0].step == "49"
