"""Unit tests for the per-operation accounting plane (``OpContext``)."""

import threading

from repro.obs import OpAccounting
from repro.obs.opcontext import OVERFLOW_KEY


class _Session:
    def __init__(self, session_id=1, user="sharma", database="sentineldb"):
        self.session_id = session_id
        self.user = user
        self.database = database


def test_command_frame_folds_into_session_totals():
    accounting = OpAccounting()
    frame = accounting.begin(_Session())
    accounting.note_statement()
    accounting.note_scan(10, 1, 2)
    accounting.note_rows(5)
    accounting.note_plan_cache(True)
    accounting.note_plan_cache(False)
    accounting.note_event()
    accounting.note_detection()
    accounting.finish(frame, 0.25)

    [totals] = accounting.top_sessions(10)
    assert totals.session_id == 1
    assert totals.user == "sharma"
    assert totals.commands == 1
    assert totals.sql_statements == 1
    assert totals.rows_scanned == 15
    assert totals.index_scans == 1
    assert totals.full_scans == 2
    assert totals.plan_cache_hits == 1
    assert totals.plan_cache_misses == 1
    assert totals.events_raised == 1
    assert totals.detections == 1
    assert totals.seconds == 0.25
    assert totals.max_seconds == 0.25


def test_rule_scope_charges_rule_and_enclosing_session():
    accounting = OpAccounting()
    frame = accounting.begin(_Session())
    with accounting.rule_scope("db.u.t_and"):
        accounting.note_statement()
        accounting.note_rows(7)
    accounting.finish(frame, 0.1)

    [rule] = accounting.top_rules(10)
    assert rule.rule == "db.u.t_and"
    assert rule.actions == 1
    assert rule.sql_statements == 1
    assert rule.rows_scanned == 7
    assert rule.action_errors == 0

    [session] = accounting.top_sessions(10)
    # The session pays for the rule it triggered: the rule's statements
    # and the action itself are charged to the enclosing command frame.
    assert session.sql_statements == 1
    assert session.rows_scanned == 7
    assert session.actions == 1
    assert session.action_seconds > 0


def test_rule_scope_records_errors_raised_and_marked():
    accounting = OpAccounting()
    try:
        with accounting.rule_scope("db.u.boom"):
            raise RuntimeError("action failed")
    except RuntimeError:
        pass
    scope = accounting.rule_scope("db.u.soft")
    with scope:
        scope.mark_error()  # swallowed failure, recorded explicitly

    by_name = {t.rule: t for t in accounting.top_rules(10)}
    assert by_name["db.u.boom"].action_errors == 1
    assert by_name["db.u.soft"].action_errors == 1
    assert accounting.action_errors_total == 2


def test_origin_classification():
    accounting = OpAccounting()
    assert accounting.origin() == "system"
    frame = accounting.begin(_Session())
    assert accounting.origin() == "client"
    assert not accounting.in_rule()
    with accounting.rule_scope("db.u.r"):
        assert accounting.origin() == "rule"
        assert accounting.in_rule()
    assert accounting.origin() == "client"
    accounting.finish(frame, 0.0)
    assert accounting.origin() == "system"


def test_disabled_accounting_is_inert():
    accounting = OpAccounting(enabled=False)
    frame = accounting.begin(_Session())
    assert frame is None
    scope = accounting.rule_scope("db.u.r")
    with scope:
        scope.mark_error()
    accounting.finish(frame, 1.0)
    assert accounting.top_sessions(10) == []
    assert accounting.top_rules(10) == []
    assert accounting.ops_total == 0
    assert accounting.actions_total == 0


def test_session_overflow_aggregates_under_other():
    accounting = OpAccounting(max_sessions=2)
    for session_id in range(4):
        frame = accounting.begin(_Session(session_id=session_id))
        accounting.finish(frame, 0.01)
    totals = accounting.top_sessions(10)
    assert len(totals) == 3  # two real rows + the overflow row
    overflow = {t.session_id: t for t in totals}[OVERFLOW_KEY]
    assert overflow.commands == 2


def test_rule_overflow_aggregates_under_other():
    accounting = OpAccounting(max_rules=1)
    for name in ("a", "b", "c"):
        with accounting.rule_scope(f"db.u.{name}"):
            pass
    totals = accounting.top_rules(10)
    assert len(totals) == 2
    overflow = {t.rule: t for t in totals}[OVERFLOW_KEY]
    assert overflow.actions == 2


def test_top_ordering_and_count():
    accounting = OpAccounting()
    for session_id, seconds in ((1, 0.1), (2, 0.5), (3, 0.3)):
        frame = accounting.begin(_Session(session_id=session_id))
        accounting.finish(frame, seconds)
    top = accounting.top_sessions(2)
    assert [t.session_id for t in top] == [2, 3]


def test_reset_clears_aggregates():
    accounting = OpAccounting()
    frame = accounting.begin(_Session())
    accounting.finish(frame, 0.1)
    with accounting.rule_scope("db.u.r"):
        pass
    accounting.reset()
    assert accounting.session_count() == 0
    assert accounting.rule_count() == 0
    assert accounting.ops_total == 0


def test_concurrent_attribution_is_exact():
    """Frames are per-thread: concurrent sessions never cross-charge."""
    accounting = OpAccounting()
    rounds, workers = 50, 8

    def work(session_id):
        session = _Session(session_id=session_id, user=f"u{session_id}")
        for _ in range(rounds):
            frame = accounting.begin(session)
            accounting.note_statement()
            accounting.note_rows(session_id)
            with accounting.rule_scope(f"db.u.r{session_id}"):
                accounting.note_statement()
            accounting.finish(frame, 0.001)

    threads = [threading.Thread(target=work, args=(n,))
               for n in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    sessions = {t.session_id: t for t in accounting.top_sessions(workers)}
    rules = {t.rule: t for t in accounting.top_rules(workers)}
    assert len(sessions) == workers
    for session_id in range(workers):
        totals = sessions[session_id]
        assert totals.commands == rounds
        assert totals.sql_statements == 2 * rounds  # own + rule-charged
        assert totals.rows_scanned == session_id * rounds
        assert totals.actions == rounds
        rule = rules[f"db.u.r{session_id}"]
        assert rule.actions == rounds
        assert rule.sql_statements == rounds
    assert accounting.ops_total == workers * rounds
    assert accounting.actions_total == workers * rounds
