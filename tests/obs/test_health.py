"""Unit tests for the watchdog rules and evaluator."""

import pytest

from repro.obs import (
    DEFAULT_HEALTH_RULES,
    HealthEvaluator,
    HealthRule,
)


def _rule(**overrides):
    base = dict(
        name="r", key="k", direction="ceiling", threshold=1.0,
        severity="degraded", description="d")
    base.update(overrides)
    return HealthRule(**base)


def test_rule_validates_direction_and_severity():
    with pytest.raises(ValueError):
        _rule(direction="sideways")
    with pytest.raises(ValueError):
        _rule(severity="ok")


def test_ceiling_breaches_above_threshold_only():
    evaluator = HealthEvaluator((_rule(),))
    assert evaluator.evaluate({"k": 1.0}).status == "ok"  # inclusive
    report = evaluator.evaluate({"k": 1.5})
    assert report.status == "degraded"
    [finding] = report.breaches()
    assert finding.rule == "r"
    assert finding.value == 1.5


def test_floor_breaches_below_threshold_only():
    evaluator = HealthEvaluator((_rule(direction="floor"),))
    assert evaluator.evaluate({"k": 1.0}).status == "ok"
    assert evaluator.evaluate({"k": 0.5}).status == "degraded"


def test_missing_key_reads_as_zero():
    evaluator = HealthEvaluator((_rule(),))
    report = evaluator.evaluate({})
    assert report.status == "ok"
    assert report.findings[0].value == 0.0


def test_activity_guard_skips_until_min_value():
    evaluator = HealthEvaluator(
        (_rule(direction="floor", min_key="n", min_value=100),))
    quiet = evaluator.evaluate({"k": 0.0, "n": 5})
    assert quiet.status == "ok"
    assert quiet.findings[0].status == "skipped"
    busy = evaluator.evaluate({"k": 0.0, "n": 100})
    assert busy.status == "degraded"
    assert busy.findings[0].status == "breach"


def test_status_folds_to_worst_severity():
    evaluator = HealthEvaluator((
        _rule(name="soft", severity="degraded"),
        _rule(name="hard", severity="critical", threshold=2.0),
    ))
    assert evaluator.evaluate({"k": 1.5}).status == "degraded"
    assert evaluator.evaluate({"k": 2.5}).status == "critical"
    # An ok rule after a critical one never lowers the fold.
    evaluator = HealthEvaluator((
        _rule(name="hard", severity="critical"),
        _rule(name="fine", threshold=100.0),
    ))
    assert evaluator.evaluate({"k": 5.0}).status == "critical"


def test_findings_are_deterministic_and_in_rule_order():
    evaluator = HealthEvaluator((
        _rule(name="a"), _rule(name="b"), _rule(name="c")))
    report = evaluator.evaluate({"k": 0.0})
    assert [f.rule for f in report.findings] == ["a", "b", "c"]
    again = evaluator.evaluate({"k": 0.0})
    assert report.as_dict() == again.as_dict()


def test_report_as_dict_round_trips_sample():
    evaluator = HealthEvaluator((_rule(),))
    payload = evaluator.evaluate({"k": 2.0, "extra": 9}).as_dict()
    assert payload["status"] == "degraded"
    assert payload["sample"] == {"k": 2.0, "extra": 9}
    assert payload["findings"][0]["status"] == "breach"


def test_default_rules_are_healthy_on_an_idle_sample():
    report = HealthEvaluator().evaluate({})
    assert report.status == "ok"
    assert report.breaches() == []


def test_default_rules_catch_the_known_failure_axes():
    evaluator = HealthEvaluator()
    critical = evaluator.evaluate({
        "actions_total": 20,
        "action_error_rate": 0.5,
        "notification_backlog": 20000,
    })
    assert critical.status == "critical"
    breached = {f.rule for f in critical.breaches()}
    assert "action-error-rate-critical" in breached
    assert "notification-backlog-critical" in breached

    degraded = evaluator.evaluate({
        "plan_cache_lookups": 500,
        "plan_cache_hit_rate": 0.2,
        "retry_exhausted_total": 3,
    })
    assert degraded.status == "degraded"
    breached = {f.rule for f in degraded.breaches()}
    assert breached == {"plan-cache-hit-rate", "retry-exhaustion"}


def test_queue_wait_ceiling_flags_a_saturated_pool():
    evaluator = HealthEvaluator()
    assert evaluator.evaluate({"queue_wait_p95_ms": 200.0}).status == "ok"
    report = evaluator.evaluate({"queue_wait_p95_ms": 350.0})
    assert report.status == "degraded"
    assert {f.rule for f in report.breaches()} == {"queue-wait"}


def test_default_rule_names_are_unique():
    names = [rule.name for rule in DEFAULT_HEALTH_RULES]
    assert len(names) == len(set(names))
