"""Unit tests for the provenance journal: linking, bounds, aggregates."""

import pytest

from repro.led import LocalEventDetector
from repro.led.rules import Context
from repro.obs import ProvenanceJournal
from repro.obs.provenance import (
    KIND_CONDITION,
    KIND_DETECTION,
    KIND_FIRING,
    KIND_RAISE,
)


def _detector(journal):
    led = LocalEventDetector()
    led.attach_observability(journal=journal)
    led.define_primitive("a")
    led.define_primitive("b")
    led.define_composite("ab", "a ^ b")
    led.add_rule("r_ab", "ab", action=lambda occ: None,
                 context=Context.CHRONICLE)
    return led


class TestDisabled:
    def test_disabled_journal_records_nothing(self):
        journal = ProvenanceJournal(enabled=False)
        led = _detector(journal)
        led.raise_event("a")
        led.raise_event("b")
        assert len(journal) == 0
        assert journal.node_stats() == []

    def test_detector_without_journal_still_works(self):
        led = LocalEventDetector()
        led.define_primitive("a")
        fired = []
        led.add_rule("r", "a", action=fired.append)
        led.raise_event("a")
        assert len(fired) == 1


class TestLineage:
    def test_detection_links_to_raises(self):
        journal = ProvenanceJournal(enabled=True)
        led = _detector(journal)
        led.raise_event("a")
        led.raise_event("b")
        records = journal.snapshot()
        kinds = [record.kind for record in records]
        assert kinds == [KIND_RAISE, KIND_RAISE, KIND_DETECTION, KIND_FIRING]
        raise_a, raise_b, detection, firing = records
        assert set(detection.parents) == {raise_a.seq, raise_b.seq}
        assert firing.parents == (detection.seq,)
        assert detection.context == "CHRONICLE"
        assert firing.detail == "immediate"

    def test_nested_composite_links_through_intermediate(self):
        journal = ProvenanceJournal(enabled=True)
        led = LocalEventDetector()
        led.attach_observability(journal=journal)
        led.define_primitive("a")
        led.define_primitive("b")
        led.define_primitive("c")
        led.define_composite("ab", "a ^ b")
        led.define_composite("abc", "ab ; c")
        led.add_rule("r", "abc", action=lambda occ: None,
                     context=Context.CHRONICLE)
        led.raise_event("a")
        led.raise_event("b")
        led.raise_event("c")
        detections = {
            record.name: record for record in journal.snapshot()
            if record.kind == KIND_DETECTION
        }
        assert set(detections) == {"ab", "abc"}
        # The outer SEQ links to the inner AND's detection record, not to
        # the flattened primitives.
        assert detections["ab"].seq in detections["abc"].parents

    def test_condition_records_only_for_real_conditions(self):
        journal = ProvenanceJournal(enabled=True)
        led = LocalEventDetector()
        led.attach_observability(journal=journal)
        led.define_primitive("a")
        led.add_rule("r_cond", "a", action=lambda occ: None,
                     condition=lambda occ: occ.params.get("go", False))
        led.add_rule("r_plain", "a", action=lambda occ: None)
        led.raise_event("a", {"go": False})
        conditions = [record for record in journal.snapshot()
                      if record.kind == KIND_CONDITION]
        assert [record.name for record in conditions] == ["r_cond"]
        assert conditions[0].detail == "failed"
        journal.clear()
        led.raise_event("a", {"go": True})
        conditions = [record for record in journal.snapshot()
                      if record.kind == KIND_CONDITION]
        assert [record.detail for record in conditions] == ["passed"]

    def test_lineage_walk_reaches_the_raise(self):
        journal = ProvenanceJournal(enabled=True)
        led = _detector(journal)
        led.raise_event("a")
        led.raise_event("b")
        firing = journal.snapshot()[-1]
        chain = journal.lineage(firing.seq)
        assert [record.kind for record in chain][0] == KIND_FIRING
        assert chain[-1].kind == KIND_RAISE


class TestBounds:
    def test_capacity_evicts_oldest_tenth(self):
        journal = ProvenanceJournal(enabled=True, capacity=50)
        for index in range(60):
            journal.append(KIND_RAISE, f"e{index}")
        assert len(journal) <= 50
        seqs = [record.seq for record in journal.snapshot()]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 60

    def test_parent_ids_always_point_backwards(self):
        journal = ProvenanceJournal(enabled=True, capacity=30)
        led = _detector(journal)
        for _ in range(40):
            led.raise_event("a")
            led.raise_event("b")
        for record in journal.snapshot():
            for parent in record.parents:
                assert parent < record.seq

    def test_rule_fire_count_maintained_when_journaled(self):
        journal = ProvenanceJournal(enabled=True)
        led = _detector(journal)
        led.raise_event("a")
        led.raise_event("b")
        assert led.rules["r_ab"].fire_count == 1
        assert led.rules["r_ab"].last_fired_at is not None

    def test_rule_fire_count_untouched_when_disabled(self):
        led = _detector(ProvenanceJournal(enabled=False))
        led.raise_event("a")
        led.raise_event("b")
        assert led.rules["r_ab"].fire_count == 0


class TestNodeStats:
    def test_fires_and_consumption_per_context(self):
        journal = ProvenanceJournal(enabled=True)
        led = LocalEventDetector()
        led.attach_observability(journal=journal)
        led.define_primitive("a")
        led.define_primitive("b")
        led.define_composite("ab", "a ^ b")
        led.add_rule("r", "ab", action=lambda occ: None,
                     context=Context.CHRONICLE)
        led.raise_event("a")
        led.raise_event("b")
        led.raise_event("a")
        led.raise_event("b")
        assert journal.node_summary("a", "-")["fires"] == 2
        assert journal.node_summary("b", "-")["fires"] == 2
        summary = journal.node_summary("ab", "CHRONICLE")
        assert summary["fires"] == 2
        # CHRONICLE consumes both constituents of each detection.
        assert summary["consumed"] == 4
        assert summary["latency_count"] >= 2

    def test_recent_context_consumes_nothing(self):
        journal = ProvenanceJournal(enabled=True)
        led = LocalEventDetector()
        led.attach_observability(journal=journal)
        led.define_primitive("a")
        led.define_primitive("b")
        led.define_composite("ab", "a ^ b")
        led.add_rule("r", "ab", action=lambda occ: None,
                     context=Context.RECENT)
        led.raise_event("a")
        led.raise_event("b")
        led.raise_event("b")
        summary = journal.node_summary("ab", "RECENT")
        assert summary["fires"] == 2
        assert summary["consumed"] == 0

    def test_unknown_node_summary_is_none(self):
        journal = ProvenanceJournal(enabled=True)
        assert journal.node_summary("ghost", "-") is None

    def test_clear_resets_everything(self):
        journal = ProvenanceJournal(enabled=True)
        led = _detector(journal)
        led.raise_event("a")
        led.raise_event("b")
        journal.clear()
        assert len(journal) == 0
        assert journal.node_stats() == []
        assert journal.enabled

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ProvenanceJournal(capacity=0)
