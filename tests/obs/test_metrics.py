"""The metrics registry: percentile math, families, exporters, no-op mode."""

import pytest

from repro.obs import (
    HistogramSummary,
    MetricsRegistry,
    percentile,
    summarize,
)


class TestPercentile:
    def test_known_distribution_1_to_100(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_small_sample_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 25) == 10.0
        assert percentile(values, 50) == 20.0
        assert percentile(values, 75) == 30.0
        assert percentile(values, 76) == 40.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSummarize:
    def test_known_distribution(self):
        summary = summarize([float(v) for v in range(1, 101)])
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == 50.0
        assert summary.median == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.max == 100.0

    def test_empty_is_zeroed(self):
        summary = summarize([])
        assert summary == HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_as_dict_round_trip(self):
        d = summarize([1.0, 2.0, 3.0]).as_dict()
        assert set(d) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert d["count"] == 3


class TestCounterAndGauge:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", "hits", ("kind",))
        family.labels("a").inc()
        family.labels("a").inc(2)
        family.labels("b").inc()
        assert family.labels("a").value() == 3
        assert family.labels("b").value() == 1

    def test_unlabeled_family_proxies_to_single_child(self):
        registry = MetricsRegistry()
        family = registry.counter("total")
        family.inc()
        family.inc()
        assert family.value() == 2

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_label_arity_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", "hits", ("kind",))
        with pytest.raises(ValueError):
            family.labels()
        with pytest.raises(ValueError):
            family.labels("a", "b")


class TestHistogram:
    def test_percentiles_on_known_distribution(self):
        # Unit-width buckets make the interpolated estimates exact.
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency", buckets=tuple(float(v) for v in range(1, 101)))
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.max == 100.0

    def test_default_buckets_estimate_within_one_bucket(self):
        from repro.obs.metrics import bucket_bounds

        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        samples = [v / 1000.0 for v in range(1, 101)]  # 1ms .. 100ms
        for value in samples:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary.count == 100
        assert summary.max == 0.1
        for q, exact in ((50, 0.050), (95, 0.095), (99, 0.099)):
            lower, upper = bucket_bounds(exact)
            estimate = histogram.quantile(q)
            assert abs(estimate - exact) <= upper - lower
            assert estimate <= summary.max

    def test_empty_histogram_summary_is_zeroed(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        assert histogram.summary().count == 0


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", "hits", ("kind",))
        again = registry.counter("hits", "hits", ("kind",))
        assert first is again

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(ValueError):
            registry.gauge("hits")

    def test_label_schema_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits", "hits", ("kind",))
        with pytest.raises(ValueError):
            registry.counter("hits", "hits", ("other",))

    def test_disabled_registry_mutators_are_no_ops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("hits")
        gauge = registry.gauge("depth")
        histogram = registry.histogram("latency")
        counter.inc()
        gauge.set(5)
        histogram.observe(1.0)
        assert counter.value() == 0
        assert gauge.value() == 0.0
        assert histogram.summary().count == 0

    def test_enable_toggle_takes_effect_immediately(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("hits")
        counter.inc()
        registry.enabled = True
        counter.inc()
        assert counter.value() == 1

    def test_reset_zeroes_but_keeps_families(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", "hits", ("kind",))
        family.labels("a").inc(5)
        registry.reset()
        assert registry.get("hits") is family
        assert family.labels("a").value() == 0

    def test_as_dict_export(self):
        registry = MetricsRegistry()
        registry.counter("hits", "total hits", ("kind",)).labels("a").inc(3)
        registry.histogram("latency").observe(2.0)
        exported = registry.as_dict()
        assert exported["hits"]["type"] == "counter"
        assert exported["hits"]["help"] == "total hits"
        assert exported["hits"]["values"] == [
            {"labels": {"kind": "a"}, "value": 3}]
        latency = exported["latency"]["values"][0]["value"]
        assert latency["count"] == 1
        assert latency["max"] == 2.0

    def test_render_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("hits", "total hits", ("kind",)).labels("a").inc(3)
        registry.histogram("latency").observe(2.0)
        text = registry.render_text()
        assert "# HELP hits total hits" in text
        assert "# TYPE hits counter" in text
        assert 'hits{kind="a"} 3' in text
        assert "latency_count 1" in text
        assert "latency_p99 2" in text

    def test_render_text_escapes_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", "operations", ("detail",))
        family.labels('back\\slash "quoted"\nnewline').inc(2)
        text = registry.render_text()
        assert (r'ops{detail="back\\slash \"quoted\"\nnewline"} 2'
                in text.splitlines())
        # The escaped line must stay on one physical line.
        for line in text.splitlines():
            if line.startswith("ops{"):
                assert "\n" not in line

    def test_render_text_escapes_help_text(self):
        registry = MetricsRegistry()
        registry.counter("ops", 'multi\nline \\ help').inc()
        text = registry.render_text()
        assert r"# HELP ops multi\nline \\ help" in text.splitlines()

    def test_render_text_deterministic_sorted_order(self):
        def build(order):
            registry = MetricsRegistry()
            for name in order:
                family = registry.counter(name, f"{name} help", ("k",))
                for value in ("b", "a", "c"):
                    family.labels(value).inc()
            return registry.render_text()

        first = build(["zeta", "alpha", "mid"])
        second = build(["mid", "zeta", "alpha"])
        assert first == second
        names = [line.split()[2] for line in first.splitlines()
                 if line.startswith("# TYPE")]
        assert names == sorted(names)
        # Children render sorted by label value within each family.
        values = [line.split('"')[1] for line in first.splitlines()
                  if line.startswith('alpha{')]
        assert values == ["a", "b", "c"]
