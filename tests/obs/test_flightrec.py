"""Unit tests for the slow-op flight recorder."""

import pytest

from repro.obs import FlightRecorder, OpAccounting, PipelineTrace
from repro.obs import ProvenanceJournal
from repro.obs.flightrec import MAX_SPANS, MAX_STATEMENT


class _Session:
    session_id = 7
    user = "sharma"
    database = "sentineldb"


def _capture(recorder, trace=None, journal=None, statement="select 1",
             frame=None, duration=0.05):
    trace = trace if trace is not None else PipelineTrace()
    journal = journal if journal is not None else ProvenanceJournal()
    marks = recorder.marks(trace, journal)
    return recorder.capture(
        kind="passthrough", statement=statement, session=_Session(),
        duration=duration, frame=frame, trace=trace, journal=journal,
        marks=marks)


def test_disarmed_by_default_and_armed_by_threshold():
    recorder = FlightRecorder()
    assert not recorder.armed
    recorder.threshold_ms = 10.0
    assert recorder.armed
    recorder.threshold_ms = None
    assert not recorder.armed


def test_capacity_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_ring_evicts_oldest():
    recorder = FlightRecorder(capacity=3, threshold_ms=0.0)
    for index in range(5):
        _capture(recorder, statement=f"select {index}")
    assert len(recorder) == 3
    assert recorder.captured_total == 5
    statements = [record.statement for record in recorder.snapshot()]
    assert statements == ["select 2", "select 3", "select 4"]
    tail = recorder.tail(2)
    assert [r.statement for r in tail] == ["select 3", "select 4"]
    assert recorder.tail(0) == []


def test_capture_slices_trace_and_journal_since_marks():
    recorder = FlightRecorder(threshold_ms=0.0)
    trace = PipelineTrace(enabled=True)
    journal = ProvenanceJournal(enabled=True)
    trace.emit("before", "not captured")
    journal.append("event", "before")
    marks = recorder.marks(trace, journal)
    with trace.span("outer", "mine"):
        trace.emit("inner")
    journal.append("event", "mine")
    record = recorder.capture(
        kind="eca", statement="insert stock", session=_Session(),
        duration=0.02, frame=None, trace=trace, journal=journal,
        marks=marks)
    assert [span["step"] for span in record.spans] == ["outer", "inner"]
    assert [prov["name"] for prov in record.provenance] == ["mine"]
    assert record.duration_ms == 20.0
    assert record.session_id == 7
    assert record.user == "sharma"


def test_capture_caps_span_slice():
    recorder = FlightRecorder(threshold_ms=0.0)
    trace = PipelineTrace(enabled=True)
    marks = recorder.marks(trace, ProvenanceJournal())
    for index in range(MAX_SPANS + 50):
        trace.emit("step", str(index))
    record = recorder.capture(
        kind="passthrough", statement="x", session=_Session(),
        duration=0.01, frame=None, trace=trace,
        journal=ProvenanceJournal(), marks=marks)
    assert len(record.spans) == MAX_SPANS


def test_statement_truncated():
    recorder = FlightRecorder(threshold_ms=0.0)
    record = _capture(recorder, statement="x" * (MAX_STATEMENT + 100))
    assert len(record.statement) == MAX_STATEMENT


def test_counters_come_from_the_frame():
    recorder = FlightRecorder(threshold_ms=0.0)
    accounting = OpAccounting()
    frame = accounting.begin(_Session())
    accounting.note_statement()
    accounting.note_rows(42)
    record = _capture(recorder, frame=frame)
    accounting.finish(frame, 0.01)
    assert record.counters["sql_statements"] == 1
    assert record.counters["rows_scanned"] == 42
    payload = record.as_dict()
    assert payload["counters"]["rows_scanned"] == 42
    assert payload["kind"] == "passthrough"


def test_clear_empties_ring():
    recorder = FlightRecorder(threshold_ms=0.0)
    _capture(recorder)
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.captured_total == 1  # lifetime counter survives
