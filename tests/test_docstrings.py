"""The docstring CI gate passes on the declared public API surface."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docstrings.py"


def run_checker(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), *args],
        capture_output=True, text=True, cwd=REPO_ROOT)


def test_public_api_surface_is_documented():
    result = run_checker()
    assert result.returncode == 0, result.stdout + result.stderr


def test_checker_flags_missing_docstrings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Module docstring present."""\n'
        "class Public:\n"
        "    def method(self):\n"
        "        return 1\n")
    result = run_checker(str(bad))
    assert result.returncode == 1
    assert "class Public docstring missing" in result.stdout
    assert "def Public.method docstring missing" in result.stdout


def test_checker_ignores_private_and_nested(tmp_path):
    ok = tmp_path / "ok.py"
    ok.write_text(
        '"""Module docstring present."""\n'
        "def _helper():\n"
        "    return 1\n"
        "def public():\n"
        '    """Documented; the closure below is implementation."""\n'
        "    def inner():\n"
        "        return 2\n"
        "    return inner\n")
    result = run_checker(str(ok))
    assert result.returncode == 0, result.stdout
