"""Quickstart: turn a passive SQL engine into an active database.

Creates the paper's mediated stack (client -> ECA Agent -> SQL server),
defines a primitive-event rule with the extended trigger syntax, and
shows the rule firing transparently when ordinary SQL runs.

Run:  python examples/quickstart.py
"""

from repro import ActiveDatabase


def main() -> None:
    # One call builds the Virtual Active SQL Server: a passive engine
    # plus the ECA Agent mediating every client command.
    adb = ActiveDatabase(database="sentineldb", user="sharma")

    # Plain SQL passes straight through the agent to the server.
    adb.execute(
        "create table stock ("
        "symbol varchar(10) not null, price float null, qty int null)")

    # The paper's Example 1: a named primitive event plus a trigger, in
    # the extended `create trigger ... event ...` syntax (Figure 9).
    adb.execute("""
        create trigger t_addStk on stock for insert
        event addStk
        as print 'trigger t_addStk on primitive event addStk occurs'
        select * from stock
    """)

    # An ordinary insert now raises the event; the rule's action runs
    # inside the SQL server and its output comes back to this client.
    result = adb.execute("insert stock values ('IBM', 101.5, 10)")
    print("--- messages returned to the client ---")
    for message in result.messages:
        print(" ", message)
    print("--- result sets returned to the client ---")
    for result_set in result.result_sets:
        print(result_set.format_table())

    # The same rule can be expressed without hand-written syntax:
    adb.define_rule(
        "t_bigBuy",
        event="bigBuy",
        on_table="stock",
        operation="insert",
        action="print 'large position opened!'",
    )
    result = adb.execute("insert stock values ('MSFT', 55.0, 5000)")
    print("--- after the second rule ---")
    for message in result.messages:
        print(" ", message)

    # Everything the agent created is ordinary, queryable database state.
    print("--- the agent's persistent catalog (SysPrimitiveEvent) ---")
    catalog = adb.execute(
        "select eventName, tableName, operation, vNo "
        "from dbo.SysPrimitiveEvent order by eventName")
    print(catalog.last.format_table())

    adb.close()


if __name__ == "__main__":
    main()
