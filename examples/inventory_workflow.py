"""Computer-integrated manufacturing / workflow control example.

Another of the paper's motivating applications: an inventory database
where ECA rules implement the reorder workflow —

- conditions on rules (only reorder when stock is actually low);
- DEFERRED coupling: audit entries materialize only when the enclosing
  transaction commits, and vanish if it rolls back;
- DETACHED coupling: a slow notification job runs on its own worker
  thread without delaying the triggering client.

Run:  python examples/inventory_workflow.py
"""

from repro import ActiveDatabase


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    adb = ActiveDatabase(database="factory", user="mrp")
    adb.execute(
        "create table inventory ("
        "part varchar(20) not null, on_hand int not null, "
        "reorder_point int not null)")
    adb.execute("create table reorders (part varchar(20), quantity int)")
    adb.execute("create table audit (entry varchar(60))")

    adb.execute(
        "insert inventory values ('gear', 100, 20), ('shaft', 50, 10)")

    banner("Reorder rule: fires on every withdrawal, acts conditionally")
    # The action itself checks the situation (condition-in-action, the
    # standard relational idiom for the C of ECA).
    adb.execute("""
        create trigger t_withdraw on inventory for update
        event stockChanged
        as
        insert reorders
        select part, reorder_point * 3
        from inventory.inserted
        where on_hand < reorder_point
        print 'withdrawal processed'
    """)
    adb.execute("update inventory set on_hand = on_hand - 30 where part = 'gear'")
    print("after normal withdrawal:",
          adb.execute("select * from reorders").last.rows)
    adb.execute("update inventory set on_hand = on_hand - 60 where part = 'gear'")
    print("after draining withdrawal:",
          adb.execute("select * from reorders").last.rows)

    banner("DEFERRED coupling: audit only on commit")
    adb.execute("""
        create trigger t_audit
        event stockChanged DEFERRED
        as insert audit values ('stock changed (committed)')
    """)
    print("-- transaction that rolls back leaves no audit entry")
    adb.execute("begin tran")
    adb.execute("update inventory set on_hand = on_hand - 1 where part = 'shaft'")
    adb.execute("rollback")
    print("   audit rows:", adb.execute("select * from audit").last.rows)
    print("-- committed transaction flushes the deferred action")
    adb.execute("begin tran")
    adb.execute("update inventory set on_hand = on_hand - 1 where part = 'shaft'")
    adb.execute("commit")
    print("   audit rows:", adb.execute("select * from audit").last.rows)

    banner("DETACHED coupling: slow job on a worker thread")
    adb.execute("create table notifications (body varchar(60))")
    adb.execute("""
        create trigger t_notify
        event stockChanged DETACHED
        as insert notifications values ('supplier notified')
    """)
    result = adb.execute(
        "update inventory set on_hand = on_hand - 1 where part = 'gear'")
    print("client saw only:", result.messages)
    adb.agent.action_handler.join_detached()
    print("worker completed:",
          adb.execute("select * from notifications").last.rows)

    banner("The reorder pipeline end to end")
    print(adb.execute(
        "select part, on_hand, reorder_point from inventory order by part"
    ).last.format_table())
    print()
    print(adb.execute(
        "select part, quantity from reorders order by part"
    ).last.format_table())

    adb.close()


if __name__ == "__main__":
    main()
