"""The paper's running example: commodity/stock trading monitoring.

Reproduces Example 1 (primitive event ``addStk``) and Example 2 (the
composite event ``addDel = delStk ^ addStk`` in RECENT context) exactly
as Section 5 describes, then extends the scenario with the other
parameter contexts and a portfolio-risk rule spanning two tables —
something native triggers cannot express (Section 2.2).

Run:  python examples/stock_trading.py
"""

from repro import ActiveDatabase


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def show(result) -> None:
    for message in result.messages:
        print("  msg:", message)
    for result_set in result.result_sets:
        print("  ", "\n   ".join(result_set.format_table().splitlines()))


def main() -> None:
    adb = ActiveDatabase(database="sentineldb", user="sharma")
    adb.execute(
        "create table stock ("
        "symbol varchar(10) not null, price float null, qty int null)")

    banner("Example 1: primitive event trigger (paper Section 5.2)")
    adb.execute("""
        create trigger t_addStk on stock for insert
        event addStk
        as print ' trigger t_addStk on primitive event addStk occurs'
        select * from stock
    """)
    show(adb.execute("insert stock values ('IBM', 101.5, 10)"))

    banner("Example 2: composite event addDel = delStk ^ addStk (5.3)")
    adb.execute("""
        create trigger t_delStk on stock for delete
        event delStk
        as print ' trigger t_delStk on primitive event delStk occurs'
    """)
    adb.execute("""
        create trigger t_and
        event addDel = delStk ^ addStk
        RECENT
        as
        print 'trigger t_and on composite event addDel = delStk ^ addStk'
        select symbol, price from stock.inserted
    """)
    show(adb.execute("delete stock where symbol = 'IBM'"))
    print("  -- AND completes on the next insert:")
    show(adb.execute("insert stock values ('MSFT', 60.0, 5)"))

    banner("Parameter contexts on the same composite event (Section 5.6)")
    adb.execute("""
        create trigger t_and_cumulative
        event addDelAll = delStk ^ addStk
        CUMULATIVE
        as
        print 'CUMULATIVE firing - every participating insert:'
        select symbol, price from stock.inserted
    """)
    adb.execute("insert stock values ('ORCL', 25.0, 40)")
    adb.execute("insert stock values ('SUNW', 50.0, 5)")
    print("  -- two inserts accumulated; the delete completes both events:")
    show(adb.execute("delete stock where symbol = 'MSFT'"))

    banner("A rule spanning two tables (impossible with native triggers)")
    adb.execute("create table orders (id int, symbol varchar(10), qty int)")
    adb.execute("""
        create trigger t_newOrder on orders for insert
        event newOrder
        as print ' order placed'
    """)
    adb.execute("""
        create trigger t_risky
        event riskyFlow = newOrder AND addStk
        as print 'RISK DESK: order and position change in the same window'
    """)
    adb.execute("insert orders values (1, 'IBM', 500)")
    show(adb.execute("insert stock values ('IBM', 99.0, 500)"))

    banner("The agent's persistent rule base (native tables, plain SQL)")
    print(adb.execute(
        "select eventName, tableName, operation, vNo "
        "from dbo.SysPrimitiveEvent order by eventName").last.format_table())
    print()
    print(adb.execute(
        "select eventName, eventDescribe, context "
        "from dbo.SysCompositeEvent order by eventName").last.format_table())

    adb.close()


if __name__ == "__main__":
    main()
