"""Network management: the paper's first motivating application.

Shows the temporal and interval operators on an alarm database:

- ``NOT(probe, heartbeat, probe)`` — a probe-to-probe interval with no
  heartbeat means a dead link;
- ``A*(outage_start, alarm, outage_end)`` — collect every alarm raised
  during an outage and report them all when it ends;
- ``error PLUS [30 sec]`` — escalate an error that is 30 seconds old.

The LED runs on a virtual clock here, so the script *drives* time
explicitly and the output is deterministic.

Run:  python examples/network_management.py
"""

from repro import ActiveDatabase
from repro.led import ManualClock


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    clock = ManualClock()
    adb = ActiveDatabase(database="netops", user="noc", clock=clock)

    adb.execute("create table probes (link varchar(20), seq int)")
    adb.execute("create table heartbeats (link varchar(20), seq int)")
    adb.execute("create table alarms (link varchar(20), severity int)")
    adb.execute("create table outages (link varchar(20), phase varchar(10))")

    # Primitive events for each operational table.
    adb.define_rule("t_probe", event="probe", on_table="probes",
                    operation="insert", action="print '  [probe recorded]'")
    adb.define_rule("t_beat", event="heartbeat", on_table="heartbeats",
                    operation="insert", action="print '  [heartbeat recorded]'")
    adb.define_rule("t_alarm", event="alarm", on_table="alarms",
                    operation="insert", action="print '  [alarm recorded]'")
    adb.define_rule("t_out", event="outagePhase", on_table="outages",
                    operation="insert", action="print '  [outage phase logged]'")

    banner("Dead link detection: NOT(probe, heartbeat, probe)")
    adb.define_rule(
        "t_dead",
        event="deadLink",
        expression="NOT(probe, heartbeat, probe)",
        context="CHRONICLE",
        action="print 'ALERT: no heartbeat between consecutive probes'",
    )
    clock.advance(1)
    adb.execute("insert probes values ('link-a', 1)")
    clock.advance(1)
    adb.execute("insert heartbeats values ('link-a', 1)")
    clock.advance(1)
    print("-- healthy interval (heartbeat arrived): no alert expected")
    result = adb.execute("insert probes values ('link-a', 2)")
    print("   messages:", result.messages)
    clock.advance(1)
    print("-- silent interval: the next probe raises the alert")
    result = adb.execute("insert probes values ('link-a', 3)")
    print("   messages:", result.messages)

    banner("Outage alarm aggregation: A*(start, alarm, end)")
    adb.define_rule(
        "t_report",
        event="outageReport",
        expression="A*(outagePhase, alarm, outagePhase)",
        context="CHRONICLE",
        action=(
            "print 'OUTAGE REPORT - alarms raised during the outage:' "
            "select link, severity from alarms.inserted"
        ),
    )
    clock.advance(1)
    adb.execute("insert outages values ('link-b', 'start')")
    for severity in (3, 5, 4):
        clock.advance(1)
        adb.execute(f"insert alarms values ('link-b', {severity})")
    clock.advance(1)
    result = adb.execute("insert outages values ('link-b', 'end')")
    for message in result.messages:
        print("  ", message)
    for result_set in result.result_sets:
        print("   " + "\n   ".join(result_set.format_table().splitlines()))

    banner("Escalation timer: alarm PLUS [30 sec]")
    escalations = []
    adb.agent.led.define_composite(
        "netops.noc.stale", "netops.noc.alarm PLUS [30 sec]")
    adb.agent.led.add_rule(
        "t_escalate", "netops.noc.stale",
        action=lambda occ: escalations.append(occ.time))
    clock.advance(1)
    adb.execute("insert alarms values ('link-c', 9)")
    print("-- 29 seconds later: nothing yet")
    adb.advance_time(29)
    print("   escalations:", escalations)
    print("-- at +30 seconds the escalation fires")
    adb.advance_time(1)
    print("   escalations:", escalations)

    adb.close()


if __name__ == "__main__":
    main()
