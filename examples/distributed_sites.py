"""Distributed active capability with the Global Event Detector (GED).

Section 6 of the paper names this as future work: "use a global event
detector (GED) for events and rules across application/systems."  This
example runs two independent site databases (each with its own ECA
Agent) and detects a composite event whose constituents occur at
*different* sites.

Run:  python examples/distributed_sites.py
"""

from repro.agent import EcaAgent
from repro.ged import GlobalEventDetector
from repro.sqlengine import SqlServer


def main() -> None:
    # Two autonomous sites: a trading branch in New York and one in Tokyo.
    sites = {}
    for site in ("nyc", "tokyo"):
        server = SqlServer(default_database=f"{site}db")
        agent = EcaAgent(server)
        conn = agent.connect(user="trader", database=f"{site}db")
        conn.execute(
            "create table trades (symbol varchar(10), qty int, side varchar(4))")
        conn.execute(f"""
            create trigger t_bigTrade on trades for insert
            event bigTrade
            as print '  [{site}] trade recorded'
        """)
        sites[site] = (server, agent, conn)

    # The GED imports each site's event under a site-qualified name
    # (Snoop's Eventname::AppId form) and detects across sites.
    ged = GlobalEventDetector()
    for site, (_server, agent, _conn) in sites.items():
        ged.register_site(site, agent)
    nyc_event = ged.import_event("nyc", "nycdb.trader.bigTrade")
    tokyo_event = ged.import_event("tokyo", "tokyodb.trader.bigTrade")

    print("imported global events:")
    print("  ", nyc_event)
    print("  ", tokyo_event)

    # Global composite: a big trade in NYC followed by one in Tokyo.
    ged.define_global_event("followOn", f"{nyc_event} SEQ {tokyo_event}")

    alerts = []

    def on_follow_on(occurrence):
        legs = " then ".join(occurrence.constituent_names())
        alerts.append(legs)
        print("  GLOBAL ALERT: follow-on trading pattern:", legs)

    ged.add_global_rule("r_follow", "followOn", action=on_follow_on,
                        context="CHRONICLE")

    # A global rule can also run SQL at a chosen site.
    sites["nyc"][2].execute("create table dbo.alerts (body varchar(60))")
    ged.add_global_rule(
        "r_record", "followOn", sql_site="nyc",
        sql="insert nycdb.dbo.alerts values ('follow-on pattern observed')")

    print("\n-- Tokyo trades first: no pattern (wrong order)")
    sites["tokyo"][2].execute("insert trades values ('7203', 900, 'buy')")
    print("   alerts:", alerts)

    print("\n-- NYC trades, then Tokyo: the global SEQ fires")
    sites["nyc"][2].execute("insert trades values ('IBM', 1200, 'buy')")
    sites["tokyo"][2].execute("insert trades values ('7203', 800, 'buy')")
    print("   alerts:", alerts)

    print("\n-- the SQL action ran inside the NYC server:")
    rows = sites["nyc"][2].execute("select * from dbo.alerts").last.rows
    print("   nycdb.dbo.alerts:", rows)

    for _server, agent, _conn in sites.values():
        agent.close()


if __name__ == "__main__":
    main()
