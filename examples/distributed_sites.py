"""Distributed active capability on the sharded Global Event Detector.

Section 6 of the paper names this as future work: "use a global event
detector (GED) for events and rules across application/systems."  This
example runs two autonomous site databases (each with its own ECA
Agent) joined into a :class:`~repro.ged.ShardedGed`: global event
classes are partitioned across the sites by consistent hashing, a
composite whose constituents occur at *different* sites fires a global
rule, the ``show agent sites`` operator command renders the partition
from inside an ordinary connection, and a site crash mid-way through a
half-detected composite is repaired by journal replay.

Run:  python examples/distributed_sites.py
"""

from repro.ged import ShardedGed
from repro.agent import EcaAgent
from repro.sqlengine import SqlServer


def main() -> None:
    # Two autonomous sites: a trading branch in New York and one in Tokyo.
    sites = {}
    for site in ("nyc", "tokyo"):
        server = SqlServer(default_database=f"{site}db")
        agent = EcaAgent(server)
        conn = agent.connect(user="trader", database=f"{site}db")
        conn.execute(
            "create table trades (symbol varchar(10), qty int, side varchar(4))")
        conn.execute(f"""
            create trigger t_bigTrade on trades for insert
            event bigTrade
            as print '  [{site}] trade recorded'
        """)
        sites[site] = (server, agent, conn)

    # Join the agents into a sharded GED and import each site's event
    # under its site-qualified name (Snoop's Eventname::AppId form).
    ged = ShardedGed()
    for site, (_server, agent, _conn) in sites.items():
        ged.add_site(site, agent)
    nyc_event = ged.import_event("nyc", "nycdb.trader.bigTrade")
    tokyo_event = ged.import_event("tokyo", "tokyodb.trader.bigTrade")

    print("imported global events:")
    print("  ", nyc_event)
    print("  ", tokyo_event)

    # Global composite: a big trade in NYC followed by one in Tokyo.
    # The consistent-hash ring decides which site's shard hosts it.
    owner = ged.define_global_event(
        "followOn", f"({nyc_event} SEQ {tokyo_event})")
    print("composite 'followOn' detected at site:", owner)

    alerts = []
    sites["nyc"][2].execute("create table dbo.alerts (body varchar(60))")

    def on_follow_on(occurrence):
        legs = " then ".join(o.event_name for o in occurrence.flatten())
        alerts.append(legs)
        print("  GLOBAL ALERT: follow-on trading pattern:", legs)
        # A global rule's action can run SQL at a chosen site.
        sites["nyc"][2].execute(
            "insert nycdb.dbo.alerts values "
            "('follow-on pattern observed')")

    ged.add_global_rule("r_follow", "followOn", on_follow_on,
                        context="CHRONICLE")

    print("\n-- Tokyo trades first: no pattern (wrong order)")
    sites["tokyo"][2].execute("insert trades values ('7203', 900, 'buy')")
    print("   alerts:", alerts)

    print("\n-- NYC trades, then Tokyo: the global SEQ fires")
    sites["nyc"][2].execute("insert trades values ('IBM', 1200, 'buy')")
    sites["tokyo"][2].execute("insert trades values ('7203', 800, 'buy')")
    print("   alerts:", alerts)

    print("\n-- the SQL action ran inside the NYC server:")
    rows = sites["nyc"][2].execute("select * from dbo.alerts").last.rows
    print("   nycdb.dbo.alerts:", rows)

    # Any mediated connection can inspect the deployment.
    print("\n-- show agent sites (from the Tokyo connection):")
    result = sites["tokyo"][2].execute("show agent sites")
    for result_set in result.result_sets:
        print("   ", result_set.columns)
        for row in result_set.rows:
            print("   ", row)

    # Crash the owning site mid-way through a half-detected composite.
    # The NYC leg is journaled at the router and replayed on recovery —
    # but 'followOn' only has an IMMEDIATE rule, and the transaction
    # that raised the first leg died with the site, so the half-
    # detected state is cleanly DISCARDED rather than fired late
    # (a DEFERRED rule would instead complete at the next flush).
    print(f"\n-- crash site '{owner}' after the NYC leg, then recover")
    sites["nyc"][2].execute("insert trades values ('MSFT', 5000, 'buy')")
    ged.fail_site(owner)
    report = ged.recover_site(owner)
    print(f"   recovered: replayed {report.replayed} journal entries, "
          f"discarded {list(report.discarded)}")
    sites["tokyo"][2].execute("insert trades values ('6758', 4000, 'buy')")
    print("   alerts unchanged (no late firing):", len(alerts))

    # A fresh, well-ordered pair detects normally again.
    print("\n-- after recovery, a new NYC-then-Tokyo pair still fires")
    sites["nyc"][2].execute("insert trades values ('AAPL', 700, 'buy')")
    sites["tokyo"][2].execute("insert trades values ('9984', 650, 'buy')")
    print("   alerts:", len(alerts))

    ged.close()
    for _server, agent, _conn in sites.values():
        agent.close()


if __name__ == "__main__":
    main()
