"""Compliance auditing: full Event-Condition-Action rules.

Shows the reproduction's extension surface on a trading-compliance
scenario:

- ``WHEN`` conditions (the C of ECA) evaluated inside the generated
  procedure with the same parameter bindings as the action;
- ``ALTER TRIGGER ... DISABLE/ENABLE`` for maintenance windows;
- ``sp_help`` / ``sp_helptext`` introspection of everything the agent
  generated — it is all ordinary catalog state;
- a unique index enforcing integrity underneath the active rules.

Run:  python examples/compliance_auditing.py
"""

from repro import ActiveDatabase


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    adb = ActiveDatabase(database="compliance", user="auditor")
    adb.execute(
        "create table trades ("
        "trade_id int not null, trader varchar(20) not null, "
        "symbol varchar(10) not null, notional float not null)")
    adb.execute("create unique index ux_trade on trades (trade_id)")
    adb.execute("create table flags (trade_id int, reason varchar(40))")

    banner("Conditioned rule: only large trades are flagged")
    adb.execute("""
        create trigger t_large on trades for insert
        event tradeBooked
        when exists (select * from trades.inserted where notional > 1000000)
        as
        insert flags
        select trade_id, 'large notional' from trades.inserted
        where notional > 1000000
        print 'COMPLIANCE: large trade flagged'
    """)
    result = adb.execute("insert trades values (1, 'ana', 'IBM', 50000.0)")
    print("small trade  ->", result.messages or "(no flag)")
    result = adb.execute("insert trades values (2, 'ben', 'MSFT', 2500000.0)")
    print("large trade  ->", result.messages)

    banner("Condition consulting database state, not just the event")
    adb.execute("""
        create trigger t_velocity event tradeBooked
        when (select count(*) from trades) > 3
        as print 'COMPLIANCE: trading velocity threshold crossed'
    """)
    adb.execute("insert trades values (3, 'ana', 'ORCL', 100.0)")
    result = adb.execute("insert trades values (4, 'ana', 'SUNW', 100.0)")
    print("fourth trade ->", result.messages)

    banner("Maintenance window: disable, then re-enable")
    adb.execute("alter trigger t_large disable")
    result = adb.execute("insert trades values (5, 'cy', 'IBM', 9000000.0)")
    print("while disabled ->", result.messages or "(silent)")
    adb.execute("alter trigger t_large enable")
    result = adb.execute("insert trades values (6, 'cy', 'IBM', 9000000.0)")
    print("re-enabled     ->", result.messages)

    banner("Everything the agent built is ordinary catalog state")
    print(adb.execute("exec sp_tables").last.format_table())
    print()
    print("generated procedure for t_large (sp_helptext):")
    text = adb.execute("exec sp_helptext 't_large__Proc'").last
    for row in text.rows[:8]:
        print("   ", row[0])

    banner("Integrity still enforced underneath the rules")
    try:
        adb.execute("insert trades values (1, 'dup', 'IBM', 1.0)")
    except Exception as exc:
        print("duplicate trade id rejected:", type(exc).__name__)

    print("\nflags table:")
    print(adb.execute(
        "select trade_id, reason from flags order by trade_id"
    ).last.format_table())

    adb.close()


if __name__ == "__main__":
    main()
